//! A KV (storage) node (§4.1).
//!
//! KV nodes are shared across tenants: one process serves reads and writes
//! for every tenant whose range leases it holds. Each node owns an LSM
//! engine, a simulated CPU, a simulated disk, and an admission controller;
//! batches flow `network → auth → lease check → admission → CPU →
//! execute → (replicate) → respond`.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::{Rc, Weak};
use std::time::Duration;

use bytes::Bytes;
use crdb_admission::{AdmissionConfig, AdmissionController, Priority, WorkClass};
use crdb_obs::trace;
use crdb_sim::cpu::CpuScheduler;
use crdb_sim::resource::RateResource;
use crdb_sim::{Location, Sim};
use crdb_storage::{Engine, LsmConfig};
use crdb_util::stats::SlidingWindow;
use crdb_util::time::{dur, SimTime};
use crdb_util::{NodeId, TenantId};

use crate::auth::TenantCert;
use crate::batch::{BatchRequest, BatchResponse, KvError, RequestKind, ResponseKind};
use crate::cluster::ClusterInner;
use crate::cost::TrafficStats;
use crate::hlc::{Hlc, Timestamp};
use crate::mvcc;
use crate::txn::TxnStatus;

/// How long an intent may sit untouched with its transaction still
/// `Pending` before a conflicting reader may declare the transaction
/// abandoned (coordinator crashed) and push-abort it. Far above any
/// live transaction's lifetime, so only orphans are ever pushed.
pub const TXN_ABANDON_TIMEOUT: Duration = Duration::from_secs(10);

/// An operation queued in admission: the batch plus its response path.
pub(crate) struct PendingOp {
    pub batch: BatchRequest,
    pub respond: Box<dyn FnOnce(BatchResponse)>,
    /// The request's `kv.serve` span, carried through the admission queue
    /// and the CPU scheduler so server-side phases attach to the caller's
    /// trace.
    pub span: trace::MaybeSpan,
    /// Child of `span` covering time spent queued in admission.
    pub queue_span: trace::MaybeSpan,
}

/// A shared KV storage node.
pub struct KvNode {
    /// Node ID.
    pub id: NodeId,
    /// Placement.
    pub location: Location,
    pub(crate) sim: Sim,
    /// The node's CPU.
    pub cpu: CpuScheduler,
    /// The node's disk (flush/compaction bandwidth).
    pub disk: RateResource,
    /// The node's storage engine (holds all its replicas' data).
    pub engine: Engine,
    pub(crate) admission: RefCell<AdmissionController<PendingOp>>,
    pub(crate) hlc: Hlc,
    pub(crate) cluster: Weak<RefCell<ClusterInner>>,
    alive: Cell<bool>,
    /// Per-tenant traffic features (input to the estimated-CPU model).
    traffic: RefCell<HashMap<TenantId, TrafficStats>>,
    /// Recent batch arrivals, for the cost model's economy curve.
    batch_window: RefCell<SlidingWindow>,
    /// Batches served (lifetime).
    pub batches_served: Cell<u64>,
    /// Scheduled admission re-poll, if any.
    pending_pump: Cell<Option<crdb_sim::EventId>>,
    /// Runnable/busy integrals at the last AIMD tick.
    last_tick: Cell<(f64, f64, SimTime)>,
    /// The timestamp cache (§"tscache"): high-water marks of read
    /// timestamps per key. A write whose timestamp is at or below a key's
    /// read watermark is rejected (retryably) — without this, a commit
    /// whose timestamp was assigned before its intents physically land
    /// could invalidate a concurrent reader's snapshot.
    ts_cache: RefCell<BTreeMap<Bytes, Timestamp>>,
    /// Low-water mark applied when the cache is compacted.
    ts_cache_floor: Cell<Timestamp>,
    /// Group-commit window: writes ack at the next modeled fsync.
    fsync_interval: Duration,
    /// Concurrent background compaction jobs this node may run.
    compaction_slots: usize,
    /// Write acks waiting on the next group commit, in arrival order.
    commit_acks: RefCell<Vec<Box<dyn FnOnce()>>>,
    /// Whether a group-commit fsync is already scheduled.
    commit_timer_armed: Cell<bool>,
}

impl KvNode {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        sim: Sim,
        id: NodeId,
        location: Location,
        vcpus: f64,
        disk_rate: f64,
        admission_config: AdmissionConfig,
        lsm_config: LsmConfig,
        fsync_interval: Duration,
        compaction_slots: usize,
        cluster: Weak<RefCell<ClusterInner>>,
    ) -> Rc<KvNode> {
        let cpu = CpuScheduler::new(sim.clone(), vcpus);
        // Pipelined write path: the node drives rotation/flush/compaction
        // as disk-metered background jobs and amortizes fsyncs across
        // group commits; the engine must not do either inline.
        let engine = Engine::new(lsm_config);
        engine.with_lsm(|lsm| {
            lsm.set_auto_maintain(false);
            lsm.set_group_durability(true);
        });
        let node = Rc::new(KvNode {
            id,
            location,
            cpu: cpu.clone(),
            disk: RateResource::new(sim.clone(), disk_rate),
            engine,
            admission: RefCell::new(AdmissionController::new(admission_config)),
            hlc: Hlc::new(),
            cluster,
            alive: Cell::new(true),
            traffic: RefCell::new(HashMap::new()),
            batch_window: RefCell::new(SlidingWindow::new(dur::secs(5))),
            batches_served: Cell::new(0),
            pending_pump: Cell::new(None),
            last_tick: Cell::new((0.0, 0.0, sim.now())),
            ts_cache: RefCell::new(BTreeMap::new()),
            ts_cache_floor: Cell::new(Timestamp::ZERO),
            fsync_interval,
            compaction_slots,
            commit_acks: RefCell::new(Vec::new()),
            commit_timer_armed: Cell::new(false),
            sim,
        });
        node.start_tick_loop();
        node
    }

    fn start_tick_loop(self: &Rc<Self>) {
        // AIMD slot adjustment: the paper samples the runnable queue at
        // 1000 Hz and adjusts via AIMD; under simulation the runnable queue
        // integral is exact, so we tick the controller at 50 ms with the
        // exact interval average (DESIGN.md substitution).
        let node = Rc::clone(self);
        self.sim.schedule_periodic(dur::ms(50), move || {
            if !node.alive.get() {
                return true;
            }
            let now = node.sim.now();
            let (last_runnable, last_busy, last_at) = node.last_tick.get();
            let runnable = node.cpu.cumulative_runnable();
            let busy = node.cpu.cumulative_busy();
            let dt = now.duration_since(last_at).as_secs_f64();
            if dt > 0.0 {
                let avg_runnable = (runnable - last_runnable) / dt;
                let util = (busy - last_busy) / (dt * node.cpu.vcpus());
                node.admission.borrow_mut().tick_slots(avg_runnable, util, node.cpu.vcpus());
            }
            node.last_tick.set((runnable, busy, now));
            true
        });
        // Write capacity estimation every 15 s from LSM instrumentation.
        let node = Rc::clone(self);
        self.sim.schedule_periodic(dur::secs(15), move || {
            if !node.alive.get() {
                return true;
            }
            let now = node.sim.now();
            let metrics = node.engine.metrics();
            let l0 = node.engine.with_lsm(|lsm| lsm.l0_file_count());
            node.admission.borrow_mut().estimate_write_capacity(now, metrics, l0);
            true
        });
        // Storage sweeper: mirrored follower writes land in this engine
        // without going through `execute`, so a coarse tick commits any
        // straggling WAL group and starts background jobs their rotation
        // produced. Leader-driven writes don't wait for this — they arm
        // the group-commit timer and kick maintenance directly.
        let node = Rc::clone(self);
        self.sim.schedule_periodic(dur::ms(50), move || {
            if node.engine.with_lsm(|lsm| lsm.wal_unsynced_batches() > 0)
                && !node.commit_timer_armed.get()
            {
                node.engine.with_lsm(|lsm| {
                    lsm.group_commit();
                });
            }
            node.maintain_storage();
            true
        });
    }

    /// Queues a write ack behind the next group commit and arms the fsync
    /// timer if it isn't already. Every ack queued inside one window is
    /// released by a single modeled fsync — the group-commit amortization.
    fn enqueue_commit_ack(self: &Rc<Self>, ack: Box<dyn FnOnce()>) {
        self.commit_acks.borrow_mut().push(ack);
        if !self.commit_timer_armed.get() {
            self.commit_timer_armed.set(true);
            let node = Rc::clone(self);
            self.sim.schedule_after(self.fsync_interval, move || {
                node.commit_timer_armed.set(false);
                node.fire_group_commit();
            });
        }
    }

    /// Commits the current WAL group (one modeled fsync) and releases
    /// every ack that was waiting on it. Fires even across a node crash:
    /// an ack enqueued before the crash was backed by a WAL append whose
    /// data survives in the engine, so releasing it never loses a commit.
    fn fire_group_commit(self: &Rc<Self>) {
        let acks: Vec<Box<dyn FnOnce()>> = self.commit_acks.borrow_mut().drain(..).collect();
        self.engine.with_lsm(|lsm| {
            lsm.group_commit();
        });
        for ack in acks {
            ack();
        }
        self.maintain_storage();
    }

    /// Starts any background storage work that is due, charging it to the
    /// node's disk: at most one memtable flush plus up to
    /// `compaction_slots` compactions on disjoint level pairs. Bytes are
    /// attributed in `StorageMetrics` when each job's disk I/O completes,
    /// which is what the §5.1.3 write-capacity estimator samples.
    pub(crate) fn maintain_storage(self: &Rc<Self>) {
        if let Some(job) = self.engine.with_lsm(|lsm| lsm.begin_flush()) {
            let node = Rc::clone(self);
            let bytes = job.bytes_estimate().max(1) as f64;
            self.disk.submit(bytes, move || {
                node.engine.with_lsm(|lsm| lsm.finish_flush(job));
                node.maintain_storage();
            });
        }
        while self.engine.with_lsm(|lsm| lsm.compactions_in_flight()) < self.compaction_slots {
            let job = self
                .engine
                .with_lsm(|lsm| lsm.pick_compaction().map(|pick| lsm.begin_compaction(&pick)));
            let Some(job) = job else { break };
            let node = Rc::clone(self);
            let bytes = job.bytes_in().max(1) as f64;
            self.disk.submit(bytes, move || {
                node.engine.with_lsm(|lsm| lsm.finish_compaction(job));
                node.maintain_storage();
            });
        }
    }

    /// Whether the node is up.
    pub fn is_alive(&self) -> bool {
        self.alive.get()
    }

    /// Marks the node down (in-flight work is abandoned) or back up.
    pub fn set_alive(&self, alive: bool) {
        self.alive.set(alive);
    }

    /// Receives a batch from the network. `cert` authenticates the sender;
    /// `respond` receives the response (the caller layers return-network
    /// latency on top).
    pub fn receive(
        self: &Rc<Self>,
        cert: &TenantCert,
        batch: BatchRequest,
        respond: impl FnOnce(BatchResponse) + 'static,
    ) {
        if !self.alive.get() {
            respond(BatchResponse::err(KvError::NodeUnavailable));
            return;
        }
        let cluster = match self.cluster.upgrade() {
            Some(c) => c,
            None => {
                respond(BatchResponse::err(KvError::NodeUnavailable));
                return;
            }
        };
        // Security boundary (§3.2.3).
        {
            let inner = cluster.borrow();
            if let Err(e) = crate::auth::authorize(&inner.ca, cert, &batch) {
                respond(BatchResponse::err(e));
                return;
            }
        }
        // Lease check: the whole batch must land in a range this node
        // holds the lease for.
        let anchor = match Self::batch_anchor_key(&batch) {
            Some(k) => k,
            None => {
                respond(BatchResponse::err(KvError::RangeNotFound));
                return;
            }
        };
        {
            let inner = cluster.borrow();
            match inner.directory.lookup(&anchor) {
                None => {
                    respond(BatchResponse::err(KvError::RangeNotFound));
                    return;
                }
                Some(range) => {
                    if range.lease.holder != self.id {
                        respond(BatchResponse::err(KvError::NotLeaseholder {
                            range: range.desc.id,
                            leaseholder: Some(range.lease.holder),
                        }));
                        return;
                    }
                }
            }
        }
        // Admission (§5.1): reads through the CQ, writes through WQ + CQ.
        let now = self.sim.now();
        // Propagated deadline: a batch that is already past it fails
        // typed without queuing, and the admission deadline is clamped
        // to it — the node never works on a request its caller has
        // already abandoned.
        if batch.deadline.expired(now) {
            if let Some(c) = self.cluster.upgrade() {
                c.borrow().degrade.bump_deadline_exceeded();
            }
            respond(BatchResponse::err(KvError::DeadlineExceeded));
            return;
        }
        let tenant = batch.tenant;
        let txn_start = batch.txn.as_ref().map(|t| t.start_ts.to_sim_time()).unwrap_or(now);
        let deadline = (now + dur::secs(30)).min(batch.deadline.time());
        let priority = if tenant.is_system() { Priority::High } else { Priority::Normal };
        let is_write = batch.is_write();
        let bytes = batch.payload_bytes() as f64;
        let span = trace::child("kv.serve");
        span.tag("node", self.id);
        span.tag("tenant", tenant);
        let queue_span = span.child("admission.queue");
        let op = PendingOp { batch, respond: Box::new(respond), span, queue_span };
        {
            let mut adm = self.admission.borrow_mut();
            if is_write {
                adm.request_write(now, tenant, priority, txn_start, deadline, bytes, op);
            } else {
                adm.request_read(now, tenant, priority, txn_start, deadline, op);
            }
        }
        self.pump();
    }

    fn batch_anchor_key(batch: &BatchRequest) -> Option<Bytes> {
        batch.requests.first().and_then(|r| match r {
            RequestKind::EndTxn { .. } => batch.txn.as_ref().map(|t| t.anchor_key.clone()),
            other => Some(other.primary_key().clone()),
        })
    }

    /// Drains admission grants into CPU tasks. Re-schedules itself when a
    /// deferred write-token grant is pending.
    pub(crate) fn pump(self: &Rc<Self>) {
        let now = self.sim.now();
        let grants = self.admission.borrow_mut().poll(now);
        for grant in grants {
            let node = Rc::clone(self);
            let tenant = grant.tenant;
            let class = grant.class;
            let bytes = grant.bytes;
            let op = grant.payload;
            // Ground-truth CPU cost, shaped by the recent batch rate.
            let rate = {
                let mut w = self.batch_window.borrow_mut();
                w.record(now, 1.0);
                w.len() as f64 / 5.0
            };
            let cost = {
                let cluster = match self.cluster.upgrade() {
                    Some(c) => c,
                    None => continue,
                };
                let inner = cluster.borrow();
                inner.cost_model.batch_cpu_seconds(&op.batch, rate)
            };
            op.queue_span.end();
            let cpu_span = op.span.child("kv.cpu");
            self.cpu.submit(tenant, cost, move || {
                cpu_span.end();
                node.execute(op, class, cost, bytes);
            });
        }
        // Deferred token grants need a wake-up.
        let next = self.admission.borrow_mut().next_event_time(now);
        if let Some(at) = next {
            if let Some(ev) = self.pending_pump.take() {
                self.sim.cancel(ev);
            }
            let node = Rc::clone(self);
            let ev = self.sim.schedule_at(at + dur::us(1), move || {
                node.pending_pump.set(None);
                node.pump();
            });
            self.pending_pump.set(Some(ev));
        }
    }

    /// Executes an admitted batch after its CPU service completes.
    fn execute(self: &Rc<Self>, op: PendingOp, class: WorkClass, cpu_cost: f64, bytes: f64) {
        let now = self.sim.now();
        let PendingOp { batch, respond, span, .. } = op;
        let cluster = match self.cluster.upgrade() {
            Some(c) => c,
            None => return,
        };

        // Write-quorum gate: a write whose range has lost its
        // replication quorum (a zone/region outage downed a follower
        // majority) is rejected *before* any MVCC mutation applies — a
        // write that cannot replicate must never apply or ack.
        if batch.is_write() {
            let has_quorum = {
                let inner = cluster.borrow();
                match Self::batch_anchor_key(&batch)
                    .and_then(|a| inner.directory.lookup(&a).map(|r| r.desc.replicas.clone()))
                {
                    Some(replicas) => {
                        let live = replicas
                            .iter()
                            .filter(|&&n| {
                                n == self.id || inner.nodes.get(&n).is_some_and(|f| f.is_alive())
                            })
                            .count();
                        live > replicas.len() / 2
                    }
                    // Missing range: RangeNotFound surfaces from the
                    // normal execution path below.
                    None => true,
                }
            };
            if !has_quorum {
                {
                    let degrade = Rc::clone(&cluster.borrow().degrade);
                    degrade.quorum_losses.set(degrade.quorum_losses.get() + 1);
                }
                self.admission.borrow_mut().complete(
                    now,
                    batch.tenant,
                    class,
                    cpu_cost,
                    bytes,
                    None,
                );
                span.tag("quorum_loss", true);
                span.end();
                respond(BatchResponse::err(KvError::Unavailable));
                self.pump();
                return;
            }
        }

        // Write-stall backpressure: a write arriving while the engine has
        // a flush or L0 backlog pays a modeled stall delay before its ack.
        // The stall is recorded in `StorageMetrics`, so admission control
        // sees it at the next capacity estimation, and maintenance is
        // kicked so the backlog is actually draining while the write
        // waits.
        let stall_delay = if batch.is_write() && self.engine.write_stall().is_some() {
            let d = dur::ms(1);
            self.engine.with_lsm(|lsm| lsm.note_stall(d.as_micros() as u64));
            self.maintain_storage();
            d
        } else {
            Duration::ZERO
        };

        let storage_span = span.child("storage.mvcc");
        storage_span.tag("requests", batch.requests.len());
        let result = self.execute_requests(&cluster, &batch);
        let (response, write_payload) = match result {
            Ok((results, write_payload)) => (BatchResponse::ok(results), write_payload),
            Err(e) => (BatchResponse::err(e), 0),
        };
        if write_payload > 0 {
            storage_span.tag("write_bytes", write_payload);
        }
        storage_span.end();

        // Traffic features for the estimated-CPU model.
        self.traffic
            .borrow_mut()
            .entry(batch.tenant)
            .or_default()
            .record(&batch, response.response_bytes);
        self.batches_served.set(self.batches_served.get() + 1);

        // Admission completion: actual CPU and actual physical write bytes
        // (raft log + state machine, the §5.1.4 linear model's target).
        let actual_bytes = if write_payload > 0 {
            let physical = 2.0 * write_payload as f64 + 96.0;
            self.disk.submit(physical, || {});
            // Rotation may have produced a frozen memtable; start its
            // flush (and any compaction now due) immediately rather than
            // waiting for the sweeper tick.
            self.maintain_storage();
            Some(physical)
        } else {
            None
        };
        self.admission.borrow_mut().complete(
            now,
            batch.tenant,
            class,
            cpu_cost,
            bytes,
            actual_bytes,
        );

        // Replication: respond only after a quorum would have acked.
        // Only *live* followers can ack — with a domain down, the commit
        // waits for the surviving (possibly slower) replicas instead of
        // crediting acks from dead ones.
        let repl_delay = if write_payload > 0 {
            let (leader, followers, follower_cost) = {
                let inner = cluster.borrow();
                let anchor = Self::batch_anchor_key(&batch).expect("anchored");
                let range = inner.directory.lookup(&anchor);
                let followers: Vec<(Location, bool)> = range
                    .map(|r| {
                        r.desc
                            .replicas
                            .iter()
                            .filter(|&&n| n != self.id)
                            .filter_map(|n| {
                                inner.nodes.get(n).map(|node| (node.location, node.is_alive()))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let follower_cost = inner.cost_model.follower_apply_cpu_seconds(cpu_cost);
                // Charge follower CPUs for the apply.
                if let Some(r) = range {
                    for n in &r.desc.replicas {
                        if *n != self.id {
                            if let Some(f) = inner.nodes.get(n) {
                                f.cpu.submit(batch.tenant, follower_cost, || {});
                            }
                        }
                    }
                }
                (self.location, followers, follower_cost)
            };
            let _ = follower_cost;
            let topology = cluster.borrow().topology.clone();
            // The pre-execute gate above guarantees a live quorum at
            // this instant (liveness cannot change mid-event).
            crate::replication::quorum_commit_delay_live(&self.sim, &topology, leader, &followers)
                .unwrap_or(Duration::ZERO)
        } else {
            Duration::ZERO
        };

        let delay = stall_delay + repl_delay;
        if delay.is_zero() {
            self.deliver_response(write_payload > 0, span, response, respond);
        } else {
            let repl_span = span.child("replication.quorum");
            let node = Rc::clone(self);
            self.sim.schedule_after(delay, move || {
                repl_span.end();
                node.deliver_response(write_payload > 0, span, response, respond);
            });
        }
        self.pump();
    }

    /// Delivers a batch response — successful writes ride the next group
    /// commit (their WAL append becomes durable at that fsync); reads and
    /// errors respond immediately.
    fn deliver_response(
        self: &Rc<Self>,
        via_group_commit: bool,
        span: trace::MaybeSpan,
        response: BatchResponse,
        respond: Box<dyn FnOnce(BatchResponse)>,
    ) {
        if via_group_commit {
            let commit_span = span.child("wal.group_commit");
            self.enqueue_commit_ack(Box::new(move || {
                commit_span.end();
                span.end();
                respond(response);
            }));
        } else {
            span.end();
            respond(response);
        }
    }

    /// Runs the MVCC work of a batch against this node's engine, mirroring
    /// every mutation onto the follower replicas' engines (the data path is
    /// synchronous; see module docs of [`crate::replication`]).
    fn execute_requests(
        self: &Rc<Self>,
        cluster: &Rc<RefCell<ClusterInner>>,
        batch: &BatchRequest,
    ) -> Result<(Vec<ResponseKind>, usize), KvError> {
        // Collect replica engines and bump range stats in a short borrow.
        let anchor = Self::batch_anchor_key(batch).ok_or(KvError::RangeNotFound)?;
        let (replica_engines, is_write) = {
            let mut inner = cluster.borrow_mut();
            let is_write = batch.is_write();
            let this_id = self.id;
            let range = inner.directory.lookup_mut(&anchor).ok_or(KvError::RangeNotFound)?;
            if is_write {
                range.writes += 1;
                range.size_bytes += batch.payload_bytes() as u64;
            } else {
                range.reads += 1;
            }
            let replicas = range.desc.replicas.clone();
            let engines: Vec<Engine> = replicas
                .iter()
                .filter(|&&n| n != this_id)
                .filter_map(|n| inner.nodes.get(n).map(|node| node.engine.clone()))
                .collect();
            (engines, is_write)
        };

        let own_txn = batch.txn.as_ref().map(|t| t.txn_id);
        let mut results = Vec::with_capacity(batch.requests.len());
        let mut write_payload = 0usize;

        for req in &batch.requests {
            match req {
                RequestKind::Get { key } => {
                    self.bump_ts_cache(key, batch.read_ts);
                    match mvcc::get(&self.engine, key, batch.read_ts, own_txn) {
                        mvcc::ReadResult::Value(v) => results.push(ResponseKind::Value(v)),
                        mvcc::ReadResult::Intent(intent) => {
                            match self.check_intent(
                                cluster,
                                key,
                                &intent,
                                batch.read_ts,
                                &replica_engines,
                            ) {
                                Some(v) => results.push(ResponseKind::Value(v)),
                                None => {
                                    return Err(KvError::IntentConflict {
                                        other_txn: intent.txn_id,
                                    })
                                }
                            }
                        }
                    }
                }
                RequestKind::Scan { start, end, limit } => {
                    let (mut pairs, intents) =
                        mvcc::scan(&self.engine, start, end, batch.read_ts, *limit, own_txn);
                    if !intents.is_empty() {
                        // Try to resolve each via its txn status; any still
                        // pending fails the batch (client retries).
                        for (key, intent) in &intents {
                            let resolved = self.check_intent(
                                cluster,
                                key,
                                intent,
                                batch.read_ts,
                                &replica_engines,
                            );
                            if resolved.is_none() {
                                return Err(KvError::IntentConflict { other_txn: intent.txn_id });
                            }
                        }
                        // All resolved: re-scan for a consistent result.
                        (pairs, _) =
                            mvcc::scan(&self.engine, start, end, batch.read_ts, *limit, own_txn);
                    }
                    // The ts cache must cover exactly what the client saw:
                    // bumping only the first-pass pairs missed keys that
                    // became visible after intent resolution, letting a
                    // later write at or below `read_ts` invalidate this
                    // read's snapshot.
                    for (k, _) in &pairs {
                        self.bump_ts_cache(k, batch.read_ts);
                    }
                    results.push(ResponseKind::Pairs(pairs));
                }
                RequestKind::Put { key, value } => {
                    let ts = self.hlc.now(self.sim.now());
                    mvcc::put_version(&self.engine, key, ts, Some(value));
                    for e in &replica_engines {
                        mvcc::put_version(e, key, ts, Some(value));
                    }
                    write_payload += key.len() + value.len();
                    results.push(ResponseKind::Ok);
                }
                RequestKind::Delete { key } => {
                    let ts = self.hlc.now(self.sim.now());
                    mvcc::put_version(&self.engine, key, ts, None);
                    for e in &replica_engines {
                        mvcc::put_version(e, key, ts, None);
                    }
                    write_payload += key.len();
                    results.push(ResponseKind::Ok);
                }
                RequestKind::WriteIntent { key, value } => {
                    let txn = batch.txn.as_ref().ok_or(KvError::TxnAborted)?;
                    let watermark = self.ts_cache_read(key);
                    if watermark >= txn.write_ts && watermark > txn.start_ts {
                        return Err(KvError::WriteTooOld { existing: watermark });
                    }
                    match mvcc::write_intent(
                        &self.engine,
                        key,
                        txn.txn_id,
                        txn.write_ts,
                        txn.start_ts,
                        value.as_ref(),
                    ) {
                        Ok(()) => {}
                        Err(mvcc::WriteConflict::WriteTooOld(existing)) => {
                            return Err(KvError::WriteTooOld { existing })
                        }
                        Err(mvcc::WriteConflict::Intent(other)) => {
                            // The other txn may already be finalized.
                            if self
                                .check_intent(cluster, key, &other, batch.read_ts, &replica_engines)
                                .is_some()
                            {
                                // Resolved; retry once.
                                match mvcc::write_intent(
                                    &self.engine,
                                    key,
                                    txn.txn_id,
                                    txn.write_ts,
                                    txn.start_ts,
                                    value.as_ref(),
                                ) {
                                    Ok(()) => {}
                                    Err(mvcc::WriteConflict::WriteTooOld(existing)) => {
                                        return Err(KvError::WriteTooOld { existing })
                                    }
                                    Err(mvcc::WriteConflict::Intent(o)) => {
                                        return Err(KvError::IntentConflict { other_txn: o.txn_id })
                                    }
                                }
                            } else {
                                return Err(KvError::IntentConflict { other_txn: other.txn_id });
                            }
                        }
                    }
                    for e in &replica_engines {
                        // Followers apply unconditionally (the leader
                        // validated).
                        let _ = mvcc::write_intent(
                            e,
                            key,
                            txn.txn_id,
                            txn.write_ts,
                            Timestamp::MAX,
                            value.as_ref(),
                        );
                    }
                    write_payload += key.len() + value.as_ref().map_or(0, |v| v.len());
                    results.push(ResponseKind::Ok);
                }
                RequestKind::EndTxn { commit } => {
                    let txn = batch.txn.as_ref().ok_or(KvError::TxnAborted)?;
                    // A transaction already aborted by a pusher must not
                    // commit: its intents are gone, so acknowledging the
                    // commit would silently lose the writes.
                    if cluster.borrow().txn_status.get(&txn.txn_id) == Some(&TxnStatus::Aborted) {
                        return Err(KvError::TxnAborted);
                    }
                    let status = if *commit {
                        TxnStatus::Committed(txn.write_ts)
                    } else {
                        TxnStatus::Aborted
                    };
                    let record = crate::txn::TxnRecord { txn_id: txn.txn_id, status };
                    mvcc::put_txn_record(&self.engine, &record);
                    for e in &replica_engines {
                        mvcc::put_txn_record(e, &record);
                    }
                    {
                        let mut inner = cluster.borrow_mut();
                        let now = self.sim.now();
                        inner.txn_status.insert(txn.txn_id, status);
                        inner.txn_finalized_at.insert(txn.txn_id, now);
                    }
                    write_payload += 32;
                    results.push(ResponseKind::Ok);
                }
                RequestKind::RefreshSpan { start, end, since } => {
                    match mvcc::refresh_span(&self.engine, start, end, *since, own_txn) {
                        Ok(()) => results.push(ResponseKind::Ok),
                        Err(existing) => return Err(KvError::WriteTooOld { existing }),
                    }
                }
                RequestKind::ResolveIntent { key, commit_ts } => {
                    let txn = batch.txn.as_ref().ok_or(KvError::TxnAborted)?;
                    mvcc::resolve_intent(&self.engine, key, txn.txn_id, *commit_ts);
                    for e in &replica_engines {
                        mvcc::resolve_intent(e, key, txn.txn_id, *commit_ts);
                    }
                    write_payload += key.len();
                    results.push(ResponseKind::Ok);
                }
            }
        }
        let _ = is_write;
        Ok((results, write_payload))
    }

    fn bump_ts_cache(&self, key: &Bytes, read_ts: Timestamp) {
        let mut cache = self.ts_cache.borrow_mut();
        if cache.len() > 100_000 {
            // Compact: collapse everything into the floor (CockroachDB's
            // low-water mark), conservatively rejecting more writes.
            let max = cache.values().max().copied().unwrap_or(Timestamp::ZERO);
            cache.clear();
            self.ts_cache_floor.set(self.ts_cache_floor.get().max(max));
        }
        let entry = cache.entry(key.clone()).or_insert(Timestamp::ZERO);
        if read_ts > *entry {
            *entry = read_ts;
        }
    }

    fn ts_cache_read(&self, key: &Bytes) -> Timestamp {
        let cache = self.ts_cache.borrow();
        cache.get(key).copied().unwrap_or(Timestamp::ZERO).max(self.ts_cache_floor.get())
    }

    /// Checks an encountered intent against its transaction's status. If
    /// finalized, resolves the intent (on all replicas) and returns the
    /// visible value; `None` means the owner is still pending.
    fn check_intent(
        &self,
        cluster: &Rc<RefCell<ClusterInner>>,
        key: &Bytes,
        intent: &mvcc::Intent,
        read_ts: crate::hlc::Timestamp,
        replica_engines: &[Engine],
    ) -> Option<Option<Bytes>> {
        let status = cluster.borrow().txn_status.get(&intent.txn_id).copied();
        match status {
            Some(TxnStatus::Committed(ts)) => {
                mvcc::resolve_intent(&self.engine, key, intent.txn_id, Some(ts));
                for e in replica_engines {
                    mvcc::resolve_intent(e, key, intent.txn_id, Some(ts));
                }
                // Snapshot semantics: the resolved value is visible only
                // if it committed at or below the reader's timestamp.
                match mvcc::get(&self.engine, key, read_ts, None) {
                    mvcc::ReadResult::Value(v) => Some(v),
                    mvcc::ReadResult::Intent(_) => None,
                }
            }
            Some(TxnStatus::Aborted) => {
                mvcc::resolve_intent(&self.engine, key, intent.txn_id, None);
                for e in replica_engines {
                    mvcc::resolve_intent(e, key, intent.txn_id, None);
                }
                // Re-read below the removed intent.
                match mvcc::get(&self.engine, key, read_ts, None) {
                    mvcc::ReadResult::Value(v) => Some(v),
                    mvcc::ReadResult::Intent(_) => None,
                }
            }
            Some(TxnStatus::Pending) | None => {
                // Push check: a transaction whose coordinator died (pod
                // crash, region outage) leaves intents that would block
                // readers forever — there is no one left to resolve them.
                // An intent untouched for longer than any plausible live
                // transaction marks its owner abandoned: abort it and
                // clear the intent, exactly like CockroachDB's pusher
                // aborting an expired transaction record.
                let now = self.sim.now().as_nanos();
                if now.saturating_sub(intent.ts.wall) < TXN_ABANDON_TIMEOUT.as_nanos() as u64 {
                    return None;
                }
                {
                    let mut inner = cluster.borrow_mut();
                    inner.txn_status.insert(intent.txn_id, TxnStatus::Aborted);
                    inner.txn_finalized_at.insert(intent.txn_id, self.sim.now());
                }
                let record =
                    crate::txn::TxnRecord { txn_id: intent.txn_id, status: TxnStatus::Aborted };
                mvcc::put_txn_record(&self.engine, &record);
                mvcc::resolve_intent(&self.engine, key, intent.txn_id, None);
                for e in replica_engines {
                    mvcc::put_txn_record(e, &record);
                    mvcc::resolve_intent(e, key, intent.txn_id, None);
                }
                let degrade = &cluster.borrow().degrade;
                degrade.txn_pushes.set(degrade.txn_pushes.get() + 1);
                match mvcc::get(&self.engine, key, read_ts, None) {
                    mvcc::ReadResult::Value(v) => Some(v),
                    mvcc::ReadResult::Intent(_) => None,
                }
            }
        }
    }

    /// Per-tenant cumulative traffic features.
    pub fn traffic_stats(&self, tenant: TenantId) -> TrafficStats {
        self.traffic.borrow().get(&tenant).copied().unwrap_or_default()
    }

    /// Traffic features summed over all tenants.
    pub fn traffic_stats_total(&self) -> TrafficStats {
        let mut total = TrafficStats::default();
        // simlint: allow(nondet-iter) — all TrafficStats fields are integer counters, so the sum is order-independent
        for s in self.traffic.borrow().values() {
            total.read_batches += s.read_batches;
            total.read_requests += s.read_requests;
            total.read_bytes += s.read_bytes;
            total.write_batches += s.write_batches;
            total.write_requests += s.write_requests;
            total.write_bytes += s.write_bytes;
            total.bounded_scan_requests += s.bounded_scan_requests;
        }
        total
    }

    /// Current admission queue depth (for observability).
    pub fn admission_queue_len(&self) -> usize {
        self.admission.borrow().queue_len()
    }
}
