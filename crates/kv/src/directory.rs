//! The range directory (META) and client-side range caches.
//!
//! "When a KV node receives a request from the SQL layer for a range that
//! it does not know about locally, it redirects the request to the right
//! node using a range directory whose root is known to all KV nodes via a
//! gossip protocol" (§3.1). "Follower reads are used to read from the META
//! range … a good fit because the KV nodes will redirect requests if a
//! range moves" (§3.2.5).
//!
//! The authoritative directory maps range start keys to range state; SQL
//! clients hold a [`RangeCache`] of possibly-stale entries refreshed by
//! META lookups. Under simulation a META lookup is served by the *nearest*
//! replica (follower read — no cross-region hop), which is exactly what
//! makes multi-region cold starts cheap.

use std::collections::BTreeMap;

use bytes::Bytes;
use crdb_util::{NodeId, RangeId};

use crate::range::{RangeDescriptor, RangeState};

/// The authoritative range directory (the META range content).
#[derive(Debug, Default)]
pub struct Directory {
    /// Range start key → range ID.
    by_start: BTreeMap<Bytes, RangeId>,
    /// Range ID → state.
    ranges: BTreeMap<RangeId, RangeState>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Installs a new range.
    pub fn insert(&mut self, state: RangeState) {
        self.by_start.insert(state.desc.start.clone(), state.desc.id);
        self.ranges.insert(state.desc.id, state);
    }

    /// Removes a range (during merges/splits).
    pub fn remove(&mut self, id: RangeId) -> Option<RangeState> {
        let state = self.ranges.remove(&id)?;
        self.by_start.remove(&state.desc.start);
        Some(state)
    }

    /// The range containing `key`, if any.
    pub fn lookup(&self, key: &[u8]) -> Option<&RangeState> {
        let key_b = Bytes::copy_from_slice(key);
        let (_, id) = self.by_start.range(..=key_b).next_back()?;
        let state = self.ranges.get(id)?;
        if state.desc.contains(key) {
            Some(state)
        } else {
            None
        }
    }

    /// Mutable access to the range containing `key`.
    pub fn lookup_mut(&mut self, key: &[u8]) -> Option<&mut RangeState> {
        let id = {
            let key_b = Bytes::copy_from_slice(key);
            let (_, id) = self.by_start.range(..=key_b).next_back()?;
            *id
        };
        let state = self.ranges.get_mut(&id)?;
        if state.desc.contains(key) {
            Some(state)
        } else {
            None
        }
    }

    /// State of a specific range.
    pub fn get(&self, id: RangeId) -> Option<&RangeState> {
        self.ranges.get(&id)
    }

    /// Mutable state of a specific range.
    pub fn get_mut(&mut self, id: RangeId) -> Option<&mut RangeState> {
        self.ranges.get_mut(&id)
    }

    /// Iterates all ranges.
    pub fn iter(&self) -> impl Iterator<Item = &RangeState> {
        self.ranges.values()
    }

    /// Mutably iterates all ranges.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RangeState> {
        self.ranges.values_mut()
    }

    /// Number of ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// All ranges whose span intersects `[start, end)`, in key order.
    pub fn ranges_overlapping(&self, start: &[u8], end: &[u8]) -> Vec<&RangeState> {
        let mut out = Vec::new();
        // The range containing `start` may begin before it.
        if let Some(first) = self.lookup(start) {
            out.push(first);
        }
        let start_b = Bytes::copy_from_slice(start);
        for (s, id) in self.by_start.range(start_b..) {
            if s.as_ref() >= end {
                break;
            }
            if out.last().map(|r| r.desc.id) == Some(*id) {
                continue;
            }
            if let Some(r) = self.ranges.get(id) {
                out.push(r);
            }
        }
        out
    }
}

/// A cached directory entry held by a client.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The cached descriptor.
    pub desc: RangeDescriptor,
    /// Last-known leaseholder.
    pub leaseholder: NodeId,
}

/// A client-side, possibly stale view of the directory.
#[derive(Debug, Default)]
pub struct RangeCache {
    by_start: BTreeMap<Bytes, CacheEntry>,
    /// Lookups that had to go to META (cold or invalidated).
    pub meta_lookups: u64,
    /// Lookups served from cache.
    pub cache_hits: u64,
}

impl RangeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        RangeCache::default()
    }

    /// A cached entry covering `key`, if present.
    pub fn lookup(&mut self, key: &[u8]) -> Option<CacheEntry> {
        let key_b = Bytes::copy_from_slice(key);
        let (_, entry) = self.by_start.range(..=key_b).next_back()?;
        if entry.desc.contains(key) {
            self.cache_hits += 1;
            Some(entry.clone())
        } else {
            None
        }
    }

    /// Installs an entry (from a META lookup or a redirect hint).
    pub fn insert(&mut self, entry: CacheEntry) {
        // Evict any entries overlapping the new descriptor (stale splits).
        let start = entry.desc.start.clone();
        let end = entry.desc.end.clone();
        let stale: Vec<Bytes> = self
            .by_start
            .range(..end.clone())
            .filter(|(_, e)| e.desc.end.as_ref() > start.as_ref())
            .map(|(k, _)| k.clone())
            .collect();
        for k in stale {
            self.by_start.remove(&k);
        }
        self.by_start.insert(start, entry);
    }

    /// Records a META lookup (stats) and installs the result.
    pub fn fill_from_meta(&mut self, entry: CacheEntry) {
        self.meta_lookups += 1;
        self.insert(entry);
    }

    /// Drops the entry covering `key` (after a redirect or range-not-found).
    pub fn invalidate(&mut self, key: &[u8]) {
        let key_b = Bytes::copy_from_slice(key);
        let found = self.by_start.range(..=key_b).next_back().map(|(k, _)| k.clone());
        if let Some(k) = found {
            self.by_start.remove(&k);
        }
    }

    /// Updates the cached leaseholder after a redirect hint.
    pub fn update_leaseholder(&mut self, key: &[u8], holder: NodeId) {
        let key_b = Bytes::copy_from_slice(key);
        let found = self.by_start.range(..=key_b).next_back().map(|(k, _)| k.clone());
        if let Some(k) = found {
            if let Some(e) = self.by_start.get_mut(&k) {
                if e.desc.contains(key) {
                    e.leaseholder = holder;
                }
            }
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.by_start.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.by_start.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys;
    use crdb_util::TenantId;

    fn mkrange(id: u64, t: u64, start: &[u8], end: &[u8]) -> RangeState {
        RangeState::new(
            RangeDescriptor {
                id: RangeId(id),
                start: keys::make_key(TenantId(t), start),
                end: if end.is_empty() {
                    keys::tenant_span_end(TenantId(t))
                } else {
                    keys::make_key(TenantId(t), end)
                },
                replicas: vec![NodeId(1), NodeId(2), NodeId(3)],
            },
            1,
        )
    }

    #[test]
    fn directory_lookup_by_containment() {
        let mut d = Directory::new();
        d.insert(mkrange(1, 5, b"", b"m"));
        d.insert(mkrange(2, 5, b"m", b""));
        let k = keys::make_key(TenantId(5), b"apple");
        assert_eq!(d.lookup(&k).unwrap().desc.id, RangeId(1));
        let k = keys::make_key(TenantId(5), b"zebra");
        assert_eq!(d.lookup(&k).unwrap().desc.id, RangeId(2));
        let k = keys::make_key(TenantId(6), b"a");
        assert!(d.lookup(&k).is_none(), "no range for unknown tenant");
    }

    #[test]
    fn overlapping_ranges_in_order() {
        let mut d = Directory::new();
        d.insert(mkrange(1, 5, b"", b"g"));
        d.insert(mkrange(2, 5, b"g", b"p"));
        d.insert(mkrange(3, 5, b"p", b""));
        let start = keys::make_key(TenantId(5), b"c");
        let end = keys::make_key(TenantId(5), b"r");
        let ids: Vec<_> = d.ranges_overlapping(&start, &end).iter().map(|r| r.desc.id).collect();
        assert_eq!(ids, vec![RangeId(1), RangeId(2), RangeId(3)]);
        let narrow_end = keys::make_key(TenantId(5), b"h");
        let ids: Vec<_> =
            d.ranges_overlapping(&start, &narrow_end).iter().map(|r| r.desc.id).collect();
        assert_eq!(ids, vec![RangeId(1), RangeId(2)]);
    }

    #[test]
    fn cache_hit_miss_and_invalidate() {
        let mut c = RangeCache::new();
        let k = keys::make_key(TenantId(5), b"x");
        assert!(c.lookup(&k).is_none());
        let r = mkrange(1, 5, b"", b"");
        c.fill_from_meta(CacheEntry { desc: r.desc.clone(), leaseholder: NodeId(2) });
        assert_eq!(c.lookup(&k).unwrap().leaseholder, NodeId(2));
        assert_eq!(c.meta_lookups, 1);
        assert_eq!(c.cache_hits, 1);
        c.invalidate(&k);
        assert!(c.lookup(&k).is_none());
    }

    #[test]
    fn stale_entries_evicted_on_split_install() {
        let mut c = RangeCache::new();
        let whole = mkrange(1, 5, b"", b"");
        c.insert(CacheEntry { desc: whole.desc.clone(), leaseholder: NodeId(1) });
        // A split produced two halves; inserting one evicts the stale whole.
        let left = mkrange(2, 5, b"", b"m");
        c.insert(CacheEntry { desc: left.desc.clone(), leaseholder: NodeId(1) });
        let right_key = keys::make_key(TenantId(5), b"z");
        assert!(c.lookup(&right_key).is_none(), "stale whole-range entry gone");
        let left_key = keys::make_key(TenantId(5), b"a");
        assert_eq!(c.lookup(&left_key).unwrap().desc.id, RangeId(2));
    }

    #[test]
    fn update_leaseholder_hint() {
        let mut c = RangeCache::new();
        let r = mkrange(1, 5, b"", b"");
        c.insert(CacheEntry { desc: r.desc.clone(), leaseholder: NodeId(1) });
        let k = keys::make_key(TenantId(5), b"q");
        c.update_leaseholder(&k, NodeId(3));
        assert_eq!(c.lookup(&k).unwrap().leaseholder, NodeId(3));
    }
}
