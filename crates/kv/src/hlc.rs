//! Hybrid logical clock timestamps.
//!
//! MVCC versions are ordered by `(wall nanoseconds, logical counter)`. The
//! logical component disambiguates events in the same simulated instant —
//! common in a discrete-event simulation where many operations share a
//! firing time.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use crdb_util::time::SimTime;

/// An MVCC timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp {
    /// Wall component: nanoseconds of virtual time.
    pub wall: u64,
    /// Logical tie-breaker.
    pub logical: u32,
}

impl Timestamp {
    /// The zero timestamp (before all writes).
    pub const ZERO: Timestamp = Timestamp { wall: 0, logical: 0 };

    /// The maximum timestamp.
    pub const MAX: Timestamp = Timestamp { wall: u64::MAX, logical: u32::MAX };

    /// A timestamp at the given instant with logical 0.
    pub fn at(t: SimTime) -> Timestamp {
        Timestamp { wall: t.as_nanos(), logical: 0 }
    }

    /// The next representable timestamp.
    pub fn next(self) -> Timestamp {
        if self.logical == u32::MAX {
            Timestamp { wall: self.wall + 1, logical: 0 }
        } else {
            Timestamp { wall: self.wall, logical: self.logical + 1 }
        }
    }

    /// The instant of the wall component.
    pub fn to_sim_time(self) -> SimTime {
        SimTime::from_nanos(self.wall)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:09},{}", self.wall / 1_000_000_000, self.wall % 1_000_000_000, self.logical)
    }
}

/// A node-local HLC: issues monotonically increasing timestamps that never
/// run behind the supplied wall clock.
#[derive(Clone)]
pub struct Hlc {
    last: Rc<Cell<Timestamp>>,
}

impl Hlc {
    /// Creates an HLC starting at zero.
    pub fn new() -> Self {
        Hlc { last: Rc::new(Cell::new(Timestamp::ZERO)) }
    }

    /// Issues a timestamp at or after `now`, strictly after any previously
    /// issued timestamp.
    pub fn now(&self, now: SimTime) -> Timestamp {
        let wall = now.as_nanos();
        let last = self.last.get();
        let next = if wall > last.wall { Timestamp { wall, logical: 0 } } else { last.next() };
        self.last.set(next);
        next
    }

    /// Folds in an observed remote timestamp, keeping the clock ahead of it.
    pub fn observe(&self, remote: Timestamp) {
        if remote > self.last.get() {
            self.last.set(remote);
        }
    }
}

impl Default for Hlc {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        let a = Timestamp { wall: 5, logical: 0 };
        let b = Timestamp { wall: 5, logical: 1 };
        let c = Timestamp { wall: 6, logical: 0 };
        assert!(a < b && b < c);
        assert_eq!(a.next(), b);
    }

    #[test]
    fn hlc_is_strictly_monotonic() {
        let hlc = Hlc::new();
        let t1 = hlc.now(SimTime::from_nanos(100));
        let t2 = hlc.now(SimTime::from_nanos(100));
        let t3 = hlc.now(SimTime::from_nanos(50)); // clock stalled
        assert!(t1 < t2 && t2 < t3);
        let t4 = hlc.now(SimTime::from_nanos(200));
        assert!(t3 < t4);
        assert_eq!(t4.wall, 200);
        assert_eq!(t4.logical, 0);
    }

    #[test]
    fn observe_advances_clock() {
        let hlc = Hlc::new();
        hlc.observe(Timestamp { wall: 1_000, logical: 5 });
        let t = hlc.now(SimTime::from_nanos(10));
        assert!(t > Timestamp { wall: 1_000, logical: 5 });
    }

    #[test]
    fn display_is_readable() {
        let t = Timestamp { wall: 1_500_000_000, logical: 2 };
        assert_eq!(t.to_string(), "1.500000000,2");
    }
}
