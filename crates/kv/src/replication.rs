//! Raft-style quorum replication timing.
//!
//! The data path applies replicated mutations to every replica's engine
//! synchronously (the simulation is single-threaded, so replicas are never
//! observably inconsistent); what is *simulated* is the commit latency — a
//! write acknowledges only after a majority of replicas (counting the
//! leaseholder itself) would have acked, i.e. after the `(quorum-1)`-th
//! fastest follower round trip.

use std::time::Duration;

use crdb_sim::{Location, Sim, Topology};

/// The delay until a write proposed by the leaseholder is committed by a
/// quorum: the `(quorum-1)`-th smallest follower RTT (zero for a
/// single-replica range).
pub fn quorum_commit_delay(
    sim: &Sim,
    topology: &Topology,
    leader: Location,
    followers: &[Location],
) -> Duration {
    let replicas = followers.len() + 1;
    let quorum = replicas / 2 + 1;
    let follower_acks_needed = quorum - 1;
    if follower_acks_needed == 0 {
        return Duration::ZERO;
    }
    let mut rtts: Vec<Duration> =
        followers.iter().map(|&f| topology.sample_rtt(sim, leader, f)).collect();
    rtts.sort();
    rtts[follower_acks_needed - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdb_util::time::dur;
    use crdb_util::RegionId;

    #[test]
    fn single_replica_commits_immediately() {
        let sim = Sim::new(1);
        let t = Topology::single_region("us-east1", 3);
        let leader = Location::new(RegionId(0), 0);
        assert_eq!(quorum_commit_delay(&sim, &t, leader, &[]), Duration::ZERO);
    }

    #[test]
    fn three_replicas_wait_for_fastest_follower() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let leader = Location::new(RegionId(0), 0);
        let near = Location::new(RegionId(0), 1); // same region: ~1.5ms RTT
        let far = Location::new(RegionId(2), 0); // asia: ~180ms RTT
        let d = quorum_commit_delay(&sim, &t, leader, &[near, far]);
        // Quorum = 2 of 3: the leader plus its *fastest* follower.
        assert!(d < dur::ms(3), "near follower suffices: {d:?}");
    }

    #[test]
    fn five_replicas_wait_for_second_follower() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let leader = Location::new(RegionId(0), 0);
        let followers = [
            Location::new(RegionId(0), 1), // ~1.5ms
            Location::new(RegionId(1), 0), // ~105ms
            Location::new(RegionId(1), 1), // ~105ms
            Location::new(RegionId(2), 0), // ~180ms
        ];
        let d = quorum_commit_delay(&sim, &t, leader, &followers);
        // Quorum = 3 of 5: leader + 2 fastest followers -> bounded by the
        // europe RTT, far below the asia RTT.
        assert!(d > dur::ms(50) && d < dur::ms(130), "{d:?}");
    }
}
