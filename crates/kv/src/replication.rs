//! Raft-style quorum replication timing.
//!
//! The data path applies replicated mutations to every replica's engine
//! synchronously (the simulation is single-threaded, so replicas are never
//! observably inconsistent); what is *simulated* is the commit latency — a
//! write acknowledges only after a majority of replicas (counting the
//! leaseholder itself) would have acked, i.e. after the `(quorum-1)`-th
//! fastest follower round trip.

use std::time::Duration;

use crdb_sim::{Location, Sim, Topology};

/// The delay until a write proposed by the leaseholder is committed by a
/// quorum: the `(quorum-1)`-th smallest follower RTT (zero for a
/// single-replica range).
pub fn quorum_commit_delay(
    sim: &Sim,
    topology: &Topology,
    leader: Location,
    followers: &[Location],
) -> Duration {
    let replicas = followers.len() + 1;
    let quorum = replicas / 2 + 1;
    let follower_acks_needed = quorum - 1;
    if follower_acks_needed == 0 {
        return Duration::ZERO;
    }
    let mut rtts: Vec<Duration> =
        followers.iter().map(|&f| topology.sample_rtt(sim, leader, f)).collect();
    rtts.sort();
    rtts[follower_acks_needed - 1]
}

/// Like [`quorum_commit_delay`], but followers carry a liveness flag:
/// only live followers can ack, so the delay is the
/// `(quorum-1)`-th smallest *live* follower RTT. Returns `None` when
/// the live followers (plus the leader) cannot form a quorum — the
/// write can never commit and must be rejected before it applies.
pub fn quorum_commit_delay_live(
    sim: &Sim,
    topology: &Topology,
    leader: Location,
    followers: &[(Location, bool)],
) -> Option<Duration> {
    let replicas = followers.len() + 1;
    let quorum = replicas / 2 + 1;
    let follower_acks_needed = quorum - 1;
    if follower_acks_needed == 0 {
        return Some(Duration::ZERO);
    }
    let mut rtts: Vec<Duration> = followers
        .iter()
        .filter(|(_, alive)| *alive)
        .map(|&(f, _)| topology.sample_rtt(sim, leader, f))
        .collect();
    if rtts.len() < follower_acks_needed {
        return None;
    }
    rtts.sort();
    Some(rtts[follower_acks_needed - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdb_util::time::dur;
    use crdb_util::RegionId;

    #[test]
    fn single_replica_commits_immediately() {
        let sim = Sim::new(1);
        let t = Topology::single_region("us-east1", 3);
        let leader = Location::new(RegionId(0), 0);
        assert_eq!(quorum_commit_delay(&sim, &t, leader, &[]), Duration::ZERO);
    }

    #[test]
    fn three_replicas_wait_for_fastest_follower() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let leader = Location::new(RegionId(0), 0);
        let near = Location::new(RegionId(0), 1); // same region: ~1.5ms RTT
        let far = Location::new(RegionId(2), 0); // asia: ~180ms RTT
        let d = quorum_commit_delay(&sim, &t, leader, &[near, far]);
        // Quorum = 2 of 3: the leader plus its *fastest* follower.
        assert!(d < dur::ms(3), "near follower suffices: {d:?}");
    }

    #[test]
    fn five_replicas_wait_for_second_follower() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let leader = Location::new(RegionId(0), 0);
        let followers = [
            Location::new(RegionId(0), 1), // ~1.5ms
            Location::new(RegionId(1), 0), // ~105ms
            Location::new(RegionId(1), 1), // ~105ms
            Location::new(RegionId(2), 0), // ~180ms
        ];
        let d = quorum_commit_delay(&sim, &t, leader, &followers);
        // Quorum = 3 of 5: leader + 2 fastest followers -> bounded by the
        // europe RTT, far below the asia RTT.
        assert!(d > dur::ms(50) && d < dur::ms(130), "{d:?}");
    }

    #[test]
    fn even_replica_counts_need_strict_majority() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let leader = Location::new(RegionId(0), 0);
        // 4 replicas: quorum = 3, so the leader plus its 2 fastest
        // followers — the europe RTT gates the commit, not asia.
        let followers = [
            Location::new(RegionId(0), 1), // ~1.5ms
            Location::new(RegionId(1), 0), // ~105ms
            Location::new(RegionId(2), 0), // ~180ms
        ];
        let d = quorum_commit_delay(&sim, &t, leader, &followers);
        assert!(d > dur::ms(50) && d < dur::ms(130), "{d:?}");
        // 2 replicas: quorum = 2 — a single follower must ack, so the
        // commit waits on it even when it is far away.
        let d2 = quorum_commit_delay(&sim, &t, leader, &followers[2..]);
        assert!(d2 > dur::ms(150), "lone follower gates the commit: {d2:?}");
    }

    #[test]
    fn live_delay_matches_plain_delay_when_all_live() {
        let sim = Sim::new(7);
        let t = Topology::three_region();
        let leader = Location::new(RegionId(0), 0);
        let followers = [Location::new(RegionId(1), 0), Location::new(RegionId(2), 0)];
        let with_flags: Vec<(Location, bool)> = followers.iter().map(|&f| (f, true)).collect();
        // Same seed twice: sampling order matches, so the values agree.
        let plain = quorum_commit_delay(&Sim::new(7), &t, leader, &followers);
        let live = quorum_commit_delay_live(&sim, &t, leader, &with_flags).unwrap();
        assert_eq!(plain, live);
    }

    #[test]
    fn downed_follower_shifts_quorum_to_slower_replica() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let leader = Location::new(RegionId(0), 0);
        // Zone-spread 3-replica range: near follower down → the commit
        // must wait for the surviving cross-region follower.
        let followers =
            [(Location::new(RegionId(0), 1), false), (Location::new(RegionId(1), 0), true)];
        let d = quorum_commit_delay_live(&sim, &t, leader, &followers).unwrap();
        assert!(d > dur::ms(50), "must wait on the remote survivor: {d:?}");
    }

    #[test]
    fn downed_follower_majority_loses_quorum() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let leader = Location::new(RegionId(0), 0);
        // 5 replicas, quorum = 3 (leader + 2 followers): with 3 of 4
        // followers down only one can ack — no quorum.
        let followers = [
            (Location::new(RegionId(0), 1), false),
            (Location::new(RegionId(1), 0), false),
            (Location::new(RegionId(1), 1), false),
            (Location::new(RegionId(2), 0), true),
        ];
        assert_eq!(quorum_commit_delay_live(&sim, &t, leader, &followers), None);
        // Single-replica ranges never lose quorum (the leader is alive
        // by virtue of executing).
        assert_eq!(quorum_commit_delay_live(&sim, &t, leader, &[]), Some(Duration::ZERO));
    }

    #[test]
    fn quorum_survives_one_region_loss() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let leader = Location::new(RegionId(0), 0);
        // Region-spread placement (one replica per region), leader in
        // us. Losing any ONE region still leaves 2 of 3 replicas.
        for dark in [RegionId(1), RegionId(2)] {
            let followers: Vec<(Location, bool)> = [RegionId(1), RegionId(2)]
                .iter()
                .map(|&r| (Location::new(r, 0), r != dark))
                .collect();
            let d = quorum_commit_delay_live(&sim, &t, leader, &followers);
            assert!(d.is_some(), "one region loss must not break quorum (dark={dark:?})");
        }
        // Losing BOTH follower regions does break it.
        let all_dark =
            [(Location::new(RegionId(1), 0), false), (Location::new(RegionId(2), 0), false)];
        assert_eq!(quorum_commit_delay_live(&sim, &t, leader, &all_dark), None);
        // Zone-spread within one region survives a zone loss the same
        // way: replicas in zones 0/1/2, zone 1 dark.
        let t1 = Topology::single_region("us-east1", 3);
        let zoned = [(Location::new(RegionId(0), 1), false), (Location::new(RegionId(0), 2), true)];
        let d = quorum_commit_delay_live(&sim, &t1, Location::new(RegionId(0), 0), &zoned);
        assert!(d.is_some(), "zone-spread placement survives a zone loss");
    }
}
