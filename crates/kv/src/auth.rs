//! The SQL/KV security boundary (§3.2.3).
//!
//! "All operations performed by the SQL layer are mediated through the
//! KV/SQL boundary. At that boundary, an authorization component checks
//! incoming requests. The tenant SQL layer authenticates itself by means
//! of a unique TLS certificate. The KV authorization checks that all
//! requests performed by that identity target the specific portion of the
//! keyspace allocated to it."
//!
//! A [`TenantCert`] stands in for the mTLS client certificate: it is
//! unforgeable within the simulation (constructed only by the cluster's
//! certificate authority) and names exactly one tenant. The system tenant
//! (§3.2.4) bypasses keyspace checks — which is why production restricts
//! access to it so heavily.

use crdb_util::TenantId;

use crate::batch::{BatchRequest, KvError, RequestKind};
use crate::keys;

/// A tenant identity credential (mTLS certificate stand-in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantCert {
    tenant: TenantId,
    /// Serial number, so certificates can be rotated/revoked.
    serial: u64,
}

impl TenantCert {
    /// The authenticated tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The certificate serial.
    pub fn serial(&self) -> u64 {
        self.serial
    }
}

/// The cluster certificate authority: the only issuer of [`TenantCert`]s.
#[derive(Debug, Default)]
pub struct CertAuthority {
    next_serial: u64,
    revoked: std::collections::HashSet<u64>,
}

impl CertAuthority {
    /// Creates a CA.
    pub fn new() -> Self {
        CertAuthority { next_serial: 1, revoked: Default::default() }
    }

    /// Issues a certificate for `tenant`.
    pub fn issue(&mut self, tenant: TenantId) -> TenantCert {
        let serial = self.next_serial;
        self.next_serial += 1;
        TenantCert { tenant, serial }
    }

    /// Revokes a certificate by serial.
    pub fn revoke(&mut self, serial: u64) {
        self.revoked.insert(serial);
    }

    /// Whether a certificate is currently valid.
    pub fn is_valid(&self, cert: &TenantCert) -> bool {
        cert.serial < self.next_serial && !self.revoked.contains(&cert.serial)
    }
}

/// Authorizes a batch at the KV boundary: the certificate must be valid,
/// the batch's claimed tenant must match the certificate, and every
/// request must target the tenant's keyspace segment. The system tenant
/// bypasses the keyspace check.
pub fn authorize(
    ca: &CertAuthority,
    cert: &TenantCert,
    batch: &BatchRequest,
) -> Result<(), KvError> {
    if !ca.is_valid(cert) {
        return Err(KvError::Unauthorized);
    }
    if batch.tenant != cert.tenant() {
        return Err(KvError::Unauthorized);
    }
    if cert.tenant().is_system() {
        return Ok(());
    }
    let tenant = cert.tenant();
    for req in &batch.requests {
        let ok = match req {
            RequestKind::Scan { start, end, .. } | RequestKind::RefreshSpan { start, end, .. } => {
                keys::span_in_tenant(tenant, start, end)
            }
            RequestKind::EndTxn { .. } => match &batch.txn {
                Some(txn) => keys::in_tenant_span(tenant, &txn.anchor_key),
                None => false,
            },
            other => keys::in_tenant_span(tenant, other.primary_key()),
        };
        if !ok {
            return Err(KvError::Unauthorized);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hlc::Timestamp;
    use bytes::Bytes;

    fn batch(tenant: u64, requests: Vec<RequestKind>) -> BatchRequest {
        BatchRequest {
            tenant: TenantId(tenant),
            read_ts: Timestamp::ZERO,
            txn: None,
            deadline: crdb_util::Deadline::NONE,
            requests,
        }
    }

    #[test]
    fn own_keyspace_allowed() {
        let mut ca = CertAuthority::new();
        let cert = ca.issue(TenantId(5));
        let b = batch(5, vec![RequestKind::Get { key: keys::make_key(TenantId(5), b"k") }]);
        assert!(authorize(&ca, &cert, &b).is_ok());
    }

    #[test]
    fn cross_tenant_access_denied() {
        let mut ca = CertAuthority::new();
        let cert = ca.issue(TenantId(5));
        // Point read of another tenant's key.
        let b = batch(5, vec![RequestKind::Get { key: keys::make_key(TenantId(6), b"k") }]);
        assert_eq!(authorize(&ca, &cert, &b), Err(KvError::Unauthorized));
        // Scan straddling the tenant boundary.
        let b = batch(
            5,
            vec![RequestKind::Scan {
                start: keys::make_key(TenantId(5), b"a"),
                end: keys::make_key(TenantId(6), b"a"),
                limit: 10,
            }],
        );
        assert_eq!(authorize(&ca, &cert, &b), Err(KvError::Unauthorized));
    }

    #[test]
    fn claimed_tenant_must_match_cert() {
        let mut ca = CertAuthority::new();
        let cert = ca.issue(TenantId(5));
        // Batch claims tenant 6 with tenant 5's cert, targeting tenant 6
        // keys: the identity mismatch alone must reject it.
        let b = batch(6, vec![RequestKind::Get { key: keys::make_key(TenantId(6), b"k") }]);
        assert_eq!(authorize(&ca, &cert, &b), Err(KvError::Unauthorized));
    }

    #[test]
    fn system_tenant_bypasses_keyspace_check() {
        let mut ca = CertAuthority::new();
        let cert = ca.issue(TenantId::SYSTEM);
        let b = BatchRequest {
            tenant: TenantId::SYSTEM,
            read_ts: Timestamp::ZERO,
            txn: None,
            deadline: crdb_util::Deadline::NONE,
            requests: vec![RequestKind::Get { key: keys::make_key(TenantId(42), b"k") }],
        };
        assert!(authorize(&ca, &cert, &b).is_ok());
    }

    #[test]
    fn revoked_cert_rejected() {
        let mut ca = CertAuthority::new();
        let cert = ca.issue(TenantId(5));
        ca.revoke(cert.serial());
        let b = batch(5, vec![RequestKind::Get { key: keys::make_key(TenantId(5), b"k") }]);
        assert_eq!(authorize(&ca, &cert, &b), Err(KvError::Unauthorized));
    }

    #[test]
    fn forged_serial_rejected() {
        let ca = CertAuthority::new();
        // A cert with a serial the CA never issued.
        let forged = TenantCert { tenant: TenantId(5), serial: 999 };
        let b = batch(5, vec![RequestKind::Get { key: keys::make_key(TenantId(5), b"k") }]);
        assert_eq!(authorize(&ca, &forged, &b), Err(KvError::Unauthorized));
    }

    #[test]
    fn put_delete_and_intent_checked() {
        let mut ca = CertAuthority::new();
        let cert = ca.issue(TenantId(5));
        let foreign = keys::make_key(TenantId(9), b"x");
        for req in [
            RequestKind::Put { key: foreign.clone(), value: Bytes::from_static(b"v") },
            RequestKind::Delete { key: foreign.clone() },
            RequestKind::WriteIntent { key: foreign.clone(), value: None },
            RequestKind::ResolveIntent { key: foreign.clone(), commit_ts: None },
        ] {
            let b = batch(5, vec![req]);
            assert_eq!(authorize(&ca, &cert, &b), Err(KvError::Unauthorized));
        }
    }
}
