//! Transaction metadata and records.
//!
//! A transaction's authoritative state is its *transaction record*, stored
//! in the range holding the transaction's anchor key (its first write).
//! Writers lay down intents pointing at the record; committing flips the
//! record to `Committed(ts)` — the atomic commit point — after which
//! intents are resolved (synchronously by the coordinator here; lazily by
//! readers when they encounter a stale intent).

use bytes::{BufMut, Bytes, BytesMut};

use crate::hlc::Timestamp;

/// Transaction status as recorded in the txn record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// In flight.
    Pending,
    /// Committed at the given timestamp.
    Committed(Timestamp),
    /// Aborted; intents must be discarded.
    Aborted,
}

/// The persistent transaction record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecord {
    /// The transaction ID.
    pub txn_id: u64,
    /// Current status.
    pub status: TxnStatus,
}

impl TxnRecord {
    /// Serializes the record.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(24);
        b.put_u64(self.txn_id);
        match self.status {
            TxnStatus::Pending => b.put_u8(0),
            TxnStatus::Committed(ts) => {
                b.put_u8(1);
                b.put_u64(ts.wall);
                b.put_u32(ts.logical);
            }
            TxnStatus::Aborted => b.put_u8(2),
        }
        b.freeze()
    }

    /// Deserializes a record.
    pub fn decode(raw: &[u8]) -> Option<TxnRecord> {
        if raw.len() < 9 {
            return None;
        }
        let txn_id = u64::from_be_bytes(raw[0..8].try_into().ok()?);
        let status = match raw[8] {
            0 => TxnStatus::Pending,
            1 => {
                let wall = u64::from_be_bytes(raw.get(9..17)?.try_into().ok()?);
                let logical = u32::from_be_bytes(raw.get(17..21)?.try_into().ok()?);
                TxnStatus::Committed(Timestamp { wall, logical })
            }
            2 => TxnStatus::Aborted,
            _ => return None,
        };
        Some(TxnRecord { txn_id, status })
    }
}

/// The transaction context attached to a [`crate::BatchRequest`].
#[derive(Debug, Clone)]
pub struct TxnMeta {
    /// Unique transaction ID (issued by the coordinator).
    pub txn_id: u64,
    /// The key whose range holds the transaction record.
    pub anchor_key: Bytes,
    /// Transaction start time (used for admission-queue fairness, §5.1.2).
    pub start_ts: Timestamp,
    /// Provisional write/commit timestamp.
    pub write_ts: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip_all_statuses() {
        for status in [
            TxnStatus::Pending,
            TxnStatus::Committed(Timestamp { wall: 123, logical: 4 }),
            TxnStatus::Aborted,
        ] {
            let rec = TxnRecord { txn_id: 99, status };
            let decoded = TxnRecord::decode(&rec.encode()).expect("decodes");
            assert_eq!(decoded, rec);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(TxnRecord::decode(b""), None);
        assert_eq!(TxnRecord::decode(&[0u8; 8]), None);
        let mut bad = TxnRecord { txn_id: 1, status: TxnStatus::Pending }.encode().to_vec();
        bad[8] = 9;
        assert_eq!(TxnRecord::decode(&bad), None);
    }
}
