//! The client-side batch router (CockroachDB's DistSender equivalent).
//!
//! A [`KvClient`] belongs to one SQL node: it holds the tenant certificate,
//! a [`RangeCache`] refreshed by META follower reads (§3.2.5), and the
//! client's network location. `send` splits a batch by range, dispatches
//! sub-batches over the simulated network to the cached leaseholders,
//! retries on redirects / stale caches / intent conflicts, and reassembles
//! responses in request order.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use bytes::Bytes;
use crdb_obs::trace;
use crdb_sim::Location;
use crdb_util::retry::{Breaker, BreakerConfig, Deadline, RetryPolicy};
use crdb_util::time::dur;
use crdb_util::NodeId;

use crate::auth::TenantCert;
use crate::batch::{BatchRequest, BatchResponse, KvError, RequestKind, ResponseKind};
use crate::cluster::KvCluster;
use crate::directory::{CacheEntry, RangeCache};
use crate::hlc::Timestamp;
use crate::txn::TxnMeta;

/// Maximum redirect/stale-cache retries per sub-batch. Exhaustion
/// surfaces [`KvError::Unavailable`]. Sized so the retry window
/// (with backoff, ~19 s) outlasts a liveness-driven lease transfer
/// (TTL 9 s + 2 s check period).
const MAX_ROUTING_RETRIES: u32 = 16;
/// Maximum intent-conflict retries per sub-batch.
const MAX_CONFLICT_RETRIES: u32 = 32;
/// An RPC with no reply by this deadline (its request or response was
/// dropped by a partition) is treated as a `NodeUnavailable` hop
/// failure and retried — the client never hangs on a dropped message.
/// Clamped to the batch deadline's remaining time when one is set.
const RPC_TIMEOUT_MS: u64 = 10_000;

/// Routing backoff: doubles from 50 ms, capped at 1.6 s. The budget is
/// `MAX_ROUTING_RETRIES + 1` because the terminal check lives in
/// `retry_routing` (the redirect path retries without backoff), so the
/// policy must still yield the final backoff at attempt 16 — exactly
/// the legacy `(50ms << n.min(5)).min(1600ms)` schedule.
fn routing_policy() -> RetryPolicy {
    RetryPolicy::exponential(dur::ms(50), dur::ms(1_600), MAX_ROUTING_RETRIES + 1)
}

/// Conflict backoff: linear from 1 ms in 2 ms steps, capped at 32 ms —
/// exactly the legacy `(1 + 2n).min(32)` ms schedule with its 32-retry
/// budget.
fn conflict_policy() -> RetryPolicy {
    RetryPolicy::linear(dur::ms(1), dur::ms(2), dur::ms(32), MAX_CONFLICT_RETRIES)
}

struct ClientInner {
    cluster: KvCluster,
    cert: TenantCert,
    location: Location,
    cache: RefCell<RangeCache>,
    /// Per-target circuit breakers: repeated RPC timeouts against one
    /// node (a dark zone/region, a broken return path) trip the node's
    /// breaker, converting further sends into immediate hop failures
    /// instead of full RPC-timeout waits.
    breakers: RefCell<BTreeMap<NodeId, Breaker>>,
}

/// A cloneable handle to one SQL node's KV client.
#[derive(Clone)]
pub struct KvClient {
    inner: Rc<ClientInner>,
}

impl KvClient {
    /// Creates a client at `location` authenticated by `cert`.
    pub fn new(cluster: KvCluster, cert: TenantCert, location: Location) -> KvClient {
        KvClient {
            inner: Rc::new(ClientInner {
                cluster,
                cert,
                location,
                cache: RefCell::new(RangeCache::new()),
                breakers: RefCell::new(BTreeMap::new()),
            }),
        }
    }

    /// The authenticated tenant certificate.
    pub fn cert(&self) -> &TenantCert {
        &self.inner.cert
    }

    /// The client's location.
    pub fn location(&self) -> Location {
        self.inner.location
    }

    /// The owning cluster.
    pub fn cluster(&self) -> &KvCluster {
        &self.inner.cluster
    }

    /// META lookup statistics: `(meta_lookups, cache_hits)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.inner.cache.borrow();
        (c.meta_lookups, c.cache_hits)
    }

    /// Sends a batch, invoking `cb` with the merged response. All requests
    /// must belong to this client's tenant keyspace (enforced server-side
    /// too). Sub-batches run concurrently; the whole batch fails on the
    /// first sub-batch error.
    pub fn send(&self, batch: BatchRequest, cb: impl FnOnce(BatchResponse) + 'static) {
        // A batch whose deadline already passed never touches the
        // network: the typed terminal error surfaces immediately.
        if batch.deadline.expired(self.inner.cluster.sim.now()) {
            self.inner.cluster.degrade().bump_deadline_exceeded();
            cb(BatchResponse::err(KvError::DeadlineExceeded));
            return;
        }
        // Pieces: (original request index, span-order, request)
        let mut pieces: Vec<(usize, usize, RequestKind)> = Vec::new();
        for (i, req) in batch.requests.iter().enumerate() {
            pieces.push((i, 0, req.clone()));
        }
        let n_results = batch.requests.len();
        // Remember each scan's requested limit: a scan split across ranges
        // dispatches every piece with the full limit (any one range might
        // satisfy it alone), so the merged result must be re-truncated.
        let limits: Vec<Option<usize>> = batch
            .requests
            .iter()
            .map(|r| match r {
                RequestKind::Scan { limit, .. } => Some(*limit),
                _ => None,
            })
            .collect();
        let outer = trace::current();
        let span = trace::child("kv.send");
        span.tag("requests", n_results);
        let cb = {
            let span = span.clone();
            move |resp: BatchResponse| {
                if resp.error.is_some() {
                    span.tag("error", true);
                }
                span.end();
                let _g = outer.enter();
                cb(resp);
            }
        };
        let state = Rc::new(DispatchState {
            client: self.clone(),
            template: BatchRequest { requests: Vec::new(), ..batch },
            results: RefCell::new(vec![Vec::new(); n_results]),
            limits,
            outstanding: RefCell::new(0),
            finished: RefCell::new(Some(Box::new(cb))),
            span,
        });
        *state.outstanding.borrow_mut() = 1; // guard against sync completion
        for (idx, order, req) in pieces {
            DispatchState::dispatch_piece(&state, idx, order, req, 0, 0);
        }
        DispatchState::piece_done(&state); // release the guard
    }

    /// Convenience: non-transactional point read.
    pub fn get(&self, key: Bytes, cb: impl FnOnce(Result<Option<Bytes>, KvError>) + 'static) {
        let batch = BatchRequest {
            tenant: self.inner.cert.tenant(),
            read_ts: self.inner.cluster.now_ts(),
            txn: None,
            deadline: Deadline::NONE,
            requests: vec![RequestKind::Get { key }],
        };
        self.send(batch, move |resp| match resp.error {
            Some(e) => cb(Err(e)),
            None => match resp.results.into_iter().next() {
                Some(ResponseKind::Value(v)) => cb(Ok(v)),
                _ => cb(Err(KvError::RangeNotFound)),
            },
        });
    }

    /// Convenience: non-transactional write.
    pub fn put(&self, key: Bytes, value: Bytes, cb: impl FnOnce(Result<(), KvError>) + 'static) {
        let batch = BatchRequest {
            tenant: self.inner.cert.tenant(),
            read_ts: self.inner.cluster.now_ts(),
            txn: None,
            deadline: Deadline::NONE,
            requests: vec![RequestKind::Put { key, value }],
        };
        self.send(batch, move |resp| match resp.error {
            Some(e) => cb(Err(e)),
            None => cb(Ok(())),
        });
    }

    /// Convenience: snapshot scan.
    pub fn scan(
        &self,
        start: Bytes,
        end: Bytes,
        limit: usize,
        cb: impl FnOnce(Result<Vec<(Bytes, Bytes)>, KvError>) + 'static,
    ) {
        let batch = BatchRequest {
            tenant: self.inner.cert.tenant(),
            read_ts: self.inner.cluster.now_ts(),
            txn: None,
            deadline: Deadline::NONE,
            requests: vec![RequestKind::Scan { start, end, limit }],
        };
        self.send(batch, move |resp| match resp.error {
            Some(e) => cb(Err(e)),
            None => match resp.results.into_iter().next() {
                Some(ResponseKind::Pairs(p)) => cb(Ok(p)),
                _ => cb(Err(KvError::RangeNotFound)),
            },
        });
    }

    /// Resolves the range containing `key`, using the cache or a META
    /// follower read (one network hop to the nearest *reachable* node,
    /// §3.2.5). Fails with [`KvError::Unavailable`] when no live node
    /// is reachable, and [`KvError::RangeNotFound`] when the directory
    /// has no range for the key.
    fn resolve(
        &self,
        key: Bytes,
        parent: trace::MaybeSpan,
        cb: impl FnOnce(Result<CacheEntry, KvError>) + 'static,
    ) {
        // Bind the lookup so the cache borrow ends before `cb` runs: the
        // callback may synchronously re-dispatch (scan split) and re-enter
        // this cache.
        let cached = self.inner.cache.borrow_mut().lookup(&key);
        if let Some(entry) = cached {
            cb(Ok(entry));
            return;
        }
        let cluster = self.inner.cluster.clone();
        let this = self.clone();
        let nearest = match cluster.nearest_node(self.inner.location) {
            Some(n) => n,
            None => {
                cb(Err(KvError::Unavailable));
                return;
            }
        };
        let meta_span = parent.child("meta.lookup");
        let topo = cluster.topology();
        let sim = cluster.sim.clone();
        let my_loc = self.inner.location;
        let node_loc = nearest.location;
        // Request hop.
        topo.send(&sim, my_loc, node_loc, move || {
            // Follower read of META on the nearest node: the directory is
            // read as-of-now (staleness is tolerated because stale entries
            // just cause a redirect).
            let entry = {
                let inner = cluster.inner.borrow();
                inner
                    .directory
                    .lookup(&key)
                    .map(|r| CacheEntry { desc: r.desc.clone(), leaseholder: r.lease.holder })
            };
            let topo2 = cluster.topology();
            let sim2 = cluster.sim.clone();
            // Response hop.
            topo2.send(&sim2, node_loc, my_loc, move || {
                meta_span.end();
                if let Some(e) = entry.clone() {
                    this.inner.cache.borrow_mut().fill_from_meta(e);
                }
                cb(entry.ok_or(KvError::RangeNotFound));
            });
        });
    }
}

/// The batch completion callback, taken exactly once.
type FinishFn = Box<dyn FnOnce(BatchResponse)>;

/// In-flight state for one client batch.
struct DispatchState {
    client: KvClient,
    /// Batch header (tenant, read_ts, txn) without requests.
    template: BatchRequest,
    /// Per original request index: `(span_order, response)` pieces.
    results: RefCell<Vec<Vec<(usize, ResponseKind)>>>,
    /// Per original request index: the scan's requested row limit
    /// (`None` for non-scans), applied again after merging split pieces.
    limits: Vec<Option<usize>>,
    outstanding: RefCell<usize>,
    finished: RefCell<Option<FinishFn>>,
    /// The batch's `kv.send` span; per-attempt `kv.rpc` spans attach here
    /// even from scheduled retry contexts where no ambient span is active.
    span: trace::MaybeSpan,
}

impl DispatchState {
    fn routing_key(template: &BatchRequest, req: &RequestKind) -> Bytes {
        match req {
            RequestKind::EndTxn { .. } => template
                .txn
                .as_ref()
                .map(|t| t.anchor_key.clone())
                .unwrap_or_else(|| Bytes::from_static(b"")),
            other => other.primary_key().clone(),
        }
    }

    /// Routes one piece (a single request clamped to one range).
    fn dispatch_piece(
        state: &Rc<Self>,
        idx: usize,
        order: usize,
        req: RequestKind,
        routing_retries: u32,
        conflict_retries: u32,
    ) {
        *state.outstanding.borrow_mut() += 1;
        // The deadline is re-checked per dispatch: a piece that expired
        // while queued behind a backoff fails typed instead of sending.
        let now = state.client.inner.cluster.sim.now();
        if state.template.deadline.expired(now) {
            state.client.inner.cluster.degrade().bump_deadline_exceeded();
            state.fail(KvError::DeadlineExceeded);
            return;
        }
        let key = Self::routing_key(&state.template, &req);
        let rpc = state.span.child("kv.rpc");
        rpc.tag("req", idx);
        if routing_retries + conflict_retries > 0 {
            rpc.tag("retries", routing_retries + conflict_retries);
        }
        let st = Rc::clone(state);
        // A META hop dropped by a partition would otherwise leave this
        // piece hanging forever: guard the resolve with an RPC timeout
        // that converts silence into a retryable hop failure.
        let done = Rc::new(Cell::new(false));
        let timeout = {
            let st = Rc::clone(state);
            let done = Rc::clone(&done);
            let req = req.clone();
            let rpc = rpc.clone();
            state.client.inner.cluster.sim.schedule_after(state.rpc_timeout(now), move || {
                if done.replace(true) {
                    return;
                }
                rpc.tag("timeout", true);
                rpc.end();
                st.handle_response(
                    idx,
                    order,
                    req,
                    BatchResponse::err(KvError::NodeUnavailable),
                    routing_retries,
                    conflict_retries,
                );
            })
        };
        let sim = state.client.inner.cluster.sim.clone();
        state.client.clone().resolve(key, rpc.clone(), move |entry| {
            if done.replace(true) {
                return;
            }
            sim.cancel(timeout);
            let entry = match entry {
                Ok(e) => e,
                Err(e) => {
                    rpc.end();
                    st.fail(e);
                    return;
                }
            };
            // A scan crossing the range boundary splits here: the in-range
            // prefix executes now, the remainder re-dispatches.
            let mut req = req;
            if let RequestKind::Scan { start, end, limit } = &req {
                if end.as_ref() > entry.desc.end.as_ref()
                    && start.as_ref() < entry.desc.end.as_ref()
                {
                    let tail = RequestKind::Scan {
                        start: entry.desc.end.clone(),
                        end: end.clone(),
                        limit: *limit,
                    };
                    Self::dispatch_piece(&st, idx, order + 1, tail, 0, 0);
                    req = RequestKind::Scan {
                        start: start.clone(),
                        end: entry.desc.end.clone(),
                        limit: *limit,
                    };
                }
            }
            st.send_to_node(idx, order, req, entry, rpc, routing_retries, conflict_retries);
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn send_to_node(
        self: Rc<Self>,
        idx: usize,
        order: usize,
        req: RequestKind,
        entry: CacheEntry,
        rpc: trace::MaybeSpan,
        routing_retries: u32,
        conflict_retries: u32,
    ) {
        let client = self.client.clone();
        let cluster = client.inner.cluster.clone();
        let node = match cluster.node(entry.leaseholder) {
            Some(n) => n,
            None => {
                rpc.end();
                self.fail(KvError::NodeUnavailable);
                return;
            }
        };
        rpc.tag("node", entry.leaseholder);
        let topo = cluster.topology();
        let sim = cluster.sim.clone();
        let my_loc = client.inner.location;
        let node_loc = node.location;
        // Fail fast across a known partition: the leaseholder cannot be
        // reached and (liveness being a global control plane) its lease
        // will not move, so surface the typed error immediately instead
        // of letting the request time out retry after retry.
        if !topo.is_reachable(my_loc, node_loc) {
            let degrade = cluster.degrade();
            degrade.partition_fast_fails.set(degrade.partition_fast_fails.get() + 1);
            rpc.end();
            self.fail(KvError::Unavailable);
            return;
        }
        // Per-target circuit breaker: once the node's breaker is open
        // (repeated RPC timeouts — a broken return path or a node inside
        // a dark domain the client can still "see"), skip the RPC-timeout
        // wait entirely and take the routing-failure path, which backs
        // off, refreshes META, and reroutes once the lease moves.
        let now = sim.now();
        if !self.breaker_allows(entry.leaseholder, now) {
            let degrade = cluster.degrade();
            degrade.breaker_fast_fails.set(degrade.breaker_fast_fails.get() + 1);
            rpc.tag("breaker_open", true);
            rpc.end();
            self.handle_response(
                idx,
                order,
                req,
                BatchResponse::err(KvError::NodeUnavailable),
                routing_retries,
                conflict_retries,
            );
            return;
        }
        let sub = BatchRequest {
            tenant: self.template.tenant,
            read_ts: self.template.read_ts,
            txn: self.template.txn.clone(),
            deadline: self.template.deadline,
            requests: vec![req.clone()],
        };
        let cert = client.inner.cert.clone();
        let st = Rc::clone(&self);
        // RPC timeout: a partition starting while this request is in
        // flight drops a hop; convert the silence into a retryable hop
        // failure so the piece never hangs. Clamped to the deadline's
        // remaining time — waiting past it would be wasted.
        let done = Rc::new(Cell::new(false));
        let target = entry.leaseholder;
        let timeout = {
            let st = Rc::clone(&self);
            let done = Rc::clone(&done);
            let req = req.clone();
            let rpc = rpc.clone();
            sim.schedule_after(self.rpc_timeout(now), move || {
                if done.replace(true) {
                    return;
                }
                st.breaker_record(target, false);
                rpc.tag("timeout", true);
                rpc.end();
                st.handle_response(
                    idx,
                    order,
                    req,
                    BatchResponse::err(KvError::NodeUnavailable),
                    routing_retries,
                    conflict_retries,
                );
            })
        };
        topo.send(&sim, my_loc, node_loc, move || {
            let topo2 = st.client.inner.cluster.topology();
            let sim2 = st.client.inner.cluster.sim.clone();
            let st2 = Rc::clone(&st);
            let req2 = req.clone();
            let _g = rpc.enter();
            let rpc2 = rpc.clone();
            node.receive(&cert, sub, move |resp| {
                // Return hop, then handle.
                let st3 = Rc::clone(&st2);
                topo2.send(&sim2, node_loc, my_loc, move || {
                    if done.replace(true) {
                        return;
                    }
                    // Any reply — even an error — proves the path and
                    // node are live enough to answer.
                    st3.breaker_record(target, true);
                    rpc2.end();
                    st3.client.inner.cluster.sim.cancel(timeout);
                    st3.handle_response(idx, order, req2, resp, routing_retries, conflict_retries);
                });
            });
        });
    }

    /// Effective RPC timeout at `now`: the fixed wire timeout, clamped
    /// to the batch deadline's remaining time.
    fn rpc_timeout(&self, now: crdb_util::SimTime) -> Duration {
        dur::ms(RPC_TIMEOUT_MS).min(self.template.deadline.remaining(now))
    }

    /// Whether `node`'s breaker admits a request at `now`.
    fn breaker_allows(&self, node: NodeId, now: crdb_util::SimTime) -> bool {
        let mut breakers = self.client.inner.breakers.borrow_mut();
        breakers.entry(node).or_insert_with(|| Breaker::new(BreakerConfig::default())).allow(now)
    }

    /// Records an RPC outcome against `node`'s breaker, bumping the
    /// shared trip counter when the breaker opens.
    fn breaker_record(&self, node: NodeId, success: bool) {
        let now = self.client.inner.cluster.sim.now();
        let tripped = {
            let mut breakers = self.client.inner.breakers.borrow_mut();
            let b = breakers.entry(node).or_insert_with(|| Breaker::new(BreakerConfig::default()));
            let before = b.trips();
            if success {
                b.record_success(now);
            } else {
                b.record_failure(now);
            }
            b.trips() > before
        };
        if tripped {
            let degrade = self.client.inner.cluster.degrade();
            degrade.breaker_trips.set(degrade.breaker_trips.get() + 1);
        }
    }

    fn handle_response(
        self: Rc<Self>,
        idx: usize,
        order: usize,
        req: RequestKind,
        resp: BatchResponse,
        routing_retries: u32,
        conflict_retries: u32,
    ) {
        match resp.error {
            None => {
                let result = resp.results.into_iter().next().unwrap_or(ResponseKind::Ok);
                self.results.borrow_mut()[idx].push((order, result));
                Self::piece_done(&self);
            }
            Some(KvError::NotLeaseholder { leaseholder, .. }) => {
                let key = Self::routing_key(&self.template, &req);
                if let Some(holder) = leaseholder {
                    self.client.inner.cache.borrow_mut().update_leaseholder(&key, holder);
                } else {
                    self.client.inner.cache.borrow_mut().invalidate(&key);
                }
                self.retry_routing(idx, order, req, routing_retries, conflict_retries);
            }
            Some(KvError::RangeNotFound) | Some(KvError::NodeUnavailable) => {
                // A dead node or stale descriptor: refresh from META. The
                // lease-check loop moves leases off dead nodes within its
                // period, so retries back off long enough to observe that.
                let key = Self::routing_key(&self.template, &req);
                self.client.inner.cache.borrow_mut().invalidate(&key);
                let sim = self.client.inner.cluster.sim.clone();
                // The backoff must land before the batch deadline: a retry
                // scheduled past it is never scheduled at all.
                match routing_policy().next_delay(
                    routing_retries,
                    sim.now(),
                    self.template.deadline,
                ) {
                    Some(backoff) => {
                        let st = Rc::clone(&self);
                        sim.schedule_after(backoff, move || {
                            st.retry_routing(idx, order, req, routing_retries, conflict_retries);
                        });
                    }
                    None => {
                        self.client.inner.cluster.degrade().bump_deadline_exceeded();
                        self.fail(KvError::DeadlineExceeded);
                    }
                }
            }
            Some(e @ KvError::IntentConflict { .. }) if !req.is_write() => {
                // Back off briefly and retry: the conflicting transaction
                // commits or aborts shortly (short commit windows).
                let sim = self.client.inner.cluster.sim.clone();
                match conflict_policy().delay(conflict_retries) {
                    Some(backoff) if self.template.deadline.allows(sim.now(), backoff) => {
                        let degrade = self.client.inner.cluster.degrade();
                        degrade.retries.set(degrade.retries.get() + 1);
                        let st = Rc::clone(&self);
                        sim.schedule_after(backoff, move || {
                            Self::dispatch_piece(
                                &st,
                                idx,
                                order,
                                req,
                                routing_retries,
                                conflict_retries + 1,
                            );
                            Self::piece_done(&st);
                        });
                    }
                    Some(_) => {
                        self.client.inner.cluster.degrade().bump_deadline_exceeded();
                        self.fail(KvError::DeadlineExceeded);
                    }
                    // Conflict budget exhausted: surface the conflict.
                    None => self.fail(e),
                }
            }
            Some(e) => self.fail(e),
        }
    }

    fn retry_routing(
        self: Rc<Self>,
        idx: usize,
        order: usize,
        req: RequestKind,
        routing_retries: u32,
        conflict_retries: u32,
    ) {
        if routing_retries >= MAX_ROUTING_RETRIES {
            // The retry budget outlasts any single lease transfer; if we
            // still have no live route the range is genuinely unavailable.
            self.fail(KvError::Unavailable);
            return;
        }
        let degrade = self.client.inner.cluster.degrade();
        degrade.retries.set(degrade.retries.get() + 1);
        let st = Rc::clone(&self);
        Self::dispatch_piece(&st, idx, order, req, routing_retries + 1, conflict_retries);
        Self::piece_done(&self);
    }

    fn fail(self: &Rc<Self>, error: KvError) {
        // Bind before branching: the callback may issue a follow-up batch
        // that re-enters this state while the guard is live.
        let cb = self.finished.borrow_mut().take();
        if let Some(cb) = cb {
            cb(BatchResponse::err(error));
        }
        Self::piece_done(self);
    }

    fn piece_done(state: &Rc<Self>) {
        let remaining = {
            let mut o = state.outstanding.borrow_mut();
            *o -= 1;
            *o
        };
        if remaining > 0 {
            return;
        }
        // Bind before matching so the RefMut guard is dropped here and not
        // held across the merge below (PR 3 bug class).
        let finished = state.finished.borrow_mut().take();
        let cb = match finished {
            Some(cb) => cb,
            None => return, // already failed
        };
        // Merge: scans concatenate their pieces in span order, then apply
        // the original limit — each split piece carried the full limit, so
        // a scan crossing N ranges could otherwise return up to N × limit
        // rows.
        let mut merged = Vec::new();
        for (idx, pieces) in state.results.borrow_mut().iter_mut().enumerate() {
            pieces.sort_by_key(|(order, _)| *order);
            if pieces.len() == 1 {
                merged.push(pieces.remove(0).1);
                continue;
            }
            let mut pairs: Vec<(Bytes, Bytes)> = Vec::new();
            let mut fallback = ResponseKind::Ok;
            let mut is_scan = false;
            for (_, piece) in pieces.drain(..) {
                match piece {
                    ResponseKind::Pairs(p) => {
                        is_scan = true;
                        pairs.extend(p);
                    }
                    other => fallback = other,
                }
            }
            if is_scan {
                if let Some(Some(limit)) = state.limits.get(idx) {
                    pairs.truncate(*limit);
                }
                merged.push(ResponseKind::Pairs(pairs));
            } else {
                merged.push(fallback);
            }
        }
        cb(BatchResponse::ok(merged));
    }
}

/// Builds the `TxnMeta` for a new transaction anchored at `anchor_key`.
pub fn make_txn_meta(cluster: &KvCluster, anchor_key: Bytes) -> TxnMeta {
    let id = cluster.begin_txn();
    let ts = cluster.now_ts();
    TxnMeta { txn_id: id, anchor_key, start_ts: ts, write_ts: ts }
}

/// Helper for tests and single-shot operations: a timestamp for snapshots.
pub fn snapshot_ts(cluster: &KvCluster) -> Timestamp {
    cluster.now_ts()
}
