//! The KV batch API (§3.1).
//!
//! "Each SQL query is translated into a batched sequence of lower-level KV
//! requests like GET, PUT, and DELETE." A [`BatchRequest`] carries the
//! tenant identity (checked at the security boundary), an optional
//! transaction, and a list of requests that must all target one tenant's
//! keyspace. Batches are the unit of admission control and of the
//! estimated-CPU feature extraction.

use bytes::Bytes;
use crdb_util::{Deadline, NodeId, RangeId, TenantId};

use crate::hlc::Timestamp;
use crate::txn::TxnMeta;

/// One request within a batch.
#[derive(Debug, Clone)]
pub enum RequestKind {
    /// Point read of `key` at the batch read timestamp.
    Get {
        /// Tenant-prefixed key.
        key: Bytes,
    },
    /// Ordered scan of `[start, end)` returning at most `limit` pairs.
    Scan {
        /// Span start (tenant-prefixed).
        start: Bytes,
        /// Span end (exclusive).
        end: Bytes,
        /// Maximum pairs to return.
        limit: usize,
    },
    /// Non-transactional blind write.
    Put {
        /// Tenant-prefixed key.
        key: Bytes,
        /// New value.
        value: Bytes,
    },
    /// Non-transactional delete.
    Delete {
        /// Tenant-prefixed key.
        key: Bytes,
    },
    /// Transactional provisional write (requires `txn`); `None` deletes.
    WriteIntent {
        /// Tenant-prefixed key.
        key: Bytes,
        /// Provisional value (`None` = delete).
        value: Option<Bytes>,
    },
    /// Finalizes the batch's transaction (anchor range holds the record).
    EndTxn {
        /// Commit (true) or roll back (false).
        commit: bool,
    },
    /// Commit-time read validation: fails if anything in the span changed
    /// after `since` (committed version or foreign intent).
    RefreshSpan {
        /// Span start (tenant-prefixed).
        start: Bytes,
        /// Span end (exclusive).
        end: Bytes,
        /// The reader's snapshot timestamp.
        since: Timestamp,
    },
    /// Resolves a previously written intent after its transaction
    /// finalized. `commit_ts = None` discards the intent (abort).
    ResolveIntent {
        /// Tenant-prefixed key.
        key: Bytes,
        /// Commit timestamp, or `None` on abort.
        commit_ts: Option<Timestamp>,
    },
}

impl RequestKind {
    /// Whether this request mutates state (routes through the write queue).
    pub fn is_write(&self) -> bool {
        !matches!(
            self,
            RequestKind::Get { .. } | RequestKind::Scan { .. } | RequestKind::RefreshSpan { .. }
        )
    }

    /// Approximate payload bytes carried by the request.
    pub fn payload_bytes(&self) -> usize {
        match self {
            RequestKind::Get { key } | RequestKind::Delete { key } => key.len(),
            RequestKind::Scan { start, end, .. } | RequestKind::RefreshSpan { start, end, .. } => {
                start.len() + end.len()
            }
            RequestKind::Put { key, value } => key.len() + value.len(),
            RequestKind::WriteIntent { key, value } => {
                key.len() + value.as_ref().map_or(0, |v| v.len())
            }
            RequestKind::EndTxn { .. } => 16,
            RequestKind::ResolveIntent { key, .. } => key.len(),
        }
    }

    /// The primary key this request targets (scan start for scans).
    pub fn primary_key(&self) -> &Bytes {
        match self {
            RequestKind::Get { key }
            | RequestKind::Put { key, .. }
            | RequestKind::Delete { key }
            | RequestKind::WriteIntent { key, .. }
            | RequestKind::ResolveIntent { key, .. } => key,
            RequestKind::Scan { start, .. } | RequestKind::RefreshSpan { start, .. } => start,
            RequestKind::EndTxn { .. } => {
                panic!("EndTxn routes via the transaction anchor key")
            }
        }
    }
}

/// A batch of KV requests from one tenant.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The issuing tenant (must match the presented certificate).
    pub tenant: TenantId,
    /// Snapshot timestamp for reads.
    pub read_ts: Timestamp,
    /// Enclosing transaction, if any.
    pub txn: Option<TxnMeta>,
    /// The originating caller's deadline, propagated proxy → SQL
    /// coordinator → KV client → node. No layer below may schedule a
    /// retry past it; [`Deadline::NONE`] means unbounded.
    pub deadline: Deadline,
    /// The requests, executed in order.
    pub requests: Vec<RequestKind>,
}

impl BatchRequest {
    /// Whether any request in the batch writes.
    pub fn is_write(&self) -> bool {
        self.requests.iter().any(|r| r.is_write())
    }

    /// Total payload bytes across requests.
    pub fn payload_bytes(&self) -> usize {
        self.requests.iter().map(|r| r.payload_bytes()).sum()
    }
}

/// Per-request response.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseKind {
    /// Point-read result.
    Value(Option<Bytes>),
    /// Scan result: tenant-prefixed keys and values.
    Pairs(Vec<(Bytes, Bytes)>),
    /// Write acknowledged.
    Ok,
}

/// Batch-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum KvError {
    /// Request targeted a key outside the authenticated tenant's keyspace.
    Unauthorized,
    /// The receiving node does not hold the lease; retry at the indicated
    /// node (mirrors CockroachDB's NotLeaseHolderError redirect).
    NotLeaseholder {
        /// The range involved.
        range: RangeId,
        /// Best-known current leaseholder, if any.
        leaseholder: Option<NodeId>,
    },
    /// No range contains the requested key (stale directory cache).
    RangeNotFound,
    /// A write ran into a newer committed value; the transaction must
    /// restart at a higher timestamp.
    WriteTooOld {
        /// The conflicting committed timestamp.
        existing: Timestamp,
    },
    /// A read or write ran into another transaction's intent.
    IntentConflict {
        /// The other transaction.
        other_txn: u64,
    },
    /// The batch's transaction was aborted (e.g. by a conflicting pusher).
    TxnAborted,
    /// The operation waited past its deadline in admission queues.
    AdmissionTimeout,
    /// The node is shutting down or dead.
    NodeUnavailable,
    /// Fail-fast terminal error: the target is unreachable (network
    /// partition) or every bounded retry found no live route. Unlike
    /// [`KvError::NodeUnavailable`] — a per-hop condition the client
    /// retries internally — this is the typed error surfaced to callers
    /// instead of hanging or retrying forever.
    Unavailable,
    /// Terminal: the batch's propagated deadline expired (or the next
    /// retry would land past it). Never retried at any layer.
    DeadlineExceeded,
}

/// The outcome of a batch.
#[derive(Debug, Clone)]
pub struct BatchResponse {
    /// Per-request results (aligned with the request vector) on success.
    pub results: Vec<ResponseKind>,
    /// Error, if the batch failed as a unit.
    pub error: Option<KvError>,
    /// Total response payload bytes (for egress accounting).
    pub response_bytes: usize,
}

impl BatchResponse {
    /// A successful response.
    pub fn ok(results: Vec<ResponseKind>) -> Self {
        let response_bytes = results
            .iter()
            .map(|r| match r {
                ResponseKind::Value(v) => v.as_ref().map_or(0, |v| v.len()),
                ResponseKind::Pairs(pairs) => pairs.iter().map(|(k, v)| k.len() + v.len()).sum(),
                ResponseKind::Ok => 0,
            })
            .sum();
        BatchResponse { results, error: None, response_bytes }
    }

    /// A failed response.
    pub fn err(error: KvError) -> Self {
        BatchResponse { results: Vec::new(), error: Some(error), response_bytes: 0 }
    }

    /// Whether the batch succeeded.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::make_key;

    #[test]
    fn write_classification() {
        let key = make_key(TenantId(2), b"k");
        assert!(!RequestKind::Get { key: key.clone() }.is_write());
        assert!(!RequestKind::Scan { start: key.clone(), end: key.clone(), limit: 1 }.is_write());
        assert!(RequestKind::Put { key: key.clone(), value: Bytes::from_static(b"v") }.is_write());
        assert!(RequestKind::Delete { key: key.clone() }.is_write());
        assert!(RequestKind::WriteIntent { key, value: None }.is_write());
        assert!(RequestKind::EndTxn { commit: true }.is_write());
    }

    #[test]
    fn batch_payload_and_write_detection() {
        let key = make_key(TenantId(2), b"key1");
        let batch = BatchRequest {
            tenant: TenantId(2),
            read_ts: Timestamp::ZERO,
            txn: None,
            deadline: Deadline::NONE,
            requests: vec![
                RequestKind::Get { key: key.clone() },
                RequestKind::Put { key: key.clone(), value: Bytes::from_static(b"abc") },
            ],
        };
        assert!(batch.is_write());
        assert_eq!(batch.payload_bytes(), key.len() * 2 + 3);
    }

    #[test]
    fn response_byte_accounting() {
        let r = BatchResponse::ok(vec![
            ResponseKind::Value(Some(Bytes::from_static(b"12345"))),
            ResponseKind::Pairs(vec![(Bytes::from_static(b"k"), Bytes::from_static(b"vv"))]),
            ResponseKind::Ok,
        ]);
        assert!(r.is_ok());
        assert_eq!(r.response_bytes, 5 + 3);
        let e = BatchResponse::err(KvError::RangeNotFound);
        assert!(!e.is_ok());
    }
}
