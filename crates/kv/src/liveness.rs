//! Epoch-based node liveness.
//!
//! Every KV node periodically heartbeats a shared liveness record. A node
//! whose heartbeat does not land within the liveness duration loses its
//! epoch; epoch-based range leases held under the old epoch become invalid
//! and other replicas may claim them. This is the mechanism behind the
//! Fig. 12 "no limits" chaos: an overloaded node cannot get its heartbeat
//! CPU scheduled in time, fails liveness, and sheds all of its leases.

use std::collections::BTreeMap;
use std::time::Duration;

use crdb_util::time::SimTime;
use crdb_util::NodeId;

/// Liveness configuration (scaled from CockroachDB's 9 s record TTL /
/// 4.5 s heartbeat interval).
#[derive(Debug, Clone)]
pub struct LivenessConfig {
    /// How long a heartbeat keeps the node live.
    pub ttl: Duration,
    /// Heartbeat period.
    pub heartbeat_interval: Duration,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            ttl: Duration::from_secs(9),
            heartbeat_interval: Duration::from_millis(4_500),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Record {
    epoch: u64,
    expires: SimTime,
}

/// The shared liveness table.
#[derive(Debug, Default)]
pub struct Liveness {
    records: BTreeMap<NodeId, Record>,
    /// Total epoch increments (lease-invalidating events), for metrics.
    pub epoch_bumps: u64,
}

impl Liveness {
    /// Creates an empty table.
    pub fn new() -> Self {
        Liveness::default()
    }

    /// Registers a node with epoch 1, live until `now + ttl`.
    pub fn register(&mut self, node: NodeId, now: SimTime, ttl: Duration) {
        self.records.insert(node, Record { epoch: 1, expires: now + ttl });
    }

    /// Processes a successful heartbeat. If the node's previous record had
    /// expired, its epoch is bumped (invalidating old-epoch leases) before
    /// re-extending.
    pub fn heartbeat(&mut self, node: NodeId, now: SimTime, ttl: Duration) -> u64 {
        let rec = self.records.entry(node).or_insert(Record { epoch: 0, expires: SimTime::ZERO });
        if rec.expires < now {
            rec.epoch += 1;
            self.epoch_bumps += 1;
        }
        rec.expires = now + ttl;
        rec.epoch.max(1)
    }

    /// Whether the node is currently live.
    pub fn is_live(&self, node: NodeId, now: SimTime) -> bool {
        self.records.get(&node).is_some_and(|r| r.expires >= now)
    }

    /// The node's current epoch (0 if unknown).
    pub fn epoch(&self, node: NodeId) -> u64 {
        self.records.get(&node).map_or(0, |r| r.epoch.max(1))
    }

    /// Whether a lease taken at `lease_epoch` on `node` is still valid:
    /// the node must be live *and* still in that epoch.
    pub fn lease_valid(&self, node: NodeId, lease_epoch: u64, now: SimTime) -> bool {
        match self.records.get(&node) {
            Some(r) => r.expires >= now && r.epoch.max(1) == lease_epoch,
            None => false,
        }
    }

    /// All registered nodes currently live.
    pub fn live_nodes(&self, now: SimTime) -> Vec<NodeId> {
        // BTreeMap: already in node-id order.
        self.records.iter().filter(|(_, r)| r.expires >= now).map(|(&n, _)| n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdb_util::time::dur;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn heartbeat_keeps_node_live() {
        let mut l = Liveness::new();
        l.register(NodeId(1), t(0.0), dur::secs(9));
        assert!(l.is_live(NodeId(1), t(5.0)));
        assert!(!l.is_live(NodeId(1), t(10.0)));
        l.heartbeat(NodeId(1), t(4.5), dur::secs(9));
        assert!(l.is_live(NodeId(1), t(13.0)));
    }

    #[test]
    fn missed_heartbeat_bumps_epoch_and_invalidates_leases() {
        let mut l = Liveness::new();
        l.register(NodeId(1), t(0.0), dur::secs(9));
        let epoch = l.epoch(NodeId(1));
        assert!(l.lease_valid(NodeId(1), epoch, t(5.0)));
        // Expired at t=9; lease under the old epoch is invalid even after
        // the node recovers.
        assert!(!l.lease_valid(NodeId(1), epoch, t(10.0)));
        let new_epoch = l.heartbeat(NodeId(1), t(12.0), dur::secs(9));
        assert_eq!(new_epoch, epoch + 1);
        assert!(!l.lease_valid(NodeId(1), epoch, t(13.0)), "old-epoch lease stays dead");
        assert!(l.lease_valid(NodeId(1), new_epoch, t(13.0)));
        assert_eq!(l.epoch_bumps, 1);
    }

    #[test]
    fn timely_heartbeats_preserve_epoch() {
        let mut l = Liveness::new();
        l.register(NodeId(1), t(0.0), dur::secs(9));
        for i in 1..=10 {
            l.heartbeat(NodeId(1), t(i as f64 * 4.5), dur::secs(9));
        }
        assert_eq!(l.epoch(NodeId(1)), 1);
        assert_eq!(l.epoch_bumps, 0);
    }

    #[test]
    fn live_nodes_listing() {
        let mut l = Liveness::new();
        l.register(NodeId(1), t(0.0), dur::secs(9));
        l.register(NodeId(2), t(0.0), dur::secs(9));
        l.heartbeat(NodeId(2), t(8.0), dur::secs(9));
        assert_eq!(l.live_nodes(t(10.0)), vec![NodeId(2)]);
    }
}
