//! Processor-sharing CPU model.
//!
//! Each simulated node owns a [`CpuScheduler`] with a fixed number of
//! vCPUs. Work is submitted as *tasks* that need a known amount of CPU
//! time; while `n` tasks are active on `c` vCPUs, each progresses at rate
//! `min(1, c/n)` — the behaviour of a fair OS scheduler under load.
//!
//! The model exposes exactly the signals the paper's systems consume:
//!
//! - per-task actual CPU consumption, attributed to a tenant (the language
//!   runtime instrumentation of §5.1.4),
//! - the *runnable queue length* (`max(0, n - c)`), the quantity the 1000 Hz
//!   sampler feeds to the AIMD slot controller (§5.1.3), available here as
//!   an exact time-weighted integral rather than a sampled approximation,
//! - cumulative busy time, from which utilization metrics are derived for
//!   the autoscaler (§4.2.3) and the evaluation figures.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crdb_util::time::SimTime;
use crdb_util::TenantId;

use crate::engine::{EventId, Sim};

const EPS: f64 = 1e-12;
/// Work below this many CPU-seconds is sub-resolution (the virtual clock
/// ticks in nanoseconds) and treated as complete.
const DONE_THRESHOLD: f64 = 2e-9;

struct Task {
    remaining: f64,
    tenant: TenantId,
    on_complete: Box<dyn FnOnce()>,
}

struct Inner {
    vcpus: f64,
    tasks: Vec<Task>,
    last: SimTime,
    completion: Option<EventId>,
    usage: HashMap<TenantId, f64>,
    busy_integral: f64,
    runnable_integral: f64,
    /// Scheduler-contention overhead factor: with `r` runnable threads per
    /// vCPU beyond capacity, productive work slows by `1 + k·r` (context
    /// switching, cache pressure, GC — the superlinear collapse real
    /// overloaded nodes exhibit). Zero by default.
    contention_overhead: f64,
}

impl Inner {
    fn advance(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last).as_secs_f64();
        if dt <= 0.0 {
            self.last = now;
            return;
        }
        let n = self.tasks.len() as f64;
        if n > 0.0 {
            let rate = self.effective_rate(n);
            for t in &mut self.tasks {
                let used = (rate * dt).min(t.remaining);
                t.remaining -= used;
                *self.usage.entry(t.tenant).or_insert(0.0) += used;
            }
            self.busy_integral += n.min(self.vcpus) * dt;
            self.runnable_integral += (n - self.vcpus).max(0.0) * dt;
        }
        self.last = now;
    }

    fn next_completion_in(&self) -> Option<f64> {
        let n = self.tasks.len() as f64;
        if n == 0.0 {
            return None;
        }
        let rate = self.effective_rate(n);
        let min_remaining = self.tasks.iter().map(|t| t.remaining).fold(f64::MAX, f64::min);
        Some((min_remaining / rate).max(0.0))
    }

    /// Per-task productive rate for `n` active tasks: fair sharing plus
    /// the contention-overhead slowdown.
    fn effective_rate(&self, n: f64) -> f64 {
        let fair = (self.vcpus / n).min(1.0);
        let excess = ((n - self.vcpus) / self.vcpus).max(0.0);
        fair / (1.0 + self.contention_overhead * excess)
    }
}

/// A shared handle to one node's CPU.
#[derive(Clone)]
pub struct CpuScheduler {
    sim: Sim,
    inner: Rc<RefCell<Inner>>,
}

impl CpuScheduler {
    /// Creates a scheduler with `vcpus` virtual CPUs.
    pub fn new(sim: Sim, vcpus: f64) -> Self {
        assert!(vcpus > 0.0);
        let last = sim.now();
        CpuScheduler {
            sim,
            inner: Rc::new(RefCell::new(Inner {
                vcpus,
                tasks: Vec::new(),
                last,
                completion: None,
                usage: HashMap::new(),
                busy_integral: 0.0,
                runnable_integral: 0.0,
                contention_overhead: 0.0,
            })),
        }
    }

    /// Sets the contention-overhead factor (see `Inner`); experiments that
    /// study overload collapse (Fig. 12) enable it.
    pub fn set_contention_overhead(&self, k: f64) {
        assert!(k >= 0.0);
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        inner.advance(now);
        inner.contention_overhead = k;
        drop(inner);
        self.reschedule();
    }

    /// The configured vCPU count.
    pub fn vcpus(&self) -> f64 {
        self.inner.borrow().vcpus
    }

    /// Submits a task needing `cpu_seconds` of CPU, attributed to `tenant`.
    /// `on_complete` fires when the task has received its full CPU time.
    pub fn submit(&self, tenant: TenantId, cpu_seconds: f64, on_complete: impl FnOnce() + 'static) {
        assert!(cpu_seconds >= 0.0, "negative cpu cost");
        let now = self.sim.now();
        {
            let mut inner = self.inner.borrow_mut();
            inner.advance(now);
            inner.tasks.push(Task {
                remaining: cpu_seconds.max(EPS),
                tenant,
                on_complete: Box::new(on_complete),
            });
        }
        self.reschedule();
    }

    fn reschedule(&self) {
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        if let Some(ev) = inner.completion.take() {
            self.sim.cancel(ev);
        }
        if let Some(dt) = inner.next_completion_in() {
            let this = self.clone();
            // Round up to the clock resolution: a zero-delay completion
            // event would re-fire at the same instant without advancing
            // task accounting (dt=0), livelocking the simulation.
            let nanos = (dt * 1e9).ceil().max(1.0) as u64;
            let at = now + std::time::Duration::from_nanos(nanos);
            inner.completion = Some(self.sim.schedule_at(at, move || this.on_completion()));
        }
    }

    fn on_completion(&self) {
        let now = self.sim.now();
        let finished: Vec<Box<dyn FnOnce()>> = {
            let mut inner = self.inner.borrow_mut();
            inner.completion = None;
            inner.advance(now);
            let mut done = Vec::new();
            let mut i = 0;
            while i < inner.tasks.len() {
                if inner.tasks[i].remaining <= DONE_THRESHOLD {
                    done.push(inner.tasks.swap_remove(i).on_complete);
                } else {
                    i += 1;
                }
            }
            done
        };
        self.reschedule();
        // Run callbacks with no borrow held: they may submit new tasks.
        for cb in finished {
            cb();
        }
    }

    /// Number of currently active tasks.
    pub fn active_tasks(&self) -> usize {
        self.inner.borrow().tasks.len()
    }

    /// Instantaneous runnable-queue length: tasks beyond the vCPU count.
    pub fn runnable_len(&self) -> f64 {
        let inner = self.inner.borrow();
        (inner.tasks.len() as f64 - inner.vcpus).max(0.0)
    }

    /// Cumulative CPU-seconds of capacity used since construction.
    pub fn cumulative_busy(&self) -> f64 {
        let mut inner = self.inner.borrow_mut();
        let now = self.sim.now();
        inner.advance(now);
        inner.busy_integral
    }

    /// Cumulative time-weighted integral of the runnable queue length.
    /// The AIMD controller differentiates this to get the average runnable
    /// length over its sampling interval.
    pub fn cumulative_runnable(&self) -> f64 {
        let mut inner = self.inner.borrow_mut();
        let now = self.sim.now();
        inner.advance(now);
        inner.runnable_integral
    }

    /// Cumulative CPU-seconds consumed by `tenant`.
    pub fn cumulative_usage(&self, tenant: TenantId) -> f64 {
        let mut inner = self.inner.borrow_mut();
        let now = self.sim.now();
        inner.advance(now);
        inner.usage.get(&tenant).copied().unwrap_or(0.0)
    }

    /// Cumulative CPU-seconds consumed across all tenants.
    pub fn cumulative_usage_total(&self) -> f64 {
        let mut inner = self.inner.borrow_mut();
        let now = self.sim.now();
        inner.advance(now);
        // Summed in tenant order: float addition is order-sensitive and
        // the map's iteration order is not deterministic across runs.
        // simlint: allow(nondet-iter) — collected then sorted by tenant id before the order-sensitive float sum
        let mut entries: Vec<(TenantId, f64)> = inner.usage.iter().map(|(t, v)| (*t, *v)).collect();
        entries.sort_by_key(|&(t, _)| t);
        entries.into_iter().map(|(_, v)| v).sum()
    }
}

/// Tracks utilization of a [`CpuScheduler`] between samples: each call to
/// [`UtilizationProbe::sample`] returns average utilization (0..=1) since
/// the previous call.
pub struct UtilizationProbe {
    cpu: CpuScheduler,
    last_busy: f64,
    last_at: SimTime,
}

impl UtilizationProbe {
    /// Creates a probe anchored at the present.
    pub fn new(sim: &Sim, cpu: CpuScheduler) -> Self {
        let last_busy = cpu.cumulative_busy();
        UtilizationProbe { cpu, last_busy, last_at: sim.now() }
    }

    /// Average utilization in `[0, 1]` since the last sample.
    pub fn sample(&mut self, now: SimTime) -> f64 {
        let busy = self.cpu.cumulative_busy();
        let dt = now.duration_since(self.last_at).as_secs_f64();
        let util = if dt <= 0.0 { 0.0 } else { (busy - self.last_busy) / (dt * self.cpu.vcpus()) };
        self.last_busy = busy;
        self.last_at = now;
        util.clamp(0.0, 1.0)
    }

    /// Average vCPUs in use since the last sample (not normalized).
    pub fn sample_vcpus(&mut self, now: SimTime) -> f64 {
        self.sample(now) * self.cpu.vcpus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdb_util::time::dur;
    use std::cell::Cell;

    #[test]
    fn single_task_runs_at_full_speed() {
        let sim = Sim::new(1);
        let cpu = CpuScheduler::new(sim.clone(), 4.0);
        let done = Rc::new(Cell::new(None));
        let d = Rc::clone(&done);
        let s = sim.clone();
        cpu.submit(TenantId(2), 0.5, move || d.set(Some(s.now())));
        sim.run_to_completion();
        let at = done.get().expect("completed").as_secs_f64();
        assert!((at - 0.5).abs() < 1e-9, "{at}");
    }

    #[test]
    fn oversubscription_slows_tasks() {
        let sim = Sim::new(1);
        let cpu = CpuScheduler::new(sim.clone(), 1.0);
        let done = Rc::new(Cell::new(0u32));
        for _ in 0..4 {
            let d = Rc::clone(&done);
            cpu.submit(TenantId(2), 1.0, move || d.set(d.get() + 1));
        }
        // 4 tasks of 1 cpu-second on 1 vCPU: each runs at 1/4 speed and all
        // finish together at t=4.
        sim.run_until(SimTime::from_secs_f64(3.9));
        assert_eq!(done.get(), 0);
        sim.run_until(SimTime::from_secs_f64(4.1));
        assert_eq!(done.get(), 4);
    }

    #[test]
    fn usage_attribution_per_tenant() {
        let sim = Sim::new(1);
        let cpu = CpuScheduler::new(sim.clone(), 2.0);
        cpu.submit(TenantId(2), 1.0, || {});
        cpu.submit(TenantId(3), 2.0, || {});
        sim.run_to_completion();
        assert!((cpu.cumulative_usage(TenantId(2)) - 1.0).abs() < 1e-9);
        assert!((cpu.cumulative_usage(TenantId(3)) - 2.0).abs() < 1e-9);
        assert!((cpu.cumulative_usage_total() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn runnable_queue_accounting() {
        let sim = Sim::new(1);
        let cpu = CpuScheduler::new(sim.clone(), 2.0);
        for _ in 0..6 {
            cpu.submit(TenantId(2), 1.0, || {});
        }
        assert_eq!(cpu.runnable_len(), 4.0);
        // 6 tasks × 1s work on 2 vCPUs -> all complete at t=3; runnable
        // integral = 4 × 3 = 12.
        sim.run_to_completion();
        assert!((cpu.cumulative_runnable() - 12.0).abs() < 1e-6);
        assert_eq!(cpu.runnable_len(), 0.0);
    }

    #[test]
    fn staggered_arrivals() {
        let sim = Sim::new(1);
        let cpu = CpuScheduler::new(sim.clone(), 1.0);
        let t_first = Rc::new(Cell::new(None));
        let t_second = Rc::new(Cell::new(None));
        {
            let tf = Rc::clone(&t_first);
            let s = sim.clone();
            cpu.submit(TenantId(2), 1.0, move || tf.set(Some(s.now().as_secs_f64())));
        }
        {
            let cpu2 = cpu.clone();
            let ts = Rc::clone(&t_second);
            let s = sim.clone();
            sim.schedule_after(dur::ms(500), move || {
                let s2 = s.clone();
                cpu2.submit(TenantId(3), 0.25, move || ts.set(Some(s2.now().as_secs_f64())));
            });
        }
        sim.run_to_completion();
        // Task1 runs alone 0..0.5 (0.5 done), shares 0.5.. at 1/2 rate.
        // Task2 (0.25 work at 1/2 rate) finishes at t=1.0; task1 then has
        // 0.25 left at full rate, finishing at 1.25.
        assert!((t_second.get().unwrap() - 1.0).abs() < 1e-9);
        assert!((t_first.get().unwrap() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn utilization_probe() {
        let sim = Sim::new(1);
        let cpu = CpuScheduler::new(sim.clone(), 4.0);
        let mut probe = UtilizationProbe::new(&sim, cpu.clone());
        cpu.submit(TenantId(2), 2.0, || {});
        sim.run_until(SimTime::from_secs_f64(4.0));
        // 2 cpu-seconds over 4s on 4 vCPUs = 12.5%.
        let u = probe.sample(sim.now());
        assert!((u - 0.125).abs() < 1e-9, "{u}");
        // Nothing since.
        sim.run_for(dur::secs(1));
        assert_eq!(probe.sample(sim.now()), 0.0);
    }

    #[test]
    fn completion_callback_can_resubmit() {
        let sim = Sim::new(1);
        let cpu = CpuScheduler::new(sim.clone(), 1.0);
        let count = Rc::new(Cell::new(0));
        fn chain(cpu: CpuScheduler, count: Rc<Cell<u32>>, depth: u32) {
            if depth == 0 {
                return;
            }
            let cpu2 = cpu.clone();
            cpu.submit(TenantId(2), 0.1, move || {
                count.set(count.get() + 1);
                chain(cpu2.clone(), count, depth - 1);
            });
        }
        chain(cpu, Rc::clone(&count), 5);
        sim.run_to_completion();
        assert_eq!(count.get(), 5);
        assert!((sim.now().as_secs_f64() - 0.5).abs() < 1e-9);
    }
}
