//! FIFO rate-limited resources.
//!
//! Models disk-like resources with a fixed service rate in units/second —
//! we use it for LSM flush and compaction bandwidth (§5.1.3), where the
//! observable bottleneck is "bytes per second that can be flushed from the
//! memtable" or "bytes per second of L0→lower-level compaction".

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

use crdb_util::time::SimTime;

use crate::engine::{EventId, Sim};

struct Job {
    units: f64,
    on_complete: Box<dyn FnOnce()>,
}

struct Inner {
    rate: f64,
    queue: VecDeque<Job>,
    /// Remaining units of the job currently in service.
    in_service: Option<f64>,
    service_started: SimTime,
    completion: Option<EventId>,
    total_served: f64,
}

/// A shared handle to a FIFO resource serving `rate` units per second.
#[derive(Clone)]
pub struct RateResource {
    sim: Sim,
    inner: Rc<RefCell<Inner>>,
}

impl RateResource {
    /// Creates a resource with the given service rate (units/second).
    pub fn new(sim: Sim, rate: f64) -> Self {
        assert!(rate > 0.0);
        let now = sim.now();
        RateResource {
            sim,
            inner: Rc::new(RefCell::new(Inner {
                rate,
                queue: VecDeque::new(),
                in_service: None,
                service_started: now,
                completion: None,
                total_served: 0.0,
            })),
        }
    }

    /// The configured service rate in units/second.
    pub fn rate(&self) -> f64 {
        self.inner.borrow().rate
    }

    /// Changes the service rate. The job in service is re-timed with its
    /// remaining units at the new rate.
    pub fn set_rate(&self, rate: f64) {
        assert!(rate > 0.0);
        let now = self.sim.now();
        {
            let mut inner = self.inner.borrow_mut();
            if let Some(remaining) = inner.in_service {
                let elapsed = now.duration_since(inner.service_started).as_secs_f64();
                let done = (elapsed * inner.rate).min(remaining);
                inner.in_service = Some(remaining - done);
                inner.total_served += done;
                inner.service_started = now;
            }
            inner.rate = rate;
            if let Some(ev) = inner.completion.take() {
                self.sim.cancel(ev);
            }
        }
        self.arm();
    }

    /// Enqueues `units` of work; `on_complete` fires when it finishes.
    pub fn submit(&self, units: f64, on_complete: impl FnOnce() + 'static) {
        assert!(units >= 0.0);
        self.inner
            .borrow_mut()
            .queue
            .push_back(Job { units: units.max(1e-12), on_complete: Box::new(on_complete) });
        self.arm();
    }

    fn arm(&self) {
        let now = self.sim.now();
        let mut inner = self.inner.borrow_mut();
        if inner.completion.is_some() {
            return;
        }
        let units = match inner.in_service {
            Some(u) => u,
            None => match inner.queue.front() {
                None => return,
                Some(_) => {
                    let job_units = inner.queue.front().unwrap().units;
                    inner.in_service = Some(job_units);
                    inner.service_started = now;
                    job_units
                }
            },
        };
        let dt = Duration::from_secs_f64(units / inner.rate);
        let this = self.clone();
        inner.completion = Some(self.sim.schedule_after(dt, move || this.complete()));
    }

    fn complete(&self) {
        let cb = {
            let mut inner = self.inner.borrow_mut();
            inner.completion = None;
            let units = inner.in_service.take().expect("job in service");
            inner.total_served += units;
            inner.service_started = self.sim.now();
            inner.queue.pop_front().expect("queue head").on_complete
        };
        self.arm();
        cb();
    }

    /// Jobs waiting or in service.
    pub fn queue_len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Total units served since construction.
    pub fn total_served(&self) -> f64 {
        self.inner.borrow().total_served
    }

    /// Backlog in units (queued jobs plus the unserved remainder of the job
    /// in service).
    pub fn backlog(&self) -> f64 {
        let now = self.sim.now();
        let inner = self.inner.borrow();
        let queued: f64 = inner.queue.iter().skip(1).map(|j| j.units).sum();
        let head = match inner.in_service {
            Some(units) => {
                let elapsed = now.duration_since(inner.service_started).as_secs_f64();
                (units - elapsed * inner.rate).max(0.0)
            }
            None => inner.queue.front().map_or(0.0, |j| j.units),
        };
        queued + head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn serves_fifo_at_rate() {
        let sim = Sim::new(1);
        let disk = RateResource::new(sim.clone(), 100.0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for (units, label) in [(50.0, "a"), (100.0, "b")] {
            let o = Rc::clone(&order);
            let s = sim.clone();
            disk.submit(units, move || o.borrow_mut().push((label, s.now().as_secs_f64())));
        }
        sim.run_to_completion();
        let order = order.borrow();
        assert_eq!(order[0].0, "a");
        assert!((order[0].1 - 0.5).abs() < 1e-9);
        assert_eq!(order[1].0, "b");
        assert!((order[1].1 - 1.5).abs() < 1e-9);
        assert_eq!(disk.total_served(), 150.0);
    }

    #[test]
    fn rate_change_retimes_in_service_job() {
        let sim = Sim::new(1);
        let disk = RateResource::new(sim.clone(), 10.0);
        let done = Rc::new(Cell::new(None));
        let d = Rc::clone(&done);
        let s = sim.clone();
        disk.submit(20.0, move || d.set(Some(s.now().as_secs_f64())));
        // After 1s, 10 of 20 units done; halve the rate: 10 more units at
        // 5/s = 2s, finishing at t=3.
        sim.run_until(SimTime::from_secs_f64(1.0));
        disk.set_rate(5.0);
        sim.run_to_completion();
        assert!((done.get().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn backlog_tracks_queue() {
        let sim = Sim::new(1);
        let disk = RateResource::new(sim.clone(), 1.0);
        disk.submit(2.0, || {});
        disk.submit(3.0, || {});
        assert_eq!(disk.queue_len(), 2);
        assert!((disk.backlog() - 5.0).abs() < 1e-9);
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert!((disk.backlog() - 4.0).abs() < 1e-9);
        sim.run_to_completion();
        assert_eq!(disk.backlog(), 0.0);
    }
}
