//! The discrete-event engine.
//!
//! A [`Sim`] owns a hierarchical timer wheel of scheduled closures (see
//! [`crate::wheel`]) and a [`ManualClock`] shared (via the [`Clock`]
//! trait) with every component. Execution is single-threaded and
//! deterministic: ties in firing time are broken by schedule order, and
//! all randomness flows from one seeded RNG. Scheduling and cancellation
//! are O(1); cancelled events are removed eagerly rather than tombstoned.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use crdb_util::clock::ManualClock;
use crdb_util::slab::Slot;
use crdb_util::time::SimTime;
use crdb_util::Clock;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::wheel::TimerWheel;

/// Identifies a scheduled event so it can be cancelled. Packs the wheel's
/// generational slot token; a fired or cancelled id goes stale and
/// cancelling it again is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

type Callback = Box<dyn FnOnce()>;

struct Core {
    wheel: TimerWheel<Callback>,
    next_seq: u64,
    executed: u64,
}

/// A handle to the simulation. Cheap to clone; every component that needs
/// to schedule work holds one.
#[derive(Clone)]
pub struct Sim {
    core: Rc<RefCell<Core>>,
    clock: Arc<ManualClock>,
    rng: Rc<RefCell<SmallRng>>,
}

impl Sim {
    /// Creates a simulation with the given RNG seed. Identical seeds and
    /// identical schedules of calls produce identical runs.
    pub fn new(seed: u64) -> Self {
        Sim {
            core: Rc::new(RefCell::new(Core {
                wheel: TimerWheel::new(),
                next_seq: 0,
                executed: 0,
            })),
            clock: ManualClock::new(),
            rng: Rc::new(RefCell::new(SmallRng::seed_from_u64(seed))),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The shared clock, for components that only need to *read* time.
    pub fn clock(&self) -> Arc<ManualClock> {
        Arc::clone(&self.clock)
    }

    /// Runs `f` with the simulation's RNG. All randomness must flow through
    /// here to keep runs reproducible.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SmallRng) -> T) -> T {
        f(&mut self.rng.borrow_mut())
    }

    /// Schedules `callback` to run at absolute time `at` (clamped to now if
    /// in the past). Returns an id usable with [`Sim::cancel`].
    pub fn schedule_at(&self, at: SimTime, callback: impl FnOnce() + 'static) -> EventId {
        let mut core = self.core.borrow_mut();
        let at = at.max(self.clock.now());
        let seq = core.next_seq;
        core.next_seq += 1;
        let token = core.wheel.insert(at, seq, Box::new(callback));
        EventId(token.to_bits())
    }

    /// Schedules `callback` to run after `delay`.
    pub fn schedule_after(&self, delay: Duration, callback: impl FnOnce() + 'static) -> EventId {
        self.schedule_at(self.now() + delay, callback)
    }

    /// Cancels a scheduled event. Cancelling an already-fired or unknown
    /// event is a no-op.
    pub fn cancel(&self, id: EventId) {
        self.core.borrow_mut().wheel.cancel(Slot::from_bits(id.0));
    }

    /// Schedules `callback` to run every `period`, starting one period from
    /// now, until the simulation ends. The callback may return `false` to
    /// stop the recurrence.
    pub fn schedule_periodic(
        &self,
        period: Duration,
        mut callback: impl FnMut() -> bool + 'static,
    ) {
        let sim = self.clone();
        self.schedule_after(period, move || {
            if callback() {
                sim.schedule_periodic(period, callback);
            }
        });
    }

    /// Executes the next event, advancing the clock to its firing time.
    /// Returns `false` when the queue is empty.
    pub fn step(&self) -> bool {
        let (at, callback) = {
            let mut core = self.core.borrow_mut();
            match core.wheel.pop_min() {
                None => return false,
                Some((at, _seq, callback)) => {
                    core.executed += 1;
                    (at, callback)
                }
            }
        };
        self.clock.advance_to(at);
        callback();
        true
    }

    /// The firing time of the next pending event.
    fn peek_next_at(&self) -> Option<SimTime> {
        self.core.borrow_mut().wheel.peek_min_at()
    }

    /// Runs events until virtual time would exceed `until`, leaving later
    /// events queued and the clock at `until`.
    pub fn run_until(&self, until: SimTime) {
        loop {
            match self.peek_next_at() {
                None => break,
                Some(next_at) if next_at > until => break,
                Some(_) => {
                    self.step();
                }
            }
        }
        if self.clock.now() < until {
            self.clock.advance_to(until);
        }
    }

    /// Runs for `d` of virtual time from the current instant.
    pub fn run_for(&self, d: Duration) {
        let target = self.now() + d;
        self.run_until(target);
    }

    /// Drains the queue completely. Use with care: periodic events never
    /// let this return.
    pub fn run_to_completion(&self) {
        while self.step() {}
    }

    /// Number of events executed so far (for tests and diagnostics).
    pub fn events_executed(&self) -> u64 {
        self.core.borrow().executed
    }

    /// Number of live events currently queued (cancelled events are
    /// removed eagerly, so they never count).
    pub fn events_pending(&self) -> usize {
        self.core.borrow().wheel.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdb_util::time::dur;

    #[test]
    fn events_fire_in_time_order() {
        let sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (delay, label) in [(30u64, "c"), (10, "a"), (20, "b")] {
            let log = Rc::clone(&log);
            sim.schedule_after(dur::ms(delay), move || log.borrow_mut().push(label));
        }
        sim.run_to_completion();
        assert_eq!(*log.borrow(), vec!["a", "b", "c"]);
        assert_eq!(sim.now(), SimTime::from_nanos(30_000_000));
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let sim = Sim::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for label in ["first", "second", "third"] {
            let log = Rc::clone(&log);
            sim.schedule_after(dur::ms(5), move || log.borrow_mut().push(label));
        }
        sim.run_to_completion();
        assert_eq!(*log.borrow(), vec!["first", "second", "third"]);
    }

    #[test]
    fn cancel_suppresses_event() {
        let sim = Sim::new(1);
        let fired = Rc::new(RefCell::new(false));
        let f = Rc::clone(&fired);
        let id = sim.schedule_after(dur::ms(1), move || *f.borrow_mut() = true);
        sim.cancel(id);
        sim.run_to_completion();
        assert!(!*fired.borrow());
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let sim = Sim::new(1);
        let count = Rc::new(RefCell::new(0));
        for i in 1..=10u64 {
            let count = Rc::clone(&count);
            sim.schedule_after(dur::ms(i * 10), move || *count.borrow_mut() += 1);
        }
        sim.run_until(SimTime::from_secs_f64(0.05));
        assert_eq!(*count.borrow(), 5);
        assert_eq!(sim.now().as_secs_f64(), 0.05);
        sim.run_to_completion();
        assert_eq!(*count.borrow(), 10);
    }

    #[test]
    fn events_can_schedule_events() {
        let sim = Sim::new(1);
        let done = Rc::new(RefCell::new(SimTime::ZERO));
        {
            let sim2 = sim.clone();
            let done = Rc::clone(&done);
            sim.schedule_after(dur::ms(10), move || {
                let done = Rc::clone(&done);
                let sim3 = sim2.clone();
                sim2.schedule_after(dur::ms(15), move || {
                    *done.borrow_mut() = sim3.now();
                });
            });
        }
        sim.run_to_completion();
        assert_eq!(done.borrow().as_nanos(), 25_000_000);
    }

    #[test]
    fn periodic_runs_until_false() {
        let sim = Sim::new(1);
        let count = Rc::new(RefCell::new(0));
        let c = Rc::clone(&count);
        sim.schedule_periodic(dur::secs(1), move || {
            *c.borrow_mut() += 1;
            *c.borrow() < 3
        });
        sim.run_until(SimTime::from_secs_f64(100.0));
        assert_eq!(*count.borrow(), 3);
    }

    #[test]
    fn deterministic_rng() {
        let a = Sim::new(42);
        let b = Sim::new(42);
        let va: u64 = a.with_rng(rand::Rng::gen);
        let vb: u64 = b.with_rng(rand::Rng::gen);
        assert_eq!(va, vb);
    }
}
