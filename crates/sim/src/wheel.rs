//! Hierarchical timer wheel — the simulator's event queue.
//!
//! The engine previously kept every pending event in one
//! `BinaryHeap<Reverse<Scheduled>>` with a `HashSet` of cancellation
//! tombstones. That is O(log n) per operation with n = *all* pending
//! events, and cancelled events still pay a full pop each — ruinous at
//! paper scale, where 20,000 suspended tenants keep hundreds of thousands
//! of timers pending and the proxy cancels idle-disconnect timers on
//! every session touch. The wheel replaces it with the classic
//! hierarchical design (Varghese & Lauck; the layout used by kernel
//! timers and Tokio's driver):
//!
//! - Time is bucketed at **integer-microsecond** granularity into
//!   [`LEVELS`] levels of [`SLOTS`] slots. Level *l* spans deltas in
//!   `[64^l, 64^(l+1))` µs, so the wheel covers ~8.9 years of virtual
//!   time; anything further out sits in a `BTreeMap` overflow.
//! - Insert and cancel are O(1): an entry lives in exactly one slot
//!   `Vec`, addressed by a slab token; cancellation `swap_remove`s it and
//!   patches the displaced entry's position — no tombstones.
//! - A per-level 64-bit occupancy mask finds the next populated slot with
//!   one `rotate_right` + `trailing_zeros`, so an advance is O(levels)
//!   regardless of how many million timers are parked further out.
//!
//! # Exact ordering
//!
//! The heap fired events in `(at, seq)` order — nanosecond timestamps,
//! ties broken by schedule order — and every same-seed byte-identity
//! invariant in the workspace depends on that. Buckets are µs-granular
//! and unordered, so expiry alone cannot reproduce it. The wheel
//! therefore drains expiring buckets into a small ordered `due` set keyed
//! by `(at_ns, seq)` and pops from it. Correctness: every event still in
//! a bucket has `at_us > current_us`, hence `at_ns ≥ (current_us+1)·1000`,
//! strictly later than every due entry — so the due minimum is the global
//! minimum. Cascades redistribute a slot's entries strictly to lower
//! levels (delta shrinks below `64^l` once the wheel reaches the slot),
//! which bounds advance work and guarantees termination.

use std::collections::{BTreeMap, BTreeSet};

use crdb_util::slab::{Slab, Slot};
use crdb_util::time::SimTime;

/// Bits per level: 64 slots.
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Levels; level 7 spans up to `64^8` µs ≈ 8.9 years of virtual time.
const LEVELS: usize = 8;
const MASK: u64 = SLOTS as u64 - 1;

/// Where an entry currently lives, so cancellation is O(1).
#[derive(Clone, Copy, Debug)]
enum Loc {
    /// In the ordered due set (expired bucket, not yet popped).
    Due,
    /// In `buckets[level][slot]` at position `pos`.
    Bucket { level: u8, slot: u8, pos: u32 },
    /// In the overflow map (more than the wheel span away).
    Overflow,
}

struct Entry<T> {
    at_ns: u64,
    seq: u64,
    loc: Loc,
    value: T,
}

/// A hierarchical timer wheel holding values of type `T`, ordered by
/// `(SimTime, seq)` exactly like the binary-heap scheduler it replaces.
pub struct TimerWheel<T> {
    entries: Slab<Entry<T>>,
    buckets: Box<[[Vec<Slot>; SLOTS]; LEVELS]>,
    /// Per-level bitmask of non-empty slots.
    occupancy: [u64; LEVELS],
    /// Expired-but-unpopped events: `(at_ns, seq, token bits)`.
    due: BTreeSet<(u64, u64, u64)>,
    /// Events beyond the wheel span, keyed by `at_us`.
    overflow: BTreeMap<u64, Vec<Slot>>,
    /// The wheel's notion of "now", in µs. Only ever advances, and never
    /// past a pending event's bucket time.
    current_us: u64,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel at virtual time zero.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            entries: Slab::new(),
            buckets: Box::new(std::array::from_fn(|_| std::array::from_fn(|_| Vec::new()))),
            occupancy: [0; LEVELS],
            due: BTreeSet::new(),
            overflow: BTreeMap::new(),
            current_us: 0,
            len: 0,
        }
    }

    /// Number of pending events (cancelled events leave immediately —
    /// there are no tombstones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an event firing at `at` with tie-break sequence `seq`
    /// (must be unique per wheel; the engine uses its schedule counter).
    /// Returns a token for [`TimerWheel::cancel`].
    pub fn insert(&mut self, at: SimTime, seq: u64, value: T) -> Slot {
        let at_ns = at.as_nanos();
        let token = self.entries.insert(Entry { at_ns, seq, loc: Loc::Due, value });
        self.len += 1;
        self.place(token);
        token
    }

    /// Removes the event addressed by `token`, returning its value.
    /// Stale tokens (already fired or cancelled) return `None`.
    pub fn cancel(&mut self, token: Slot) -> Option<T> {
        let (loc, at_ns, seq) = {
            let e = self.entries.get(token)?;
            (e.loc, e.at_ns, e.seq)
        };
        match loc {
            Loc::Due => {
                self.due.remove(&(at_ns, seq, token.to_bits()));
            }
            Loc::Bucket { level, slot, pos } => {
                self.bucket_swap_remove(level as usize, slot as usize, pos as usize);
            }
            Loc::Overflow => {
                let at_us = at_ns / 1000;
                let v = self.overflow.get_mut(&at_us).expect("overflow entry missing");
                let pos = v.iter().position(|&t| t == token).expect("token not in overflow");
                v.swap_remove(pos);
                if v.is_empty() {
                    self.overflow.remove(&at_us);
                }
            }
        }
        self.len -= 1;
        Some(self.entries.remove(token).expect("live token").value)
    }

    /// Pops the globally earliest event by `(at, seq)`.
    pub fn pop_min(&mut self) -> Option<(SimTime, u64, T)> {
        self.advance();
        let (at_ns, seq, bits) = self.due.pop_first()?;
        let token = Slot::from_bits(bits);
        let e = self.entries.remove(token).expect("due token live");
        self.len -= 1;
        Some((SimTime::from_nanos(at_ns), seq, e.value))
    }

    /// The firing time of the earliest pending event. Advances internal
    /// cursors (cascading buckets) but fires nothing.
    pub fn peek_min_at(&mut self) -> Option<SimTime> {
        self.advance();
        self.due.first().map(|&(at_ns, _, _)| SimTime::from_nanos(at_ns))
    }

    /// Files `token` into due / a bucket / overflow based on its delta
    /// from the wheel's current time.
    fn place(&mut self, token: Slot) {
        let (at_ns, seq) = {
            let e = self.entries.get(token).expect("placing live token");
            (e.at_ns, e.seq)
        };
        let at_us = at_ns / 1000;
        if at_us <= self.current_us {
            self.entries.get_mut(token).expect("live").loc = Loc::Due;
            self.due.insert((at_ns, seq, token.to_bits()));
            return;
        }
        let delta = at_us - self.current_us;
        let level = ((u64::BITS - 1 - delta.leading_zeros()) / BITS) as usize;
        if level >= LEVELS {
            self.entries.get_mut(token).expect("live").loc = Loc::Overflow;
            self.overflow.entry(at_us).or_default().push(token);
            return;
        }
        let slot = ((at_us >> (BITS * level as u32)) & MASK) as usize;
        let bucket = &mut self.buckets[level][slot];
        let pos = bucket.len() as u32;
        bucket.push(token);
        self.occupancy[level] |= 1 << slot;
        self.entries.get_mut(token).expect("live").loc =
            Loc::Bucket { level: level as u8, slot: slot as u8, pos };
    }

    /// Removes the entry at `pos` from a bucket, patching the displaced
    /// entry's recorded position and the occupancy mask.
    fn bucket_swap_remove(&mut self, level: usize, slot: usize, pos: usize) {
        let bucket = &mut self.buckets[level][slot];
        bucket.swap_remove(pos);
        if let Some(&moved) = bucket.get(pos) {
            match &mut self.entries.get_mut(moved).expect("bucketed token live").loc {
                Loc::Bucket { pos: p, .. } => *p = pos as u32,
                other => unreachable!("bucketed entry mislocated: {other:?}"),
            }
        }
        if self.buckets[level][slot].is_empty() {
            self.occupancy[level] &= !(1 << slot);
        }
    }

    /// Advances the wheel until the due set is non-empty (or the wheel is
    /// empty). Each iteration jumps `current_us` straight to the earliest
    /// candidate bucket time — a lower bound on every pending event — and
    /// expires/cascades exactly the structures sitting at that time.
    fn advance(&mut self) {
        while self.due.is_empty() && self.len > 0 {
            let mut t = u64::MAX;
            // Level 0: occupied slot s holds events at exactly
            // current + delta(s), delta(s) ∈ [1, 63].
            let mut t0 = u64::MAX;
            if self.occupancy[0] != 0 {
                let cur0 = (self.current_us & MASK) as u32;
                let rot = self.occupancy[0].rotate_right((cur0 + 1) & 63);
                t0 = self.current_us + rot.trailing_zeros() as u64 + 1;
                t = t.min(t0);
            }
            // Levels ≥ 1: the earliest occupied slot's *start* time. A slot
            // index equal to the cursor means one full revolution ahead.
            let mut tl = [u64::MAX; LEVELS];
            for (level, level_t) in tl.iter_mut().enumerate().skip(1) {
                if self.occupancy[level] == 0 {
                    continue;
                }
                let shift = BITS * level as u32;
                let cur = self.current_us >> shift;
                let rot = self.occupancy[level].rotate_right(((cur as u32 & 63) + 1) & 63);
                let offset = rot.trailing_zeros() as u64 + 1;
                *level_t = (cur + offset) << shift;
                t = t.min(*level_t);
            }
            if let Some((&k, _)) = self.overflow.first_key_value() {
                t = t.min(k);
            }
            debug_assert!(t != u64::MAX, "len > 0 but no candidate");
            debug_assert!(t > self.current_us, "advance must move forward");
            self.current_us = t;
            // Cascade every higher-level slot whose window starts at t.
            // Re-placed entries land strictly below (their delta from t is
            // < 64^level) or in due, never back at a slot starting ≤ t.
            for level in (1..LEVELS).rev() {
                if tl[level] != t {
                    continue;
                }
                let shift = BITS * level as u32;
                let slot = ((t >> shift) & MASK) as usize;
                let drained = std::mem::take(&mut self.buckets[level][slot]);
                self.occupancy[level] &= !(1 << slot);
                for token in drained {
                    self.place(token);
                }
            }
            // Overflow events at exactly t are due now; later keys keep
            // competing as candidates on subsequent iterations.
            while let Some(entry) = self.overflow.first_entry() {
                if *entry.key() != t {
                    break;
                }
                for token in entry.remove() {
                    let e = self.entries.get_mut(token).expect("overflow token live");
                    e.loc = Loc::Due;
                    let key = (e.at_ns, e.seq, token.to_bits());
                    self.due.insert(key);
                }
            }
            // The level-0 slot at t: every entry fires at exactly t.
            if t0 == t {
                let slot = (t & MASK) as usize;
                let drained = std::mem::take(&mut self.buckets[0][slot]);
                self.occupancy[0] &= !(1 << slot);
                for token in drained {
                    let e = self.entries.get_mut(token).expect("level-0 token live");
                    debug_assert_eq!(e.at_ns / 1000, t, "level-0 slot is homogeneous");
                    e.loc = Loc::Due;
                    let key = (e.at_ns, e.seq, token.to_bits());
                    self.due.insert(key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_at_seq_order() {
        let mut w = TimerWheel::new();
        w.insert(ns(3_000_000), 0, "c");
        w.insert(ns(1_000_000), 1, "a");
        w.insert(ns(2_000_000), 2, "b");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop_min().map(|(_, _, v)| v)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_ties_break_by_seq() {
        let mut w = TimerWheel::new();
        for (seq, v) in [(5u64, "f"), (1, "s"), (9, "l")] {
            w.insert(ns(42_000), seq, v);
        }
        let order: Vec<&str> = std::iter::from_fn(|| w.pop_min().map(|(_, _, v)| v)).collect();
        assert_eq!(order, vec!["s", "f", "l"]);
    }

    #[test]
    fn sub_microsecond_ordering_within_one_bucket() {
        let mut w = TimerWheel::new();
        // All three land in the same µs bucket but differ in ns.
        w.insert(ns(5_900), 0, "late");
        w.insert(ns(5_100), 1, "early");
        w.insert(ns(5_500), 2, "mid");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop_min().map(|(_, _, v)| v)).collect();
        assert_eq!(order, vec!["early", "mid", "late"]);
    }

    #[test]
    fn cancel_removes_without_tombstone() {
        let mut w = TimerWheel::new();
        let a = w.insert(ns(1_000), 0, "a");
        w.insert(ns(2_000), 1, "b");
        assert_eq!(w.cancel(a), Some("a"));
        assert_eq!(w.len(), 1);
        assert_eq!(w.cancel(a), None, "stale token");
        assert_eq!(w.pop_min().map(|(_, _, v)| v), Some("b"));
    }

    #[test]
    fn far_future_and_cross_level_cascades() {
        let mut w = TimerWheel::new();
        // One event per level, plus one past the wheel span (overflow).
        let mut expect = Vec::new();
        for level in 0..=LEVELS {
            let at_us = 3 * 64u64.pow(level as u32);
            w.insert(ns(at_us * 1000), level as u64, level);
            expect.push(level);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| w.pop_min().map(|(_, _, v)| v)).collect();
        assert_eq!(popped, expect);
    }

    #[test]
    fn insert_in_the_past_fires_immediately_in_order() {
        let mut w = TimerWheel::new();
        w.insert(ns(10_000_000), 0, "future");
        assert_eq!(w.pop_min().map(|(_, _, v)| v), Some("future"));
        // The wheel's now is 10ms; these are in its past.
        w.insert(ns(1_000), 1, "old-b");
        w.insert(ns(500), 2, "old-a");
        w.insert(ns(20_000_000), 3, "next");
        assert_eq!(w.pop_min().map(|(_, _, v)| v), Some("old-a"));
        assert_eq!(w.pop_min().map(|(_, _, v)| v), Some("old-b"));
        assert_eq!(w.pop_min().map(|(_, _, v)| v), Some("next"));
    }

    #[test]
    fn dense_same_slot_churn() {
        let mut w = TimerWheel::new();
        let mut tokens = Vec::new();
        for seq in 0..100u64 {
            tokens.push(w.insert(ns(7_000 + seq), seq, seq));
        }
        // Cancel every third; the swap_remove position patching must keep
        // the rest addressable.
        for (i, &t) in tokens.iter().enumerate() {
            if i % 3 == 0 {
                assert!(w.cancel(t).is_some());
            }
        }
        let popped: Vec<u64> = std::iter::from_fn(|| w.pop_min().map(|(_, _, v)| v)).collect();
        let expect: Vec<u64> = (0..100).filter(|s| s % 3 != 0).collect();
        assert_eq!(popped, expect);
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimerWheel::new();
        w.insert(ns(123_456_789), 0, ());
        assert_eq!(w.peek_min_at(), Some(ns(123_456_789)));
        assert_eq!(w.pop_min().map(|(at, _, _)| at), Some(ns(123_456_789)));
        assert_eq!(w.peek_min_at(), None);
    }
}
