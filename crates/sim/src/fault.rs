//! Deterministic, seeded fault injection over the virtual clock.
//!
//! FoundationDB-style simulation testing: a [`FaultSchedule`] is a list
//! of timed fault events generated deterministically from a seed, and a
//! [`FaultInjector`] replays it against the running simulation, calling
//! a layer-supplied handler for each event and appending every
//! injection to an append-only text log. Two runs with the same seed
//! produce byte-identical logs — the reproducibility invariant the
//! chaos soak asserts.
//!
//! This module is deliberately layer-agnostic: faults name KV nodes by
//! index and regions by [`RegionId`]; the chaos controller in
//! `crdb-core` translates them into crashes, pool failures and
//! partitions against a live cluster.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use crdb_util::time::SimTime;
use crdb_util::RegionId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::Sim;

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Abruptly kill a KV storage node (it stops heartbeating and
    /// refuses requests until restarted).
    KvNodeCrash {
        /// Index of the node within the KV cluster.
        node: usize,
    },
    /// Restart a previously crashed KV node.
    KvNodeRestart {
        /// Index of the node within the KV cluster.
        node: usize,
    },
    /// Abruptly kill one live SQL pod. The victim is chosen by the
    /// handler from the pods alive at injection time, using `pick` as a
    /// deterministic selector (e.g. `pick % live_pods`).
    SqlPodCrash {
        /// Deterministic victim selector.
        pick: u64,
    },
    /// Make the next `count` warm-pool pod starts fail.
    PodStartFailure {
        /// Number of consecutive starts to fail.
        count: u32,
    },
    /// Start a symmetric network partition between two regions.
    PartitionStart {
        /// One side of the partition.
        a: RegionId,
        /// The other side.
        b: RegionId,
    },
    /// Heal the partition between two regions.
    PartitionHeal {
        /// One side of the partition.
        a: RegionId,
        /// The other side.
        b: RegionId,
    },
    /// Begin a latency spike: all network latencies are multiplied by
    /// `factor_pct / 100`.
    LatencySpikeStart {
        /// Multiplier in percent (e.g. 400 = 4×).
        factor_pct: u32,
    },
    /// End the latency spike (factor restored to whatever was active
    /// before the most recent spike started).
    LatencySpikeEnd,
    /// Start an asymmetric partition: traffic `from → to` drops while
    /// `to → from` still flows.
    PartitionOneWayStart {
        /// Region whose outbound traffic toward `to` dies.
        from: RegionId,
        /// Destination region.
        to: RegionId,
    },
    /// Heal the one-way partition `from → to`.
    PartitionOneWayHeal {
        /// Region whose outbound traffic was dropped.
        from: RegionId,
        /// Destination region.
        to: RegionId,
    },
    /// A full zone outage: every KV node, SQL pod, and warm-pool slot in
    /// the zone goes down atomically and the zone's traffic drops.
    ZoneOutage {
        /// The region containing the zone.
        region: RegionId,
        /// The zone index within the region.
        zone: u32,
    },
    /// Recover a zone from an outage.
    ZoneRecover {
        /// The region containing the zone.
        region: RegionId,
        /// The zone index within the region.
        zone: u32,
    },
    /// A full region outage: everything located in the region goes down
    /// atomically — KV nodes, SQL pods, warm-pool capacity — and all of
    /// the region's traffic (including intra-region) drops.
    RegionOutage {
        /// The dark region.
        region: RegionId,
    },
    /// Recover a region from an outage.
    RegionRecover {
        /// The recovering region.
        region: RegionId,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::KvNodeCrash { node } => write!(f, "kv-node-crash node={node}"),
            FaultKind::KvNodeRestart { node } => write!(f, "kv-node-restart node={node}"),
            FaultKind::SqlPodCrash { pick } => write!(f, "sql-pod-crash pick={pick}"),
            FaultKind::PodStartFailure { count } => write!(f, "pod-start-failure count={count}"),
            FaultKind::PartitionStart { a, b } => {
                write!(f, "partition-start regions={}-{}", a.raw(), b.raw())
            }
            FaultKind::PartitionHeal { a, b } => {
                write!(f, "partition-heal regions={}-{}", a.raw(), b.raw())
            }
            FaultKind::LatencySpikeStart { factor_pct } => {
                write!(f, "latency-spike-start factor_pct={factor_pct}")
            }
            FaultKind::LatencySpikeEnd => write!(f, "latency-spike-end"),
            FaultKind::PartitionOneWayStart { from, to } => {
                write!(f, "partition-one-way-start regions={}>{}", from.raw(), to.raw())
            }
            FaultKind::PartitionOneWayHeal { from, to } => {
                write!(f, "partition-one-way-heal regions={}>{}", from.raw(), to.raw())
            }
            FaultKind::ZoneOutage { region, zone } => {
                write!(f, "zone-outage region={} zone={zone}", region.raw())
            }
            FaultKind::ZoneRecover { region, zone } => {
                write!(f, "zone-recover region={} zone={zone}", region.raw())
            }
            FaultKind::RegionOutage { region } => {
                write!(f, "region-outage region={}", region.raw())
            }
            FaultKind::RegionRecover { region } => {
                write!(f, "region-recover region={}", region.raw())
            }
        }
    }
}

/// A fault with its injection time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Virtual time at which the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Knobs controlling random schedule generation — how many of each
/// fault class to draw and how long each disruption lasts.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Faults are injected in `[warmup, warmup + horizon)`.
    pub warmup: Duration,
    /// Length of the injection window.
    pub horizon: Duration,
    /// Number of KV nodes available as crash victims.
    pub kv_nodes: usize,
    /// KV node crash/restart pairs to schedule.
    pub kv_node_crashes: u32,
    /// How long a crashed KV node stays down.
    pub kv_downtime: Duration,
    /// SQL pod crashes to schedule.
    pub sql_pod_crashes: u32,
    /// Pod-start failure bursts to schedule (each fails 1–3 starts).
    pub pod_start_failures: u32,
    /// Regions available for partitions (pairs drawn among them).
    pub regions: u64,
    /// Inter-region partitions to schedule.
    pub partitions: u32,
    /// How long each partition lasts before healing.
    pub partition_duration: Duration,
    /// Latency spikes to schedule.
    pub latency_spikes: u32,
    /// How long each spike lasts.
    pub spike_duration: Duration,
    /// Spike multiplier in percent (e.g. 300 = 3×).
    pub spike_factor_pct: u32,
}

impl FaultPlan {
    /// A small plan suitable for an integration test: a handful of
    /// faults of every class inside a short window.
    pub fn small(kv_nodes: usize, regions: u64) -> FaultPlan {
        FaultPlan {
            warmup: Duration::from_secs(30),
            horizon: Duration::from_secs(240),
            kv_nodes,
            kv_node_crashes: 2,
            kv_downtime: Duration::from_secs(30),
            sql_pod_crashes: 2,
            pod_start_failures: 2,
            regions,
            partitions: if regions > 1 { 1 } else { 0 },
            partition_duration: Duration::from_secs(20),
            latency_spikes: 1,
            spike_duration: Duration::from_secs(15),
            spike_factor_pct: 300,
        }
    }

    /// A soak-scale plan: ≥ 50 faults across every class.
    pub fn soak(kv_nodes: usize, regions: u64) -> FaultPlan {
        FaultPlan {
            warmup: Duration::from_secs(60),
            horizon: Duration::from_secs(1800),
            kv_nodes,
            kv_node_crashes: 10,
            kv_downtime: Duration::from_secs(40),
            sql_pod_crashes: 12,
            pod_start_failures: 8,
            regions,
            partitions: if regions > 1 { 6 } else { 0 },
            partition_duration: Duration::from_secs(25),
            latency_spikes: 6,
            spike_duration: Duration::from_secs(20),
            spike_factor_pct: 400,
        }
    }
}

/// A deterministic, time-ordered list of fault events.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    /// Events sorted by injection time.
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Generates a schedule from `seed` and a plan. The same seed and
    /// plan always yield the same schedule; the generator uses its own
    /// RNG so the schedule is independent of workload interleavings.
    pub fn generate(seed: u64, plan: &FaultPlan) -> FaultSchedule {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x00fa_017c_0de0);
        let mut events = Vec::new();
        let start = plan.warmup.as_nanos() as u64;
        let span = plan.horizon.as_nanos() as u64;
        let at = |rng: &mut SmallRng| SimTime::from_nanos(start + rng.gen_range(0..span));

        for _ in 0..plan.kv_node_crashes {
            if plan.kv_nodes == 0 {
                break;
            }
            let node = rng.gen_range(0..plan.kv_nodes);
            let t = at(&mut rng);
            events.push(FaultEvent { at: t, kind: FaultKind::KvNodeCrash { node } });
            events.push(FaultEvent {
                at: t + plan.kv_downtime,
                kind: FaultKind::KvNodeRestart { node },
            });
        }
        for _ in 0..plan.sql_pod_crashes {
            let pick = rng.gen::<u64>();
            events.push(FaultEvent { at: at(&mut rng), kind: FaultKind::SqlPodCrash { pick } });
        }
        for _ in 0..plan.pod_start_failures {
            let count = rng.gen_range(1..=3u32);
            events
                .push(FaultEvent { at: at(&mut rng), kind: FaultKind::PodStartFailure { count } });
        }
        for _ in 0..plan.partitions {
            if plan.regions < 2 {
                break;
            }
            let a = rng.gen_range(0..plan.regions);
            let b = (a + 1 + rng.gen_range(0..plan.regions - 1)) % plan.regions;
            let t = at(&mut rng);
            events.push(FaultEvent {
                at: t,
                kind: FaultKind::PartitionStart { a: RegionId(a), b: RegionId(b) },
            });
            events.push(FaultEvent {
                at: t + plan.partition_duration,
                kind: FaultKind::PartitionHeal { a: RegionId(a), b: RegionId(b) },
            });
        }
        for _ in 0..plan.latency_spikes {
            let t = at(&mut rng);
            events.push(FaultEvent {
                at: t,
                kind: FaultKind::LatencySpikeStart { factor_pct: plan.spike_factor_pct },
            });
            events
                .push(FaultEvent { at: t + plan.spike_duration, kind: FaultKind::LatencySpikeEnd });
        }

        // Stable order: by time, then by a total order on the kind's
        // rendering, so equal-time events replay identically.
        events.sort_by(|x, y| {
            x.at.cmp(&y.at).then_with(|| x.kind.to_string().cmp(&y.kind.to_string()))
        });
        FaultSchedule { events }
    }

    /// Merges two schedules, re-establishing the stable
    /// `(time, rendering)` order so composed disaster scripts replay
    /// deterministically regardless of composition order.
    pub fn merge(mut self, other: FaultSchedule) -> FaultSchedule {
        self.events.extend(other.events);
        self.events.sort_by(|x, y| {
            x.at.cmp(&y.at).then_with(|| x.kind.to_string().cmp(&y.kind.to_string()))
        });
        self
    }

    /// Disaster script: a zone goes dark at `at` and recovers after
    /// `duration`.
    pub fn zone_loss(
        region: RegionId,
        zone: u32,
        at: SimTime,
        duration: Duration,
    ) -> FaultSchedule {
        FaultSchedule {
            events: vec![
                FaultEvent { at, kind: FaultKind::ZoneOutage { region, zone } },
                FaultEvent { at: at + duration, kind: FaultKind::ZoneRecover { region, zone } },
            ],
        }
    }

    /// Disaster script: a full region goes dark at `at` and recovers
    /// after `duration`.
    pub fn region_loss(region: RegionId, at: SimTime, duration: Duration) -> FaultSchedule {
        FaultSchedule {
            events: vec![
                FaultEvent { at, kind: FaultKind::RegionOutage { region } },
                FaultEvent { at: at + duration, kind: FaultKind::RegionRecover { region } },
            ],
        }
    }

    /// Disaster script: pod starts begin failing just before a full
    /// region loss, so the outage lands while the warm pool is burning
    /// through cold-start retries — the worst-case §4.3.1 path.
    pub fn region_loss_mid_cold_start(
        region: RegionId,
        at: SimTime,
        duration: Duration,
        failed_starts: u32,
    ) -> FaultSchedule {
        let lead = Duration::from_secs(2);
        let burst_at = SimTime::from_nanos(at.as_nanos().saturating_sub(lead.as_nanos() as u64));
        FaultSchedule {
            events: vec![FaultEvent {
                at: burst_at,
                kind: FaultKind::PodStartFailure { count: failed_starts },
            }],
        }
        .merge(FaultSchedule::region_loss(region, at, duration))
    }

    /// Disaster script: a region flaps `cycles` times — dark for `down`,
    /// back for `up`, repeatedly — exercising breaker re-trips and
    /// repeated re-homing.
    pub fn flapping_region(
        region: RegionId,
        first_at: SimTime,
        down: Duration,
        up: Duration,
        cycles: u32,
    ) -> FaultSchedule {
        let mut events = Vec::new();
        let mut at = first_at;
        for _ in 0..cycles {
            events.push(FaultEvent { at, kind: FaultKind::RegionOutage { region } });
            events.push(FaultEvent { at: at + down, kind: FaultKind::RegionRecover { region } });
            at = at + down + up;
        }
        FaultSchedule { events }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Replays a [`FaultSchedule`] against the simulation, invoking a
/// handler per event and keeping a byte-reproducible log.
pub struct FaultInjector {
    sim: Sim,
    log: Rc<RefCell<String>>,
    injected: Cell<usize>,
}

impl FaultInjector {
    /// Creates an injector bound to `sim`.
    pub fn new(sim: &Sim) -> Rc<FaultInjector> {
        Rc::new(FaultInjector {
            sim: sim.clone(),
            log: Rc::new(RefCell::new(String::new())),
            injected: Cell::new(0),
        })
    }

    /// Schedules every event of `schedule`; at each firing the event is
    /// appended to the log and `handler` is called to act on it.
    pub fn install(
        self: &Rc<FaultInjector>,
        schedule: FaultSchedule,
        handler: impl Fn(&FaultKind) + 'static,
    ) {
        let handler = Rc::new(handler);
        for event in schedule.events {
            let this = Rc::clone(self);
            let handler = Rc::clone(&handler);
            self.sim.schedule_at(event.at, move || {
                this.note(&format!("inject {}", event.kind));
                this.injected.set(this.injected.get() + 1);
                handler(&event.kind);
            });
        }
    }

    /// Appends a timestamped line to the event log. Layers use this to
    /// record fault *reactions* (victim chosen, session migrated) so
    /// the determinism check covers responses, not just injections.
    pub fn note(&self, line: &str) {
        use std::fmt::Write;
        let mut log = self.log.borrow_mut();
        let _ = writeln!(log, "t={} {}", self.sim.now().as_nanos(), line);
    }

    /// The append-only event log.
    pub fn log(&self) -> String {
        self.log.borrow().clone()
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> usize {
        self.injected.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_generation_is_deterministic() {
        let plan = FaultPlan::soak(6, 3);
        let a = FaultSchedule::generate(11, &plan);
        let b = FaultSchedule::generate(11, &plan);
        let c = FaultSchedule::generate(12, &plan);
        assert_eq!(a.events, b.events);
        assert_ne!(a.events, c.events);
        assert!(a.len() >= 50, "soak plan yields ≥ 50 events, got {}", a.len());
        // Sorted by time.
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn partitions_never_pair_a_region_with_itself() {
        let plan = FaultPlan { partitions: 200, ..FaultPlan::soak(6, 3) };
        let schedule = FaultSchedule::generate(5, &plan);
        for event in &schedule.events {
            if let FaultKind::PartitionStart { a, b } = event.kind {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn injector_replays_and_logs() {
        let sim = Sim::new(3);
        let plan = FaultPlan::small(3, 1);
        let schedule = FaultSchedule::generate(9, &plan);
        let total = schedule.len();
        let injector = FaultInjector::new(&sim);
        let seen = Rc::new(Cell::new(0usize));
        let s = Rc::clone(&seen);
        injector.install(schedule, move |_| s.set(s.get() + 1));
        sim.run_to_completion();
        assert_eq!(seen.get(), total);
        assert_eq!(injector.injected(), total);
        assert_eq!(injector.log().lines().count(), total);
    }

    #[test]
    fn disaster_scripts_compose_deterministically() {
        let t0 = SimTime::from_nanos(60_000_000_000);
        let outage = FaultSchedule::region_loss(RegionId(1), t0, Duration::from_secs(120));
        let spike = FaultSchedule {
            events: vec![
                FaultEvent { at: t0, kind: FaultKind::LatencySpikeStart { factor_pct: 300 } },
                FaultEvent { at: t0 + Duration::from_secs(30), kind: FaultKind::LatencySpikeEnd },
            ],
        };
        let a = outage.clone().merge(spike.clone());
        let b = spike.merge(outage);
        assert_eq!(a.events, b.events, "merge order must not matter");
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn region_loss_mid_cold_start_orders_burst_before_outage() {
        let t0 = SimTime::from_nanos(10_000_000_000);
        let s =
            FaultSchedule::region_loss_mid_cold_start(RegionId(2), t0, Duration::from_secs(60), 3);
        assert_eq!(s.len(), 3);
        assert!(matches!(s.events[0].kind, FaultKind::PodStartFailure { count: 3 }));
        assert!(s.events[0].at < t0);
        assert!(matches!(s.events[1].kind, FaultKind::RegionOutage { .. }));
        assert!(matches!(s.events[2].kind, FaultKind::RegionRecover { .. }));
    }

    #[test]
    fn flapping_region_alternates_outage_and_recovery() {
        let s = FaultSchedule::flapping_region(
            RegionId(1),
            SimTime::from_nanos(0),
            Duration::from_secs(10),
            Duration::from_secs(5),
            3,
        );
        assert_eq!(s.len(), 6);
        for (i, e) in s.events.iter().enumerate() {
            if i % 2 == 0 {
                assert!(matches!(e.kind, FaultKind::RegionOutage { .. }));
            } else {
                assert!(matches!(e.kind, FaultKind::RegionRecover { .. }));
            }
        }
        assert!(s.events.windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn new_fault_kinds_render_stably() {
        // The schedule sort key is the Display string — pin the formats.
        assert_eq!(
            FaultKind::ZoneOutage { region: RegionId(1), zone: 2 }.to_string(),
            "zone-outage region=1 zone=2"
        );
        assert_eq!(
            FaultKind::RegionOutage { region: RegionId(0) }.to_string(),
            "region-outage region=0"
        );
        assert_eq!(
            FaultKind::PartitionOneWayStart { from: RegionId(0), to: RegionId(2) }.to_string(),
            "partition-one-way-start regions=0>2"
        );
        assert_eq!(
            FaultKind::RegionRecover { region: RegionId(2) }.to_string(),
            "region-recover region=2"
        );
    }

    #[test]
    fn same_seed_same_log() {
        let run = |seed| {
            let sim = Sim::new(seed);
            let injector = FaultInjector::new(&sim);
            let schedule = FaultSchedule::generate(seed, &FaultPlan::small(3, 3));
            injector.install(schedule, |_| {});
            sim.run_to_completion();
            injector.log()
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21), run(22));
    }
}
