//! Deterministic discrete-event simulation substrate.
//!
//! The paper evaluates a production cloud deployment — Kubernetes pods on
//! GCP VMs spread over three regions. This crate is the synthetic
//! replacement (see DESIGN.md §1): a single-threaded, deterministic
//! discrete-event engine on which the whole serverless cluster runs.
//!
//! - [`engine::Sim`] — the event loop and virtual clock. Components
//!   schedule closures at future instants; runs are reproducible given a
//!   seed.
//! - [`topology`] — regions, zones and the inter-region latency matrix that
//!   stands in for the real network (asia-southeast1 / europe-west1 /
//!   us-central1 round-trip times).
//! - [`fault`] — deterministic, seeded fault injection (node crashes,
//!   pod-start failures, partitions, latency spikes) replayed against the
//!   virtual clock with a byte-reproducible event log.
//! - [`cpu`] — a processor-sharing CPU model per node. It produces the two
//!   signals admission control needs (per-task CPU time and the runnable
//!   queue length the 1000 Hz sampler would observe, §5.1.3) plus
//!   per-tenant CPU attribution for the figures.
//! - [`resource`] — a FIFO rate-limited resource modelling disk flush /
//!   compaction bandwidth.
//! - [`timeseries`] — sampled time series used to regenerate the paper's
//!   time-series figures (Figs. 8, 9, 12, 13).
//!
//! The *data path* of the database is real (actual MVCC bytes, SQL rows and
//! LSM compactions); only *time* is virtual.

#![warn(missing_docs)]

pub mod cpu;
pub mod engine;
pub mod fault;
pub mod modelheap;
pub mod resource;
pub mod timeseries;
pub mod topology;
pub mod wheel;

pub use engine::{EventId, Sim};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultSchedule};
pub use timeseries::TimeSeries;
pub use topology::{Location, Topology};
