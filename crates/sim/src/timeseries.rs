//! Sampled time series.
//!
//! The paper's time-series figures (SQL node counts vs. utilization in
//! Fig. 8, throughput/latency through a rolling upgrade in Fig. 9, per-node
//! cores and leases in Fig. 12, per-tenant eCPU in Fig. 13) are regenerated
//! by sampling simulation state on a fixed period and rendering the series
//! as aligned text columns.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use crdb_util::time::SimTime;

use crate::engine::Sim;

/// A named sequence of `(time, value)` samples.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries { name: name.into(), points: Vec::new() }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Samples must be appended in time order.
    pub fn push(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(at >= last, "time series must be appended in order");
        }
        self.points.push((at, value));
    }

    /// All samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Minimum value, or 0 for an empty series.
    pub fn min(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min).min(f64::MAX)
    }

    /// Maximum value, or 0 for an empty series.
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Mean value, or 0 for an empty series.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Mean over samples with `at >= from`.
    pub fn mean_since(&self, from: SimTime) -> f64 {
        let vals: Vec<f64> =
            self.points.iter().filter(|&&(t, _)| t >= from).map(|&(_, v)| v).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Sample standard deviation over samples with `at >= from`.
    pub fn stddev_since(&self, from: SimTime) -> f64 {
        let vals: Vec<f64> =
            self.points.iter().filter(|&&(t, _)| t >= from).map(|&(_, v)| v).collect();
        if vals.len() < 2 {
            return 0.0;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (vals.len() - 1) as f64;
        var.sqrt()
    }
}

/// Periodically samples a set of named probes into time series.
pub struct Sampler {
    series: Rc<RefCell<Vec<TimeSeries>>>,
}

impl Sampler {
    /// Starts sampling: every `period`, each probe in `probes` is invoked
    /// and its value appended to the series of the same index. Sampling
    /// stops when the simulation stops running events (the periodic event
    /// chain just ends with the run).
    pub fn start(
        sim: &Sim,
        period: Duration,
        names: Vec<String>,
        mut probes: Vec<Box<dyn FnMut(SimTime) -> f64>>,
    ) -> Sampler {
        assert_eq!(names.len(), probes.len());
        let series =
            Rc::new(RefCell::new(names.into_iter().map(TimeSeries::new).collect::<Vec<_>>()));
        let s = Rc::clone(&series);
        let sim2 = sim.clone();
        sim.schedule_periodic(period, move || {
            let now = sim2.now();
            let mut all = s.borrow_mut();
            for (ts, probe) in all.iter_mut().zip(probes.iter_mut()) {
                ts.push(now, probe(now));
            }
            true
        });
        Sampler { series }
    }

    /// Snapshot of all series collected so far.
    pub fn series(&self) -> Vec<TimeSeries> {
        self.series.borrow().clone()
    }
}

/// Renders aligned text columns for a set of series sharing a time axis —
/// the textual analogue of the paper's figures.
pub fn render_table(series: &[TimeSeries], time_unit_secs: f64, unit_label: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(out, "{:>10}", format!("t({unit_label})"));
    for s in series {
        let _ = write!(out, " {:>14}", s.name());
    }
    out.push('\n');
    let n = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..n {
        let t =
            series.iter().find_map(|s| s.points().get(i).map(|&(t, _)| t)).unwrap_or(SimTime::ZERO);
        let _ = write!(out, "{:>10.1}", t.as_secs_f64() / time_unit_secs);
        for s in series {
            match s.points().get(i) {
                Some(&(_, v)) => {
                    let _ = write!(out, " {v:>14.3}");
                }
                None => {
                    let _ = write!(out, " {:>14}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdb_util::time::dur;

    #[test]
    fn push_and_stats() {
        let mut ts = TimeSeries::new("cpu");
        ts.push(SimTime::from_secs_f64(0.0), 1.0);
        ts.push(SimTime::from_secs_f64(1.0), 3.0);
        ts.push(SimTime::from_secs_f64(2.0), 2.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.mean(), 2.0);
        assert_eq!(ts.max(), 3.0);
        assert_eq!(ts.min(), 1.0);
        assert_eq!(ts.mean_since(SimTime::from_secs_f64(1.0)), 2.5);
    }

    #[test]
    fn stddev() {
        let mut ts = TimeSeries::new("x");
        for (t, v) in [
            (0.0, 2.0),
            (1.0, 4.0),
            (2.0, 4.0),
            (3.0, 4.0),
            (4.0, 5.0),
            (5.0, 5.0),
            (6.0, 7.0),
            (7.0, 9.0),
        ] {
            ts.push(SimTime::from_secs_f64(t), v);
        }
        let sd = ts.stddev_since(SimTime::ZERO);
        assert!((sd - 2.138).abs() < 0.01, "{sd}");
    }

    #[test]
    fn sampler_collects_periodically() {
        let sim = Sim::new(1);
        let counter = Rc::new(RefCell::new(0.0));
        let c = Rc::clone(&counter);
        let sampler = Sampler::start(
            &sim,
            dur::secs(1),
            vec!["count".into()],
            vec![Box::new(move |_| {
                *c.borrow_mut() += 1.0;
                *c.borrow()
            })],
        );
        sim.run_until(SimTime::from_secs_f64(5.5));
        let series = sampler.series();
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].len(), 5);
        assert_eq!(series[0].points()[4].1, 5.0);
    }

    #[test]
    fn render_produces_rows() {
        let mut a = TimeSeries::new("a");
        a.push(SimTime::from_secs_f64(60.0), 1.5);
        let out = render_table(&[a], 60.0, "min");
        assert!(out.contains("a"));
        assert!(out.contains("1.0"));
        assert!(out.contains("1.500"));
    }
}
