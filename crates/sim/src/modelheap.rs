//! The pre-timer-wheel scheduler, retained as a *model*.
//!
//! This is the `BinaryHeap<Reverse<_>>` + tombstone-`HashSet` event queue
//! the engine used before the hierarchical [`crate::wheel::TimerWheel`]
//! replaced it. It is kept, verbatim in behavior, for two purposes only:
//!
//! 1. the differential test (`timerwheel_differential.rs`) replays random
//!    schedules against both implementations and requires byte-identical
//!    pop orderings, and
//! 2. the `scale_soak` bench measures the wheel's events/sec against this
//!    model at 4K-tenant-scale pending-timer counts to enforce the ≥ 5×
//!    speedup gate.
//!
//! It must not be used by simulation components — the engine's queue is
//! the wheel.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crdb_util::time::SimTime;

struct Scheduled<T> {
    at: SimTime,
    seq: u64,
    value: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The old scheduler: a min-heap ordered by `(at, seq)` with lazy
/// cancellation via a tombstone set. Event ids are the schedule sequence
/// numbers, exactly as the pre-wheel engine assigned them.
pub struct ModelScheduler<T> {
    queue: BinaryHeap<Reverse<Scheduled<T>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<T> Default for ModelScheduler<T> {
    fn default() -> Self {
        ModelScheduler::new()
    }
}

impl<T> ModelScheduler<T> {
    /// Creates an empty model scheduler.
    pub fn new() -> ModelScheduler<T> {
        ModelScheduler { queue: BinaryHeap::new(), cancelled: HashSet::new(), next_seq: 0 }
    }

    /// Schedules `value` at `at`; returns the event id (== seq).
    pub fn schedule(&mut self, at: SimTime, value: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, value }));
        seq
    }

    /// Marks an event cancelled (lazy: the entry stays queued until its
    /// pop, exactly like the old engine).
    pub fn cancel(&mut self, id: u64) {
        self.cancelled.insert(id);
    }

    /// Pops the earliest live event as `(at, seq, value)`, discarding
    /// tombstoned entries on the way.
    pub fn pop_min(&mut self) -> Option<(SimTime, u64, T)> {
        loop {
            let Reverse(s) = self.queue.pop()?;
            if self.cancelled.remove(&s.seq) {
                continue;
            }
            return Some((s.at, s.seq, s.value));
        }
    }

    /// Time of the earliest live event, discarding tombstoned entries on
    /// the way (the old engine's `peek_next_at` behavior).
    pub fn peek_min_at(&mut self) -> Option<SimTime> {
        loop {
            let at = self.queue.peek()?.0.at;
            let seq = self.queue.peek()?.0.seq;
            if self.cancelled.contains(&seq) {
                self.queue.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(at);
        }
    }

    /// Queued entries, tombstones included (the old pending-count
    /// semantics).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing (live or tombstoned) is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}
