//! Cluster topology and the simulated network.
//!
//! Stands in for the production multi-region network (§4.2.5, §6.5.2). A
//! [`Topology`] names the regions of the host cluster and holds a one-way
//! latency matrix; [`Topology::send`] delivers a message (a closure) after
//! the appropriate latency plus jitter. The default three-region topology
//! mirrors the paper's evaluation: `us-central1`, `europe-west1`,
//! `asia-southeast1`, with public inter-region round-trip times.
//!
//! The topology also carries injectable *network faults*: inter-region
//! partitions (messages across a partition are dropped) and a global
//! latency multiplier for spikes. The fault state is shared across
//! clones of a `Topology`, so every component holding a copy of the
//! cluster's topology sees the same faults.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::Duration;

use crdb_util::time::dur;
use crdb_util::RegionId;
use rand::Rng;

use crate::engine::Sim;

/// Where a process runs: a region and a zone within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// The cloud region.
    pub region: RegionId,
    /// The availability zone index within the region.
    pub zone: u32,
}

impl Location {
    /// Convenience constructor.
    pub fn new(region: RegionId, zone: u32) -> Self {
        Location { region, zone }
    }
}

/// Injected network faults, shared by all clones of a [`Topology`].
#[derive(Debug, Default)]
struct NetFaults {
    /// Region pairs that cannot exchange messages (stored both ways).
    partitions: HashSet<(RegionId, RegionId)>,
    /// Global latency multiplier in percent (100 = no spike).
    latency_factor_pct: u32,
    /// Messages dropped because of a partition.
    dropped: u64,
}

/// Regions, zones, and network latency between them.
#[derive(Debug, Clone)]
pub struct Topology {
    regions: Vec<String>,
    /// One-way latency between region pairs, indexed by raw region id.
    latency: HashMap<(RegionId, RegionId), Duration>,
    /// One-way latency between zones of the same region.
    inter_zone: Duration,
    /// One-way latency within a zone.
    intra_zone: Duration,
    /// Multiplicative jitter bound (e.g. 0.1 = up to +10%).
    jitter: f64,
    /// Injected partitions and latency spikes; shared across clones.
    faults: Rc<RefCell<NetFaults>>,
}

impl Topology {
    /// A single-region topology with `zones` zones — the shape of the
    /// single-region experiments (Figs. 6, 12, 13, Table 1).
    pub fn single_region(name: &str, _zones: u32) -> Self {
        Topology {
            regions: vec![name.to_string()],
            latency: HashMap::new(),
            inter_zone: dur::us(750),
            intra_zone: dur::us(250),
            jitter: 0.05,
            faults: Rc::new(RefCell::new(NetFaults {
                latency_factor_pct: 100,
                ..Default::default()
            })),
        }
    }

    /// The paper's three-region evaluation topology (§6.5.2), with one-way
    /// latencies derived from public GCP round-trip measurements:
    /// us-central1 ↔ europe-west1 ≈ 105 ms RTT, us-central1 ↔
    /// asia-southeast1 ≈ 180 ms RTT, europe-west1 ↔ asia-southeast1 ≈
    /// 250 ms RTT.
    pub fn three_region() -> Self {
        let mut t = Topology {
            regions: vec![
                "us-central1".to_string(),
                "europe-west1".to_string(),
                "asia-southeast1".to_string(),
            ],
            latency: HashMap::new(),
            inter_zone: dur::us(750),
            intra_zone: dur::us(250),
            jitter: 0.05,
            faults: Rc::new(RefCell::new(NetFaults {
                latency_factor_pct: 100,
                ..Default::default()
            })),
        };
        t.set_rtt(RegionId(0), RegionId(1), dur::ms(105));
        t.set_rtt(RegionId(0), RegionId(2), dur::ms(180));
        t.set_rtt(RegionId(1), RegionId(2), dur::ms(250));
        t
    }

    /// Sets the round-trip time between two regions (stored as symmetric
    /// one-way latencies).
    pub fn set_rtt(&mut self, a: RegionId, b: RegionId, rtt: Duration) {
        let one_way = rtt / 2;
        self.latency.insert((a, b), one_way);
        self.latency.insert((b, a), one_way);
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// All region ids.
    pub fn regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        (0..self.regions.len() as u64).map(RegionId)
    }

    /// Human-readable region name.
    pub fn region_name(&self, r: RegionId) -> &str {
        &self.regions[r.raw() as usize]
    }

    /// Looks up a region by name.
    pub fn region_by_name(&self, name: &str) -> Option<RegionId> {
        self.regions.iter().position(|n| n == name).map(|i| RegionId(i as u64))
    }

    /// Deterministic base one-way latency between two locations, before
    /// jitter.
    pub fn base_latency(&self, from: Location, to: Location) -> Duration {
        if from.region != to.region {
            *self.latency.get(&(from.region, to.region)).unwrap_or(&dur::ms(100))
        } else if from.zone != to.zone {
            self.inter_zone
        } else {
            self.intra_zone
        }
    }

    /// Samples a one-way latency including jitter using the simulation RNG.
    /// An active latency spike multiplies the result.
    pub fn sample_latency(&self, sim: &Sim, from: Location, to: Location) -> Duration {
        let base = self.base_latency(from, to);
        let jitter = 1.0 + sim.with_rng(|r| r.gen_range(0.0..self.jitter));
        let spike = self.faults.borrow().latency_factor_pct as f64 / 100.0;
        Duration::from_secs_f64(base.as_secs_f64() * jitter * spike)
    }

    /// Delivers `message` (a closure) after the simulated one-way network
    /// latency from `from` to `to`. Messages across an active partition
    /// are silently dropped — exactly how a real partition looks to the
    /// sender, which is why the layers above must fail fast on
    /// unreachable peers instead of waiting for a reply.
    pub fn send(&self, sim: &Sim, from: Location, to: Location, message: impl FnOnce() + 'static) {
        if !self.is_reachable(from, to) {
            self.faults.borrow_mut().dropped += 1;
            return;
        }
        let latency = self.sample_latency(sim, from, to);
        sim.schedule_after(latency, message);
    }

    /// True when no partition separates `from` and `to`. Intra-region
    /// traffic is never partitioned (partitions are inter-region).
    pub fn is_reachable(&self, from: Location, to: Location) -> bool {
        from.region == to.region
            || !self.faults.borrow().partitions.contains(&(from.region, to.region))
    }

    /// Starts a symmetric partition between two regions.
    pub fn partition(&self, a: RegionId, b: RegionId) {
        if a == b {
            return;
        }
        let mut faults = self.faults.borrow_mut();
        faults.partitions.insert((a, b));
        faults.partitions.insert((b, a));
    }

    /// Heals the partition between two regions.
    pub fn heal(&self, a: RegionId, b: RegionId) {
        let mut faults = self.faults.borrow_mut();
        faults.partitions.remove(&(a, b));
        faults.partitions.remove(&(b, a));
    }

    /// Heals every partition.
    pub fn heal_all(&self) {
        self.faults.borrow_mut().partitions.clear();
    }

    /// Sets the global latency multiplier in percent (100 = normal).
    pub fn set_latency_factor_pct(&self, pct: u32) {
        self.faults.borrow_mut().latency_factor_pct = pct.max(1);
    }

    /// Messages dropped so far because of partitions.
    pub fn dropped_messages(&self) -> u64 {
        self.faults.borrow().dropped
    }

    /// Round-trip time between two locations (two sampled one-way hops).
    pub fn sample_rtt(&self, sim: &Sim, a: Location, b: Location) -> Duration {
        self.sample_latency(sim, a, b) + self.sample_latency(sim, b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn three_region_latencies() {
        let t = Topology::three_region();
        let us = Location::new(RegionId(0), 0);
        let eu = Location::new(RegionId(1), 0);
        let asia = Location::new(RegionId(2), 0);
        assert_eq!(t.base_latency(us, eu), dur::us(52_500));
        assert_eq!(t.base_latency(eu, asia), dur::ms(125));
        assert_eq!(t.base_latency(us, asia), dur::ms(90));
        // Symmetry.
        assert_eq!(t.base_latency(eu, us), t.base_latency(us, eu));
    }

    #[test]
    fn zone_latencies() {
        let t = Topology::single_region("us-east1", 3);
        let a = Location::new(RegionId(0), 0);
        let b = Location::new(RegionId(0), 1);
        assert_eq!(t.base_latency(a, a), dur::us(250));
        assert_eq!(t.base_latency(a, b), dur::us(750));
    }

    #[test]
    fn region_lookup() {
        let t = Topology::three_region();
        assert_eq!(t.region_by_name("europe-west1"), Some(RegionId(1)));
        assert_eq!(t.region_name(RegionId(2)), "asia-southeast1");
        assert_eq!(t.region_by_name("mars-north1"), None);
        assert_eq!(t.regions().count(), 3);
    }

    #[test]
    fn send_delivers_after_latency() {
        let sim = Sim::new(7);
        let t = Topology::three_region();
        let us = Location::new(RegionId(0), 0);
        let asia = Location::new(RegionId(2), 0);
        let arrived = Rc::new(RefCell::new(None));
        let a = Rc::clone(&arrived);
        let s = sim.clone();
        t.send(&sim, us, asia, move || *a.borrow_mut() = Some(s.now()));
        sim.run_to_completion();
        let at = arrived.borrow().expect("delivered");
        let secs = at.as_secs_f64();
        // 90ms one-way + up to 5% jitter.
        assert!((0.090..0.095).contains(&secs), "{secs}");
    }

    #[test]
    fn partition_drops_messages_until_healed() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let clone = t.clone();
        let us = Location::new(RegionId(0), 0);
        let eu = Location::new(RegionId(1), 0);
        // Partition applied on a clone is visible on the original.
        clone.partition(RegionId(0), RegionId(1));
        assert!(!t.is_reachable(us, eu));
        assert!(!t.is_reachable(eu, us));
        let delivered = Rc::new(RefCell::new(0u32));
        let d = Rc::clone(&delivered);
        t.send(&sim, us, eu, move || *d.borrow_mut() += 1);
        sim.run_to_completion();
        assert_eq!(*delivered.borrow(), 0, "partitioned message dropped");
        assert_eq!(t.dropped_messages(), 1);
        t.heal(RegionId(0), RegionId(1));
        assert!(t.is_reachable(us, eu));
        let d = Rc::clone(&delivered);
        t.send(&sim, us, eu, move || *d.borrow_mut() += 1);
        sim.run_to_completion();
        assert_eq!(*delivered.borrow(), 1, "healed link delivers");
        // Same-region traffic is never partitioned.
        clone.partition(RegionId(0), RegionId(0));
        assert!(t.is_reachable(us, Location::new(RegionId(0), 1)));
    }

    #[test]
    fn latency_spike_multiplies_latency() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let us = Location::new(RegionId(0), 0);
        let eu = Location::new(RegionId(1), 0);
        let normal = t.sample_latency(&sim, us, eu);
        t.set_latency_factor_pct(400);
        let spiked = t.sample_latency(&sim, us, eu);
        assert!(spiked >= normal.mul_f64(3.5), "{spiked:?} vs {normal:?}");
        t.set_latency_factor_pct(100);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let measure = |seed| {
            let sim = Sim::new(seed);
            let t = Topology::three_region();
            let us = Location::new(RegionId(0), 0);
            let eu = Location::new(RegionId(1), 0);
            t.sample_latency(&sim, us, eu)
        };
        assert_eq!(measure(1), measure(1));
        assert_ne!(measure(1), measure(2));
    }
}
