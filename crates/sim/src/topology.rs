//! Cluster topology and the simulated network.
//!
//! Stands in for the production multi-region network (§4.2.5, §6.5.2). A
//! [`Topology`] names the regions of the host cluster and holds a one-way
//! latency matrix; [`Topology::send`] delivers a message (a closure) after
//! the appropriate latency plus jitter. The default three-region topology
//! mirrors the paper's evaluation: `us-central1`, `europe-west1`,
//! `asia-southeast1`, with public inter-region round-trip times.
//!
//! The topology also carries injectable *network faults*: inter-region
//! partitions (messages across a partition are dropped) and a global
//! latency multiplier for spikes. The fault state is shared across
//! clones of a `Topology`, so every component holding a copy of the
//! cluster's topology sees the same faults.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::Duration;

use crdb_util::time::dur;
use crdb_util::RegionId;
use rand::Rng;

use crate::engine::Sim;

/// Where a process runs: a region and a zone within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// The cloud region.
    pub region: RegionId,
    /// The availability zone index within the region.
    pub zone: u32,
}

impl Location {
    /// Convenience constructor.
    pub fn new(region: RegionId, zone: u32) -> Self {
        Location { region, zone }
    }
}

/// Injected network faults, shared by all clones of a [`Topology`].
#[derive(Debug, Default)]
struct NetFaults {
    /// Region pairs that cannot exchange messages (stored both ways).
    partitions: HashSet<(RegionId, RegionId)>,
    /// Directed region pairs whose traffic is dropped one way only
    /// (asymmetric partition: `(from, to)` is dead, `(to, from)` works).
    one_way: HashSet<(RegionId, RegionId)>,
    /// Regions that are entirely dark (a full region outage): nothing in
    /// or out, including intra-region traffic touching the region.
    dark_regions: HashSet<RegionId>,
    /// Individual zones that are dark (a zone outage).
    dark_zones: HashSet<(RegionId, u32)>,
    /// Global latency multiplier in percent (100 = no spike).
    latency_factor_pct: u32,
    /// Previous multipliers, so overlapping spikes restore the factor
    /// they replaced instead of snapping back to 100%.
    factor_stack: Vec<u32>,
    /// Messages dropped because of a partition.
    dropped: u64,
}

/// Regions, zones, and network latency between them.
#[derive(Debug, Clone)]
pub struct Topology {
    regions: Vec<String>,
    /// One-way latency between region pairs, indexed by raw region id.
    latency: HashMap<(RegionId, RegionId), Duration>,
    /// One-way latency between zones of the same region.
    inter_zone: Duration,
    /// One-way latency within a zone.
    intra_zone: Duration,
    /// Multiplicative jitter bound (e.g. 0.1 = up to +10%).
    jitter: f64,
    /// Injected partitions and latency spikes; shared across clones.
    faults: Rc<RefCell<NetFaults>>,
}

impl Topology {
    /// A single-region topology with `zones` zones — the shape of the
    /// single-region experiments (Figs. 6, 12, 13, Table 1).
    pub fn single_region(name: &str, _zones: u32) -> Self {
        Topology {
            regions: vec![name.to_string()],
            latency: HashMap::new(),
            inter_zone: dur::us(750),
            intra_zone: dur::us(250),
            jitter: 0.05,
            faults: Rc::new(RefCell::new(NetFaults {
                latency_factor_pct: 100,
                ..Default::default()
            })),
        }
    }

    /// The paper's three-region evaluation topology (§6.5.2), with one-way
    /// latencies derived from public GCP round-trip measurements:
    /// us-central1 ↔ europe-west1 ≈ 105 ms RTT, us-central1 ↔
    /// asia-southeast1 ≈ 180 ms RTT, europe-west1 ↔ asia-southeast1 ≈
    /// 250 ms RTT.
    pub fn three_region() -> Self {
        let mut t = Topology {
            regions: vec![
                "us-central1".to_string(),
                "europe-west1".to_string(),
                "asia-southeast1".to_string(),
            ],
            latency: HashMap::new(),
            inter_zone: dur::us(750),
            intra_zone: dur::us(250),
            jitter: 0.05,
            faults: Rc::new(RefCell::new(NetFaults {
                latency_factor_pct: 100,
                ..Default::default()
            })),
        };
        t.set_rtt(RegionId(0), RegionId(1), dur::ms(105));
        t.set_rtt(RegionId(0), RegionId(2), dur::ms(180));
        t.set_rtt(RegionId(1), RegionId(2), dur::ms(250));
        t
    }

    /// Sets the round-trip time between two regions (stored as symmetric
    /// one-way latencies).
    pub fn set_rtt(&mut self, a: RegionId, b: RegionId, rtt: Duration) {
        let one_way = rtt / 2;
        self.latency.insert((a, b), one_way);
        self.latency.insert((b, a), one_way);
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// All region ids.
    pub fn regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        (0..self.regions.len() as u64).map(RegionId)
    }

    /// Human-readable region name.
    pub fn region_name(&self, r: RegionId) -> &str {
        &self.regions[r.raw() as usize]
    }

    /// Looks up a region by name.
    pub fn region_by_name(&self, name: &str) -> Option<RegionId> {
        self.regions.iter().position(|n| n == name).map(|i| RegionId(i as u64))
    }

    /// Deterministic base one-way latency between two locations, before
    /// jitter.
    pub fn base_latency(&self, from: Location, to: Location) -> Duration {
        if from.region != to.region {
            *self.latency.get(&(from.region, to.region)).unwrap_or(&dur::ms(100))
        } else if from.zone != to.zone {
            self.inter_zone
        } else {
            self.intra_zone
        }
    }

    /// Samples a one-way latency including jitter using the simulation RNG.
    /// An active latency spike multiplies the result.
    pub fn sample_latency(&self, sim: &Sim, from: Location, to: Location) -> Duration {
        let base = self.base_latency(from, to);
        let jitter = 1.0 + sim.with_rng(|r| r.gen_range(0.0..self.jitter));
        let spike = self.faults.borrow().latency_factor_pct as f64 / 100.0;
        Duration::from_secs_f64(base.as_secs_f64() * jitter * spike)
    }

    /// Delivers `message` (a closure) after the simulated one-way network
    /// latency from `from` to `to`. Messages across an active partition
    /// are silently dropped — exactly how a real partition looks to the
    /// sender, which is why the layers above must fail fast on
    /// unreachable peers instead of waiting for a reply.
    pub fn send(&self, sim: &Sim, from: Location, to: Location, message: impl FnOnce() + 'static) {
        if !self.is_reachable(from, to) {
            self.faults.borrow_mut().dropped += 1;
            return;
        }
        let latency = self.sample_latency(sim, from, to);
        sim.schedule_after(latency, message);
    }

    /// True when no partition or outage separates `from` and `to`.
    /// Symmetric partitions are inter-region (intra-region traffic is
    /// never partitioned), but a dark zone or region blocks *all* of its
    /// traffic, including intra-region hops.
    pub fn is_reachable(&self, from: Location, to: Location) -> bool {
        let faults = self.faults.borrow();
        if faults.dark_regions.contains(&from.region)
            || faults.dark_regions.contains(&to.region)
            || faults.dark_zones.contains(&(from.region, from.zone))
            || faults.dark_zones.contains(&(to.region, to.zone))
        {
            return false;
        }
        if from.region == to.region {
            return true;
        }
        !faults.partitions.contains(&(from.region, to.region))
            && !faults.one_way.contains(&(from.region, to.region))
    }

    /// True when `location` sits inside a dark zone or region.
    pub fn is_dark(&self, location: Location) -> bool {
        let faults = self.faults.borrow();
        faults.dark_regions.contains(&location.region)
            || faults.dark_zones.contains(&(location.region, location.zone))
    }

    /// Starts a symmetric partition between two regions.
    pub fn partition(&self, a: RegionId, b: RegionId) {
        if a == b {
            return;
        }
        let mut faults = self.faults.borrow_mut();
        faults.partitions.insert((a, b));
        faults.partitions.insert((b, a));
    }

    /// Heals the partition between two regions.
    pub fn heal(&self, a: RegionId, b: RegionId) {
        let mut faults = self.faults.borrow_mut();
        faults.partitions.remove(&(a, b));
        faults.partitions.remove(&(b, a));
    }

    /// Starts an asymmetric partition: messages `from → to` are dropped
    /// while `to → from` still flows (e.g. a broken return path).
    pub fn partition_one_way(&self, from: RegionId, to: RegionId) {
        if from == to {
            return;
        }
        self.faults.borrow_mut().one_way.insert((from, to));
    }

    /// Heals the one-way partition `from → to`.
    pub fn heal_one_way(&self, from: RegionId, to: RegionId) {
        self.faults.borrow_mut().one_way.remove(&(from, to));
    }

    /// Heals every partition, symmetric and one-way. Dark zones and
    /// regions are *not* cleared here — outages end via their scheduled
    /// recovery events (or [`Topology::set_region_dark`] /
    /// [`Topology::set_zone_dark`] with `dark = false`).
    pub fn heal_all(&self) {
        let mut faults = self.faults.borrow_mut();
        faults.partitions.clear();
        faults.one_way.clear();
    }

    /// Marks an entire region dark (`dark = true`) or restores it.
    pub fn set_region_dark(&self, region: RegionId, dark: bool) {
        let mut faults = self.faults.borrow_mut();
        if dark {
            faults.dark_regions.insert(region);
        } else {
            faults.dark_regions.remove(&region);
        }
    }

    /// Marks a single zone dark (`dark = true`) or restores it.
    pub fn set_zone_dark(&self, region: RegionId, zone: u32, dark: bool) {
        let mut faults = self.faults.borrow_mut();
        if dark {
            faults.dark_zones.insert((region, zone));
        } else {
            faults.dark_zones.remove(&(region, zone));
        }
    }

    /// Sets the global latency multiplier in percent (100 = normal),
    /// discarding any stacked spike factors.
    pub fn set_latency_factor_pct(&self, pct: u32) {
        let mut faults = self.faults.borrow_mut();
        faults.latency_factor_pct = pct.max(1);
        faults.factor_stack.clear();
    }

    /// Starts a latency spike, remembering the factor it replaces so
    /// overlapping spikes compose: each [`Topology::pop_latency_factor_pct`]
    /// restores the previous factor rather than resetting to 100%.
    pub fn push_latency_factor_pct(&self, pct: u32) {
        let mut faults = self.faults.borrow_mut();
        let prev = faults.latency_factor_pct;
        faults.factor_stack.push(prev);
        faults.latency_factor_pct = pct.max(1);
    }

    /// Ends the most recent latency spike, restoring the factor that was
    /// active before it (100% if the stack is empty).
    pub fn pop_latency_factor_pct(&self) {
        let mut faults = self.faults.borrow_mut();
        faults.latency_factor_pct = faults.factor_stack.pop().unwrap_or(100);
    }

    /// Messages dropped so far because of partitions.
    pub fn dropped_messages(&self) -> u64 {
        self.faults.borrow().dropped
    }

    /// Round-trip time between two locations (two sampled one-way hops).
    pub fn sample_rtt(&self, sim: &Sim, a: Location, b: Location) -> Duration {
        self.sample_latency(sim, a, b) + self.sample_latency(sim, b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn three_region_latencies() {
        let t = Topology::three_region();
        let us = Location::new(RegionId(0), 0);
        let eu = Location::new(RegionId(1), 0);
        let asia = Location::new(RegionId(2), 0);
        assert_eq!(t.base_latency(us, eu), dur::us(52_500));
        assert_eq!(t.base_latency(eu, asia), dur::ms(125));
        assert_eq!(t.base_latency(us, asia), dur::ms(90));
        // Symmetry.
        assert_eq!(t.base_latency(eu, us), t.base_latency(us, eu));
    }

    #[test]
    fn zone_latencies() {
        let t = Topology::single_region("us-east1", 3);
        let a = Location::new(RegionId(0), 0);
        let b = Location::new(RegionId(0), 1);
        assert_eq!(t.base_latency(a, a), dur::us(250));
        assert_eq!(t.base_latency(a, b), dur::us(750));
    }

    #[test]
    fn region_lookup() {
        let t = Topology::three_region();
        assert_eq!(t.region_by_name("europe-west1"), Some(RegionId(1)));
        assert_eq!(t.region_name(RegionId(2)), "asia-southeast1");
        assert_eq!(t.region_by_name("mars-north1"), None);
        assert_eq!(t.regions().count(), 3);
    }

    #[test]
    fn send_delivers_after_latency() {
        let sim = Sim::new(7);
        let t = Topology::three_region();
        let us = Location::new(RegionId(0), 0);
        let asia = Location::new(RegionId(2), 0);
        let arrived = Rc::new(RefCell::new(None));
        let a = Rc::clone(&arrived);
        let s = sim.clone();
        t.send(&sim, us, asia, move || *a.borrow_mut() = Some(s.now()));
        sim.run_to_completion();
        let at = arrived.borrow().expect("delivered");
        let secs = at.as_secs_f64();
        // 90ms one-way + up to 5% jitter.
        assert!((0.090..0.095).contains(&secs), "{secs}");
    }

    #[test]
    fn partition_drops_messages_until_healed() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let clone = t.clone();
        let us = Location::new(RegionId(0), 0);
        let eu = Location::new(RegionId(1), 0);
        // Partition applied on a clone is visible on the original.
        clone.partition(RegionId(0), RegionId(1));
        assert!(!t.is_reachable(us, eu));
        assert!(!t.is_reachable(eu, us));
        let delivered = Rc::new(RefCell::new(0u32));
        let d = Rc::clone(&delivered);
        t.send(&sim, us, eu, move || *d.borrow_mut() += 1);
        sim.run_to_completion();
        assert_eq!(*delivered.borrow(), 0, "partitioned message dropped");
        assert_eq!(t.dropped_messages(), 1);
        t.heal(RegionId(0), RegionId(1));
        assert!(t.is_reachable(us, eu));
        let d = Rc::clone(&delivered);
        t.send(&sim, us, eu, move || *d.borrow_mut() += 1);
        sim.run_to_completion();
        assert_eq!(*delivered.borrow(), 1, "healed link delivers");
        // Same-region traffic is never partitioned.
        clone.partition(RegionId(0), RegionId(0));
        assert!(t.is_reachable(us, Location::new(RegionId(0), 1)));
    }

    #[test]
    fn latency_spike_multiplies_latency() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let us = Location::new(RegionId(0), 0);
        let eu = Location::new(RegionId(1), 0);
        let normal = t.sample_latency(&sim, us, eu);
        t.set_latency_factor_pct(400);
        let spiked = t.sample_latency(&sim, us, eu);
        assert!(spiked >= normal.mul_f64(3.5), "{spiked:?} vs {normal:?}");
        t.set_latency_factor_pct(100);
    }

    #[test]
    fn one_way_partition_is_asymmetric() {
        let t = Topology::three_region();
        let us = Location::new(RegionId(0), 0);
        let eu = Location::new(RegionId(1), 0);
        t.partition_one_way(RegionId(0), RegionId(1));
        assert!(!t.is_reachable(us, eu), "forward path dead");
        assert!(t.is_reachable(eu, us), "return path still up");
        t.heal_one_way(RegionId(0), RegionId(1));
        assert!(t.is_reachable(us, eu));
        // Self-partition is a no-op.
        t.partition_one_way(RegionId(0), RegionId(0));
        assert!(t.is_reachable(us, Location::new(RegionId(0), 1)));
        // heal_all clears one-way partitions too.
        t.partition_one_way(RegionId(1), RegionId(2));
        t.heal_all();
        assert!(t.is_reachable(eu, Location::new(RegionId(2), 0)));
    }

    #[test]
    fn dark_region_blocks_all_traffic_including_intra_region() {
        let t = Topology::three_region();
        let eu_a = Location::new(RegionId(1), 0);
        let eu_b = Location::new(RegionId(1), 1);
        let us = Location::new(RegionId(0), 0);
        t.set_region_dark(RegionId(1), true);
        assert!(t.is_dark(eu_a));
        assert!(!t.is_reachable(eu_a, eu_b), "intra-region traffic dies in a dark region");
        assert!(!t.is_reachable(us, eu_a));
        assert!(!t.is_reachable(eu_a, us));
        assert!(t.is_reachable(us, Location::new(RegionId(2), 0)), "other regions unaffected");
        // heal_all does NOT recover a dark region.
        t.heal_all();
        assert!(!t.is_reachable(us, eu_a));
        t.set_region_dark(RegionId(1), false);
        assert!(t.is_reachable(us, eu_a));
        assert!(!t.is_dark(eu_a));
    }

    #[test]
    fn dark_zone_blocks_only_that_zone() {
        let t = Topology::single_region("us-east1", 3);
        let z0 = Location::new(RegionId(0), 0);
        let z1 = Location::new(RegionId(0), 1);
        let z2 = Location::new(RegionId(0), 2);
        t.set_zone_dark(RegionId(0), 1, true);
        assert!(t.is_dark(z1));
        assert!(!t.is_reachable(z0, z1));
        assert!(!t.is_reachable(z1, z2));
        assert!(t.is_reachable(z0, z2), "unaffected zones still talk");
        t.set_zone_dark(RegionId(0), 1, false);
        assert!(t.is_reachable(z0, z1));
    }

    #[test]
    fn overlapping_latency_spikes_restore_previous_factor() {
        let sim = Sim::new(1);
        let t = Topology::three_region();
        let us = Location::new(RegionId(0), 0);
        let eu = Location::new(RegionId(1), 0);
        let normal = t.sample_latency(&sim, us, eu);
        // Spike A (400%) then overlapping spike B (200%).
        t.push_latency_factor_pct(400);
        t.push_latency_factor_pct(200);
        // B ends: factor must return to A's 400%, not 100%.
        t.pop_latency_factor_pct();
        let still_spiked = t.sample_latency(&sim, us, eu);
        assert!(still_spiked >= normal.mul_f64(3.5), "{still_spiked:?} vs {normal:?}");
        // A ends: back to normal.
        t.pop_latency_factor_pct();
        let restored = t.sample_latency(&sim, us, eu);
        assert!(restored <= normal.mul_f64(1.2), "{restored:?} vs {normal:?}");
        // Popping an empty stack is safe and pins the factor at 100%.
        t.pop_latency_factor_pct();
        assert!(t.sample_latency(&sim, us, eu) <= normal.mul_f64(1.2));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let measure = |seed| {
            let sim = Sim::new(seed);
            let t = Topology::three_region();
            let us = Location::new(RegionId(0), 0);
            let eu = Location::new(RegionId(1), 0);
            t.sample_latency(&sim, us, eu)
        };
        assert_eq!(measure(1), measure(1));
        assert_ne!(measure(1), measure(2));
    }
}
