// NOTE: with the vendored offline proptest stand-in, `proptest!` blocks
// compile away, leaving strategies/helpers unreferenced. The seeded
// `SmallRng` tests below run the same differential check for real.
#![allow(dead_code, unused_imports)]

//! Differential test: the hierarchical timer wheel must reproduce the old
//! binary-heap scheduler's pop order **byte for byte** under arbitrary
//! interleavings of schedules (including in the past and far future),
//! cancels, re-schedules, and same-timestamp bursts. The heap lives on as
//! `crdb_sim::modelheap::ModelScheduler`, kept solely as this model and
//! as the baseline for `scale_soak`'s speedup gate.

use std::fmt::Write as _;

use crdb_sim::modelheap::ModelScheduler;
use crdb_sim::wheel::TimerWheel;
use crdb_util::slab::Slot;
use crdb_util::time::SimTime;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One step of the random schedule driven against both implementations.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule one event `delay_ns` after the current virtual time.
    Schedule { delay_ns: u64 },
    /// Schedule `n` events at the identical timestamp.
    Burst { delay_ns: u64, n: usize },
    /// Schedule at an *absolute* time, possibly in the virtual past
    /// (exercises the engine's clamp-to-now path: both structures receive
    /// the same clamped instant).
    ScheduleAbsolute { at_ns: u64 },
    /// Cancel the pending event at index `pick % pending.len()`.
    Cancel { pick: usize },
    /// Cancel a pending event and immediately re-schedule it later.
    Reschedule { pick: usize, delay_ns: u64 },
    /// Pop up to `n` events from both sides and compare.
    Pop { n: usize },
}

/// Drives the same op sequence against the wheel and the model heap and
/// returns the two pop logs, which callers assert byte-identical.
fn run_differential(ops: &[Op]) -> (String, String) {
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    let mut model: ModelScheduler<u64> = ModelScheduler::new();
    // (seq, wheel token) for every not-yet-popped, not-yet-cancelled event.
    let mut pending: Vec<(u64, Slot)> = Vec::new();
    let mut next_seq = 0u64;
    let mut now_ns = 0u64;
    let mut wheel_log = String::new();
    let mut model_log = String::new();

    let schedule = |at_ns: u64,
                    wheel: &mut TimerWheel<u64>,
                    model: &mut ModelScheduler<u64>,
                    pending: &mut Vec<(u64, Slot)>,
                    next_seq: &mut u64| {
        let at = SimTime::from_nanos(at_ns);
        let seq = *next_seq;
        *next_seq += 1;
        let token = wheel.insert(at, seq, seq);
        let model_id = model.schedule(at, seq);
        assert_eq!(model_id, seq, "model ids are schedule sequence numbers");
        pending.push((seq, token));
    };

    for op in ops {
        match *op {
            Op::Schedule { delay_ns } => {
                schedule(
                    now_ns.saturating_add(delay_ns),
                    &mut wheel,
                    &mut model,
                    &mut pending,
                    &mut next_seq,
                );
            }
            Op::Burst { delay_ns, n } => {
                let at = now_ns.saturating_add(delay_ns);
                for _ in 0..n {
                    schedule(at, &mut wheel, &mut model, &mut pending, &mut next_seq);
                }
            }
            Op::ScheduleAbsolute { at_ns } => {
                // The engine clamps past times to now before either
                // structure sees them; replicate that here.
                let at = at_ns.max(now_ns);
                schedule(at, &mut wheel, &mut model, &mut pending, &mut next_seq);
            }
            Op::Cancel { pick } => {
                if pending.is_empty() {
                    continue;
                }
                let (seq, token) = pending.swap_remove(pick % pending.len());
                assert!(wheel.cancel(token).is_some(), "live event cancels");
                model.cancel(seq);
            }
            Op::Reschedule { pick, delay_ns } => {
                if pending.is_empty() {
                    continue;
                }
                let (seq, token) = pending.swap_remove(pick % pending.len());
                assert!(wheel.cancel(token).is_some());
                model.cancel(seq);
                schedule(
                    now_ns.saturating_add(delay_ns),
                    &mut wheel,
                    &mut model,
                    &mut pending,
                    &mut next_seq,
                );
            }
            Op::Pop { n } => {
                for _ in 0..n {
                    let w = wheel.pop_min();
                    let m = model.pop_min();
                    match (w, m) {
                        (None, None) => break,
                        (Some((wat, wseq, wval)), Some((mat, mseq, mval))) => {
                            writeln!(wheel_log, "{}:{}:{}", wat.as_nanos(), wseq, wval).unwrap();
                            writeln!(model_log, "{}:{}:{}", mat.as_nanos(), mseq, mval).unwrap();
                            assert_eq!((wat, wseq, wval), (mat, mseq, mval));
                            now_ns = now_ns.max(wat.as_nanos());
                            pending.retain(|&(s, _)| s != wseq);
                        }
                        (w, m) => panic!("one side drained early: wheel={w:?} model={m:?}"),
                    }
                }
            }
        }
    }
    // Drain both completely.
    loop {
        let w = wheel.pop_min();
        let m = model.pop_min();
        match (w, m) {
            (None, None) => break,
            (Some((wat, wseq, wval)), Some((mat, mseq, mval))) => {
                writeln!(wheel_log, "{}:{}:{}", wat.as_nanos(), wseq, wval).unwrap();
                writeln!(model_log, "{}:{}:{}", mat.as_nanos(), mseq, mval).unwrap();
                assert_eq!((wat, wseq, wval), (mat, mseq, mval));
            }
            (w, m) => panic!("one side drained early: wheel={w:?} model={m:?}"),
        }
    }
    assert_eq!(wheel.len(), 0);
    (wheel_log, model_log)
}

/// Random op stream biased toward the hot patterns: short timers, heavy
/// cancellation, occasional far-future outliers crossing wheel levels.
fn random_ops(rng: &mut SmallRng, len: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let op = match rng.gen_range(0..10u32) {
            0..=2 => Op::Schedule { delay_ns: rng.gen_range(0..50_000_000) },
            3 => Op::Schedule {
                // Far future: exercises high levels and the overflow map.
                delay_ns: rng.gen_range(1_000_000_000..u64::MAX / 2),
            },
            4 => Op::Burst { delay_ns: rng.gen_range(0..5_000_000), n: rng.gen_range(2..12) },
            5 => Op::ScheduleAbsolute { at_ns: rng.gen_range(0..100_000_000) },
            6 | 7 => Op::Cancel { pick: rng.gen() },
            8 => Op::Reschedule { pick: rng.gen(), delay_ns: rng.gen_range(0..20_000_000) },
            _ => Op::Pop { n: rng.gen_range(1..8) },
        };
        ops.push(op);
    }
    ops
}

#[test]
fn seeded_random_schedules_match_model_byte_for_byte() {
    for seed in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(50..400);
        let ops = random_ops(&mut rng, len);
        let (wheel_log, model_log) = run_differential(&ops);
        assert_eq!(wheel_log, model_log, "seed {seed}");
        assert!(!wheel_log.is_empty(), "seed {seed} popped nothing");
    }
}

#[test]
fn same_timestamp_burst_orders_by_schedule_seq() {
    let ops = vec![
        Op::Burst { delay_ns: 1_000_000, n: 50 },
        Op::Pop { n: 10 },
        Op::Burst { delay_ns: 1_000_000, n: 50 },
        Op::Pop { n: 200 },
    ];
    let (wheel_log, model_log) = run_differential(&ops);
    assert_eq!(wheel_log, model_log);
}

#[test]
fn cancel_heavy_churn_matches_model() {
    // The proxy's idle-timer pattern: schedule, cancel most, re-schedule.
    let mut ops = Vec::new();
    for i in 0..500usize {
        ops.push(Op::Schedule { delay_ns: (i as u64 % 97) * 10_000 + 1 });
        if i % 2 == 0 {
            ops.push(Op::Cancel { pick: i * 7 });
        }
        if i % 5 == 0 {
            ops.push(Op::Reschedule { pick: i * 13, delay_ns: 777_000 });
        }
        if i % 11 == 0 {
            ops.push(Op::Pop { n: 3 });
        }
    }
    let (wheel_log, model_log) = run_differential(&ops);
    assert_eq!(wheel_log, model_log);
}

#[test]
fn identical_seeds_produce_identical_logs() {
    let run = |seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ops = random_ops(&mut rng, 300);
        run_differential(&ops).0
    };
    assert_eq!(run(42), run(42), "same seed, same bytes");
}

proptest! {
    /// Arbitrary op streams: the wheel and the model heap pop identical
    /// `(at, seq)` sequences.
    #[test]
    fn wheel_matches_heap_model(
        seed in any::<u64>(),
        len in 10usize..300,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ops = random_ops(&mut rng, len);
        let (wheel_log, model_log) = run_differential(&ops);
        prop_assert_eq!(wheel_log, model_log);
    }
}
