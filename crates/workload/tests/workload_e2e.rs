//! Whole-system workload tests: TPC-C, TPC-H and YCSB run end-to-end on
//! both deployment modes.

use std::rc::Rc;

use crdb_core::{DedicatedCluster, ServerlessCluster, ServerlessConfig};
use crdb_kv::cluster::KvClusterConfig;
use crdb_sim::{Sim, Topology};
use crdb_sql::node::SqlNodeConfig;
use crdb_util::time::{dur, SimTime};
use crdb_util::RegionId;
use crdb_workload::driver::{Driver, DriverConfig, SqlExecutor};
use crdb_workload::executors::{
    run_setup, DedicatedExec, DedicatedExecutor, ServerlessExec, ServerlessExecutor,
};
use crdb_workload::{tpcc, tpch, ycsb};

fn serverless_executor(sim: &Sim) -> (Rc<ServerlessCluster>, Rc<dyn SqlExecutor>) {
    let cluster = ServerlessCluster::new(sim, ServerlessConfig::default());
    let tenant = cluster.create_tenant(vec![RegionId(0)], None);
    let ex = ServerlessExecutor::new(Rc::clone(&cluster), tenant);
    (cluster, Rc::new(ServerlessExec(ex)) as Rc<dyn SqlExecutor>)
}

fn dedicated_executor(sim: &Sim) -> (Rc<DedicatedCluster>, Rc<dyn SqlExecutor>) {
    let cluster = DedicatedCluster::new(
        sim,
        Topology::single_region("us-east1", 3),
        KvClusterConfig::default(),
        SqlNodeConfig::default(),
    );
    let ex = DedicatedExecutor::new(Rc::clone(&cluster));
    (cluster, Rc::new(DedicatedExec(ex)) as Rc<dyn SqlExecutor>)
}

fn load_tpcc(sim: &Sim, ex: &Rc<dyn SqlExecutor>, cfg: &tpcc::TpccConfig) {
    let mut stmts: Vec<String> = tpcc::schema().iter().map(|s| s.to_string()).collect();
    stmts.extend(tpcc::load_statements(cfg));
    run_setup(sim, ex, &stmts);
}

#[test]
fn tpcc_runs_on_serverless() {
    let sim = Sim::new(11);
    let (_cluster, ex) = serverless_executor(&sim);
    let cfg = tpcc::TpccConfig::default();
    load_tpcc(&sim, &ex, &cfg);

    let driver = Driver::new(
        &sim,
        Rc::clone(&ex),
        DriverConfig { workers: 4, think_time: Some(dur::ms(200)), max_retries: 10 },
        tpcc::mix_factory(cfg, 1),
    );
    let end = sim.now() + dur::secs(60);
    driver.run_until(end);
    sim.run_until(end + dur::secs(30));

    let committed = *driver.stats.committed.borrow();
    let aborted = *driver.stats.aborted.borrow();
    assert!(committed > 50, "transactions committed: {committed}");
    assert_eq!(aborted, 0, "no aborts in a healthy run: {:?}", driver.stats.last_abort.borrow());
    let tpm = driver.stats.per_minute("new_order", dur::secs(60));
    assert!(tpm > 10.0, "tpmC positive: {tpm}");
    let (p50, p99) = driver.stats.latency_quantiles();
    assert!(p50 > 0.0 && p99 < 5.0, "sane latencies: p50={p50} p99={p99}");
}

#[test]
fn tpcc_runs_on_dedicated() {
    let sim = Sim::new(12);
    let (_cluster, ex) = dedicated_executor(&sim);
    let cfg = tpcc::TpccConfig::default();
    load_tpcc(&sim, &ex, &cfg);

    let driver = Driver::new(
        &sim,
        Rc::clone(&ex),
        DriverConfig { workers: 4, think_time: Some(dur::ms(200)), max_retries: 10 },
        tpcc::mix_factory(cfg, 2),
    );
    let end = sim.now() + dur::secs(60);
    driver.run_until(end);
    sim.run_until(end + dur::secs(30));
    assert!(*driver.stats.committed.borrow() > 50);
}

#[test]
fn tpcc_data_is_consistent_after_run() {
    // New-Order increments d_next_o_id; every committed new_order must
    // have inserted exactly one orders row: sum(d_next_o_id - 1) == count.
    let sim = Sim::new(13);
    let (_cluster, ex) = serverless_executor(&sim);
    let cfg = tpcc::TpccConfig::default();
    load_tpcc(&sim, &ex, &cfg);
    let driver = Driver::new(
        &sim,
        Rc::clone(&ex),
        DriverConfig { workers: 3, think_time: Some(dur::ms(100)), max_retries: 10 },
        tpcc::new_order_only_factory(cfg, 3),
    );
    let end = sim.now() + dur::secs(30);
    driver.run_until(end);
    sim.run_until(end + dur::secs(30));
    let committed = *driver.stats.committed.borrow();
    assert!(committed > 20, "{committed}");

    // Verify invariant through SQL.
    let out = std::rc::Rc::new(std::cell::RefCell::new(None));
    {
        let o = std::rc::Rc::clone(&out);
        ex.exec(
            0,
            "SELECT COUNT(*), SUM(d_next_o_id) FROM district".into(),
            vec![],
            Box::new(move |r| *o.borrow_mut() = Some(r.unwrap())),
        );
    }
    sim.run_for(dur::secs(10));
    let districts = out.borrow_mut().take().unwrap();
    let n_districts = districts.rows[0][0].as_i64().unwrap();
    let sum_next = districts.rows[0][1].as_i64().unwrap();
    let orders_created = sum_next - n_districts; // next_o_id starts at 1

    let out2 = std::rc::Rc::new(std::cell::RefCell::new(None));
    {
        let o = std::rc::Rc::clone(&out2);
        ex.exec(
            0,
            "SELECT COUNT(*) FROM orders".into(),
            vec![],
            Box::new(move |r| *o.borrow_mut() = Some(r.unwrap())),
        );
    }
    sim.run_for(dur::secs(10));
    let orders = out2.borrow_mut().take().unwrap().rows[0][0].as_i64().unwrap();
    assert_eq!(orders, orders_created, "district counters match order rows");
    assert_eq!(orders as u64, committed, "each commit created one order");
}

#[test]
fn tpch_q1_and_q9_return_plausible_results() {
    let sim = Sim::new(14);
    let (_cluster, ex) = dedicated_executor(&sim);
    let cfg = tpch::TpchConfig::default();
    let mut stmts: Vec<String> = tpch::schema().iter().map(|s| s.to_string()).collect();
    stmts.extend(tpch::load_statements(&cfg));
    run_setup(&sim, &ex, &stmts);

    let out = std::rc::Rc::new(std::cell::RefCell::new(None));
    {
        let o = std::rc::Rc::clone(&out);
        ex.exec(
            0,
            tpch::q1_sql().into(),
            vec![crdb_sql::value::Datum::Int(12_000)],
            Box::new(move |r| *o.borrow_mut() = Some(r)),
        );
    }
    sim.run_for(dur::secs(30));
    let q1 = out.borrow_mut().take().unwrap().expect("q1 runs");
    // 3 return flags × 2 statuses = up to 6 groups.
    assert!(!q1.rows.is_empty() && q1.rows.len() <= 6, "{} groups", q1.rows.len());
    assert_eq!(q1.columns.len(), 7);

    let out = std::rc::Rc::new(std::cell::RefCell::new(None));
    {
        let o = std::rc::Rc::clone(&out);
        ex.exec(0, tpch::q9_sql().into(), vec![], Box::new(move |r| *o.borrow_mut() = Some(r)));
    }
    sim.run_for(dur::secs(30));
    let q9 = out.borrow_mut().take().unwrap().expect("q9 runs");
    assert!(!q9.rows.is_empty());
    // Ordered by amount descending.
    let amounts: Vec<f64> = q9.rows.iter().map(|r| r[2].as_f64().unwrap()).collect();
    assert!(amounts.windows(2).all(|w| w[0] >= w[1]), "sorted: {amounts:?}");
}

#[test]
fn ycsb_mixes_run() {
    let sim = Sim::new(15);
    let (_cluster, ex) = serverless_executor(&sim);
    let cfg = ycsb::YcsbConfig { records: 200, ..ycsb::YcsbConfig::workload_a() };
    let mut stmts: Vec<String> = ycsb::schema().iter().map(|s| s.to_string()).collect();
    stmts.extend(ycsb::load_statements(&cfg));
    run_setup(&sim, &ex, &stmts);

    let driver = Driver::new(
        &sim,
        Rc::clone(&ex),
        DriverConfig { workers: 4, think_time: Some(dur::ms(50)), max_retries: 5 },
        ycsb::factory(cfg, 4),
    );
    let end = sim.now() + dur::secs(30);
    driver.run_until(end);
    sim.run_until(end + dur::secs(10));
    let committed = *driver.stats.committed.borrow();
    assert!(committed > 100, "{committed}");
    let labels = driver.stats.by_label.borrow();
    assert!(labels.contains_key("read") && labels.contains_key("update"));
}

#[test]
fn driver_stops_at_deadline() {
    let sim = Sim::new(16);
    let (_cluster, ex) = serverless_executor(&sim);
    let cfg = ycsb::YcsbConfig { records: 50, ..ycsb::YcsbConfig::workload_c() };
    let mut stmts: Vec<String> = ycsb::schema().iter().map(|s| s.to_string()).collect();
    stmts.extend(ycsb::load_statements(&cfg));
    run_setup(&sim, &ex, &stmts);
    let driver = Driver::new(
        &sim,
        Rc::clone(&ex),
        DriverConfig { workers: 2, think_time: Some(dur::ms(50)), max_retries: 3 },
        ycsb::factory(cfg, 5),
    );
    let deadline = sim.now() + dur::secs(10);
    driver.run_until(deadline);
    sim.run_until(SimTime::from_secs_f64(sim.now().as_secs_f64() + 300.0));
    // After the deadline the system drains: event queue must not grow
    // without bound (periodic loops remain, but no new transactions).
    let committed_at_end = *driver.stats.committed.borrow();
    sim.run_for(dur::secs(30));
    assert_eq!(*driver.stats.committed.borrow(), committed_at_end);
}
