//! TPC-H-lite (§6.1.2).
//!
//! The evaluation focuses on two queries at scale factor 10 (downscaled
//! here): **Q1**, a full table scan with aggregation — the worst case for
//! the separated SQL/KV architecture because every scanned byte crosses
//! the process boundary — and a **Q9-style** query whose plan relies on
//! index (lookup) joins, making Serverless and Traditional roughly equal.

use std::cell::Cell;
use std::rc::Rc;

use crate::driver::{stmt, stmt_params, Step, TxnFactory};
use crdb_sql::value::Datum;

/// Scale parameters.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Rows in `lineitem`.
    pub lineitems: u64,
    /// Rows in `part` (and `supplier`).
    pub parts: u64,
    /// Rows in `orders`.
    pub orders: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig { lineitems: 600, parts: 40, orders: 150 }
    }
}

/// DDL for the TPC-H-lite schema.
pub fn schema() -> Vec<&'static str> {
    vec![
        "CREATE TABLE part (p_partkey INT PRIMARY KEY, p_name STRING, p_retailprice FLOAT)",
        "CREATE TABLE supplier (s_suppkey INT PRIMARY KEY, s_name STRING, s_nationkey INT)",
        "CREATE TABLE orders (o_orderkey INT PRIMARY KEY, o_custkey INT, o_orderyear INT)",
        "CREATE TABLE lineitem (l_orderkey INT, l_linenumber INT, l_partkey INT, \
         l_suppkey INT, l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, \
         l_returnflag STRING, l_linestatus STRING, l_shipdate INT, \
         PRIMARY KEY (l_orderkey, l_linenumber))",
    ]
}

/// Deterministic load statements.
pub fn load_statements(config: &TpchConfig) -> Vec<String> {
    let mut out = Vec::new();
    let batch = |rows: Vec<String>, table: &str, out: &mut Vec<String>| {
        for chunk in rows.chunks(50) {
            out.push(format!("INSERT INTO {table} VALUES {}", chunk.join(", ")));
        }
    };
    batch(
        (1..=config.parts)
            .map(|i| format!("({i}, 'part-{i}', {}.0)", 10 + (i * 17) % 900))
            .collect(),
        "part",
        &mut out,
    );
    batch(
        (1..=config.parts).map(|i| format!("({i}, 'supp-{i}', {})", i % 25)).collect(),
        "supplier",
        &mut out,
    );
    batch(
        (1..=config.orders).map(|i| format!("({i}, {}, {})", i % 100, 1992 + (i % 7))).collect(),
        "orders",
        &mut out,
    );
    let flags = ["A", "N", "R"];
    let statuses = ["F", "O"];
    batch(
        (1..=config.lineitems)
            .map(|i| {
                let orderkey = 1 + i % config.orders;
                let line = 1 + (i / config.orders);
                format!(
                    "({orderkey}, {line}, {}, {}, {}.0, {}.0, 0.0{}, '{}', '{}', {})",
                    1 + i % config.parts,
                    1 + i % config.parts,
                    1 + i % 50,
                    100 + (i * 31) % 900,
                    i % 9,
                    flags[(i % 3) as usize],
                    statuses[(i % 2) as usize],
                    10_000 + (i % 2_500)
                )
            })
            .collect(),
        "lineitem",
        &mut out,
    );
    out
}

/// TPC-H Q1 (lite): full scan of lineitem with grouped aggregation.
pub fn q1_sql() -> &'static str {
    "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
     SUM(l_extendedprice) AS sum_base_price, AVG(l_quantity) AS avg_qty, \
     AVG(l_extendedprice) AS avg_price, COUNT(*) AS count_order \
     FROM lineitem WHERE l_shipdate <= $1 \
     GROUP BY l_returnflag, l_linestatus \
     ORDER BY l_returnflag, l_linestatus"
}

/// TPC-H Q9-style (lite): joins before aggregation; the lookup joins keep
/// per-row KV traffic point-shaped.
pub fn q9_sql() -> &'static str {
    "SELECT s.s_nationkey, o.o_orderyear, SUM(l.l_extendedprice) AS amount \
     FROM lineitem l \
     JOIN part p ON l.l_partkey = p.p_partkey \
     JOIN supplier s ON l.l_suppkey = s.s_suppkey \
     JOIN orders o ON l.l_orderkey = o.o_orderkey \
     GROUP BY s.s_nationkey, o.o_orderyear \
     ORDER BY amount DESC"
}

/// A factory running Q1 repeatedly.
pub fn q1_factory() -> TxnFactory {
    Rc::new(move |_worker| {
        let steps: Rc<Vec<Step>> = Rc::new(vec![stmt_params(q1_sql(), vec![Datum::Int(12_000)])]);
        ("q1".to_string(), steps)
    })
}

/// A factory running Q9 repeatedly.
pub fn q9_factory() -> TxnFactory {
    Rc::new(move |_worker| {
        let steps: Rc<Vec<Step>> = Rc::new(vec![stmt(q9_sql())]);
        ("q9".to_string(), steps)
    })
}

/// A factory alternating Q1 and Q9.
pub fn mixed_factory() -> TxnFactory {
    let counter = Cell::new(0u64);
    Rc::new(move |_worker| {
        let n = counter.get();
        counter.set(n + 1);
        if n.is_multiple_of(2) {
            (
                "q1".to_string(),
                Rc::new(vec![stmt_params(q1_sql(), vec![Datum::Int(12_000)])]) as Rc<Vec<Step>>,
            )
        } else {
            ("q9".to_string(), Rc::new(vec![stmt(q9_sql())]) as Rc<Vec<Step>>)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::ScriptCtx;

    #[test]
    fn load_counts() {
        let cfg = TpchConfig { lineitems: 120, parts: 10, orders: 30 };
        let stmts = load_statements(&cfg);
        // Each statement inserts at most 50 rows.
        assert!(stmts.len() >= (120 + 10 + 10 + 30) / 50);
        assert!(stmts.iter().all(|s| s.starts_with("INSERT INTO")));
    }

    #[test]
    fn q1_parses_and_is_aggregation() {
        let stmt = crdb_sql::parser::parse(q1_sql()).expect("q1 parses");
        match stmt {
            crdb_sql::parser::Statement::Select(s) => {
                assert_eq!(s.group_by.len(), 2);
                assert!(s.filter.is_some());
                assert!(s.items.len() >= 6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn q9_parses_with_three_joins() {
        let stmt = crdb_sql::parser::parse(q9_sql()).expect("q9 parses");
        match stmt {
            crdb_sql::parser::Statement::Select(s) => {
                assert_eq!(s.joins.len(), 3);
                assert_eq!(s.group_by.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn factories_produce_single_statement_scripts() {
        let f = q1_factory();
        let (label, steps) = f(0);
        assert_eq!(label, "q1");
        assert_eq!(steps.len(), 1);
        let (sql, params) = steps[0](&ScriptCtx::default());
        assert!(sql.contains("lineitem"));
        assert_eq!(params.len(), 1);
    }
}
