//! TPC-C-lite.
//!
//! The schema and transaction mix of TPC-C at simulation scale: New-Order
//! (45%), Payment (43%), Order-Status (4%), Delivery (4%), Stock-Level
//! (4%). The stock configuration uses think time and ten workers per
//! warehouse (§6.6); the noisy-neighbor configuration runs one worker per
//! warehouse with no wait.

use std::cell::Cell;
use std::rc::Rc;

use crdb_sql::value::Datum;
use rand::Rng;

use crate::driver::{stmt_params, ScriptCtx, Step, TxnFactory};

/// Scale parameters (downscaled from 10 districts / 3000 customers /
/// 100000 items for simulation speed; ratios preserved).
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Warehouses.
    pub warehouses: u64,
    /// Districts per warehouse.
    pub districts_per_warehouse: u64,
    /// Customers per district.
    pub customers_per_district: u64,
    /// Catalog items (stock is per warehouse × item).
    pub items: u64,
    /// Order lines per New-Order.
    pub order_lines: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 3,
            customers_per_district: 10,
            items: 50,
            order_lines: 5,
        }
    }
}

/// The DDL statements for the TPC-C-lite schema.
pub fn schema() -> Vec<&'static str> {
    vec![
        "CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name STRING, w_tax FLOAT, w_ytd FLOAT)",
        "CREATE TABLE district (d_w_id INT, d_id INT, d_name STRING, d_tax FLOAT, d_ytd FLOAT, \
         d_next_o_id INT, PRIMARY KEY (d_w_id, d_id))",
        "CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, c_name STRING, \
         c_balance FLOAT, c_ytd_payment FLOAT, c_payment_cnt INT, \
         PRIMARY KEY (c_w_id, c_d_id, c_id))",
        "CREATE TABLE item (i_id INT PRIMARY KEY, i_name STRING, i_price FLOAT)",
        "CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT, s_ytd FLOAT, \
         s_order_cnt INT, PRIMARY KEY (s_w_id, s_i_id))",
        "CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, \
         o_ol_cnt INT, o_carrier_id INT, PRIMARY KEY (o_w_id, o_d_id, o_id))",
        "CREATE TABLE order_line (ol_w_id INT, ol_d_id INT, ol_o_id INT, ol_number INT, \
         ol_i_id INT, ol_quantity INT, ol_amount FLOAT, \
         PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))",
    ]
}

/// The initial-load statements (multi-row inserts, batched).
pub fn load_statements(config: &TpccConfig) -> Vec<String> {
    let mut out = Vec::new();
    // Warehouses.
    for w in 1..=config.warehouses {
        out.push(format!("INSERT INTO warehouse VALUES ({w}, 'wh-{w}', 0.0{}, 0.0)", w % 10));
        for d in 1..=config.districts_per_warehouse {
            out.push(format!(
                "INSERT INTO district VALUES ({w}, {d}, 'd-{w}-{d}', 0.0{}, 0.0, 1)",
                d % 10
            ));
            let rows: Vec<String> = (1..=config.customers_per_district)
                .map(|c| format!("({w}, {d}, {c}, 'cust-{c}', 0.0, 0.0, 0)"))
                .collect();
            out.push(format!("INSERT INTO customer VALUES {}", rows.join(", ")));
        }
        let rows: Vec<String> = (1..=config.items)
            .map(|i| format!("({w}, {i}, {}, 0.0, 0)", 50 + (i * 7) % 50))
            .collect();
        out.push(format!("INSERT INTO stock VALUES {}", rows.join(", ")));
    }
    let rows: Vec<String> =
        (1..=config.items).map(|i| format!("({i}, 'item-{i}', {}.5)", 1 + (i * 13) % 99)).collect();
    out.push(format!("INSERT INTO item VALUES {}", rows.join(", ")));
    out
}

fn d(v: i64) -> Datum {
    Datum::Int(v)
}

/// Builds the New-Order transaction script for a random (w, d, c).
pub fn new_order(config: &TpccConfig, rng: &mut impl Rng) -> Rc<Vec<Step>> {
    let w = rng.gen_range(1..=config.warehouses) as i64;
    let dd = rng.gen_range(1..=config.districts_per_warehouse) as i64;
    let c = rng.gen_range(1..=config.customers_per_district) as i64;
    let items: Vec<i64> =
        (0..config.order_lines).map(|_| rng.gen_range(1..=config.items) as i64).collect();
    let qty: i64 = rng.gen_range(1..=10);

    let mut steps: Vec<Step> = vec![stmt_params("BEGIN", vec![])];
    steps.push(stmt_params("SELECT w_tax FROM warehouse WHERE w_id = $1", vec![d(w)]));
    steps.push(stmt_params(
        "SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = $1 AND d_id = $2",
        vec![d(w), d(dd)],
    ));
    steps.push(stmt_params(
        "UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = $1 AND d_id = $2",
        vec![d(w), d(dd)],
    ));
    steps.push(stmt_params(
        "SELECT c_name, c_balance FROM customer WHERE c_w_id = $1 AND c_d_id = $2 AND c_id = $3",
        vec![d(w), d(dd), d(c)],
    ));
    // Insert the order using the fetched d_next_o_id (output of step 2).
    {
        let (w, dd, c, n) = (w, dd, c, items.len() as i64);
        steps.push(Box::new(move |ctx: &ScriptCtx| {
            let o_id = ctx
                .outputs
                .get(2)
                .and_then(|o| o.rows.first())
                .and_then(|r| r.get(1))
                .and_then(|v| v.as_i64())
                .unwrap_or(1);
            (
                "INSERT INTO orders VALUES ($1, $2, $3, $4, $5, 0)".to_string(),
                vec![d(w), d(dd), d(o_id), d(c), d(n)],
            )
        }));
    }
    for (n, &item) in items.iter().enumerate() {
        steps.push(stmt_params("SELECT i_price FROM item WHERE i_id = $1", vec![d(item)]));
        steps.push(stmt_params(
            "UPDATE stock SET s_quantity = s_quantity - $3, s_order_cnt = s_order_cnt + 1 \
             WHERE s_w_id = $1 AND s_i_id = $2",
            vec![d(w), d(item), d(qty)],
        ));
        let (w2, dd2, n2, item2, qty2) = (w, dd, n as i64 + 1, item, qty);
        steps.push(Box::new(move |ctx: &ScriptCtx| {
            let o_id = ctx
                .outputs
                .get(2)
                .and_then(|o| o.rows.first())
                .and_then(|r| r.get(1))
                .and_then(|v| v.as_i64())
                .unwrap_or(1);
            let price = ctx
                .outputs
                .iter()
                .rev()
                .find(|o| o.columns == vec!["i_price".to_string()])
                .and_then(|o| o.rows.first())
                .and_then(|r| r.first())
                .and_then(|v| v.as_f64())
                .unwrap_or(1.0);
            (
                "INSERT INTO order_line VALUES ($1, $2, $3, $4, $5, $6, $7)".to_string(),
                vec![
                    d(w2),
                    d(dd2),
                    d(o_id),
                    d(n2),
                    d(item2),
                    d(qty2),
                    Datum::Float(price * qty2 as f64),
                ],
            )
        }));
    }
    steps.push(stmt_params("COMMIT", vec![]));
    Rc::new(steps)
}

/// Builds the Payment transaction script.
pub fn payment(config: &TpccConfig, rng: &mut impl Rng) -> Rc<Vec<Step>> {
    let w = rng.gen_range(1..=config.warehouses) as i64;
    let dd = rng.gen_range(1..=config.districts_per_warehouse) as i64;
    let c = rng.gen_range(1..=config.customers_per_district) as i64;
    let amount = rng.gen_range(1.0..5000.0);
    Rc::new(vec![
        stmt_params("BEGIN", vec![]),
        stmt_params(
            "UPDATE warehouse SET w_ytd = w_ytd + $2 WHERE w_id = $1",
            vec![d(w), Datum::Float(amount)],
        ),
        stmt_params(
            "UPDATE district SET d_ytd = d_ytd + $3 WHERE d_w_id = $1 AND d_id = $2",
            vec![d(w), d(dd), Datum::Float(amount)],
        ),
        stmt_params(
            "UPDATE customer SET c_balance = c_balance - $4, c_ytd_payment = c_ytd_payment + $4, \
             c_payment_cnt = c_payment_cnt + 1 \
             WHERE c_w_id = $1 AND c_d_id = $2 AND c_id = $3",
            vec![d(w), d(dd), d(c), Datum::Float(amount)],
        ),
        stmt_params("COMMIT", vec![]),
    ])
}

/// Builds the Order-Status transaction script (read-only).
pub fn order_status(config: &TpccConfig, rng: &mut impl Rng) -> Rc<Vec<Step>> {
    let w = rng.gen_range(1..=config.warehouses) as i64;
    let dd = rng.gen_range(1..=config.districts_per_warehouse) as i64;
    let c = rng.gen_range(1..=config.customers_per_district) as i64;
    Rc::new(vec![
        stmt_params("BEGIN", vec![]),
        stmt_params(
            "SELECT c_name, c_balance FROM customer WHERE c_w_id = $1 AND c_d_id = $2 AND c_id = $3",
            vec![d(w), d(dd), d(c)],
        ),
        stmt_params(
            "SELECT o_id, o_ol_cnt FROM orders WHERE o_w_id = $1 AND o_d_id = $2 \
             ORDER BY o_id DESC LIMIT 1",
            vec![d(w), d(dd)],
        ),
        stmt_params("COMMIT", vec![]),
    ])
}

/// Builds the Stock-Level transaction script (read-only range scan).
pub fn stock_level(config: &TpccConfig, rng: &mut impl Rng) -> Rc<Vec<Step>> {
    let w = rng.gen_range(1..=config.warehouses) as i64;
    let threshold = rng.gen_range(10..20);
    Rc::new(vec![
        stmt_params("BEGIN", vec![]),
        stmt_params(
            "SELECT COUNT(*) FROM stock WHERE s_w_id = $1 AND s_quantity < $2",
            vec![d(w), d(threshold)],
        ),
        stmt_params("COMMIT", vec![]),
    ])
}

/// Builds the Delivery transaction script (simplified: mark the oldest
/// order delivered).
pub fn delivery(config: &TpccConfig, rng: &mut impl Rng) -> Rc<Vec<Step>> {
    let w = rng.gen_range(1..=config.warehouses) as i64;
    let dd = rng.gen_range(1..=config.districts_per_warehouse) as i64;
    Rc::new(vec![
        stmt_params("BEGIN", vec![]),
        stmt_params(
            "SELECT o_id FROM orders WHERE o_w_id = $1 AND o_d_id = $2 AND o_carrier_id = 0 \
             ORDER BY o_id LIMIT 1",
            vec![d(w), d(dd)],
        ),
        Box::new({
            let (w, dd) = (w, dd);
            move |ctx: &ScriptCtx| match ctx.scalar(1).and_then(|v| v.as_i64()) {
                Some(o_id) => (
                    "UPDATE orders SET o_carrier_id = 7 WHERE o_w_id = $1 AND o_d_id = $2 \
                     AND o_id = $3"
                        .to_string(),
                    vec![d(w), d(dd), d(o_id)],
                ),
                None => ("SELECT 1".to_string(), vec![]),
            }
        }),
        stmt_params("COMMIT", vec![]),
    ])
}

/// A [`TxnFactory`] producing the standard TPC-C mix, seeded
/// deterministically per (seed, worker, iteration).
pub fn mix_factory(config: TpccConfig, seed: u64) -> TxnFactory {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let counter = Cell::new(0u64);
    Rc::new(move |worker| {
        let n = counter.get();
        counter.set(n + 1);
        let mut rng = SmallRng::seed_from_u64(
            seed ^ (worker as u64).wrapping_mul(0x9e37_79b9) ^ n.wrapping_mul(0x85eb_ca6b),
        );
        let roll: f64 = rng.gen();
        if roll < 0.45 {
            ("new_order".to_string(), new_order(&config, &mut rng))
        } else if roll < 0.88 {
            ("payment".to_string(), payment(&config, &mut rng))
        } else if roll < 0.92 {
            ("order_status".to_string(), order_status(&config, &mut rng))
        } else if roll < 0.96 {
            ("delivery".to_string(), delivery(&config, &mut rng))
        } else {
            ("stock_level".to_string(), stock_level(&config, &mut rng))
        }
    })
}

/// A factory producing only New-Order transactions (the noisy-neighbor
/// tight loop of §6.6 uses uncontended, CPU-heavy work).
pub fn new_order_only_factory(config: TpccConfig, seed: u64) -> TxnFactory {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let counter = Cell::new(0u64);
    Rc::new(move |worker| {
        let n = counter.get();
        counter.set(n + 1);
        let mut rng = SmallRng::seed_from_u64(
            seed ^ (worker as u64).wrapping_mul(0xc2b2_ae35) ^ n.wrapping_mul(0x27d4_eb2f),
        );
        ("new_order".to_string(), new_order(&config, &mut rng))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn schema_and_load_shape() {
        let cfg = TpccConfig::default();
        assert_eq!(schema().len(), 7);
        let load = load_statements(&cfg);
        // warehouses(2) × (1 + districts(3)×2) + 2 stock + 1 item batch
        assert!(load.len() > cfg.warehouses as usize * 4);
        assert!(load.iter().all(|s| s.starts_with("INSERT INTO")));
    }

    #[test]
    fn new_order_script_structure() {
        let cfg = TpccConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let steps = new_order(&cfg, &mut rng);
        // BEGIN + 5 header statements + 3 per order line + COMMIT.
        assert_eq!(steps.len() as u64, 7 + 3 * cfg.order_lines);
        let ctx = ScriptCtx::default();
        let (sql, _) = steps[0](&ctx);
        assert_eq!(sql, "BEGIN");
        let (sql, _) = steps[steps.len() - 1](&ctx);
        assert_eq!(sql, "COMMIT");
    }

    #[test]
    fn mix_distribution_roughly_tpcc() {
        let factory = mix_factory(TpccConfig::default(), 42);
        let mut counts = std::collections::HashMap::new();
        for i in 0..1000 {
            let (label, _) = factory(i % 7);
            *counts.entry(label).or_insert(0) += 1;
        }
        let no = counts["new_order"] as f64 / 1000.0;
        let pay = counts["payment"] as f64 / 1000.0;
        assert!((no - 0.45).abs() < 0.05, "new_order {no}");
        assert!((pay - 0.43).abs() < 0.05, "payment {pay}");
        assert!(counts.len() == 5, "{counts:?}");
    }

    #[test]
    fn deterministic_scripts_per_seed() {
        let cfg = TpccConfig::default();
        let gen = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let steps = payment(&cfg, &mut rng);
            let ctx = ScriptCtx::default();
            steps.iter().map(|s| s(&ctx).0).collect::<Vec<_>>()
        };
        assert_eq!(gen(5), gen(5));
    }
}
