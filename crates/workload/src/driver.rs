//! The closed-loop workload driver.
//!
//! Workers own one connection each (mirroring client connection pools),
//! run transactions as *scripts* — sequences of statements where each
//! statement may depend on earlier results — retry on serialization
//! conflicts, sleep their think time, and repeat. Latencies and commit
//! counts feed the evaluation tables.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use crdb_sim::Sim;
use crdb_sql::coord::SqlError;
use crdb_sql::exec::QueryOutput;
use crdb_sql::value::Datum;
use crdb_util::time::{dur, SimTime};
use crdb_util::Histogram;

/// Anything that can execute SQL for a worker: the serverless path
/// (proxy + quota gate) or a dedicated engine.
pub trait SqlExecutor {
    /// Executes one statement on behalf of `worker`.
    fn exec(
        &self,
        worker: usize,
        sql: String,
        params: Vec<Datum>,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    );
}

/// Results of earlier steps, available to later step builders.
#[derive(Default)]
pub struct ScriptCtx {
    /// Outputs of completed steps, in order.
    pub outputs: Vec<QueryOutput>,
}

impl ScriptCtx {
    /// First datum of the first row of step `i`'s output.
    pub fn scalar(&self, i: usize) -> Option<&Datum> {
        self.outputs.get(i).and_then(|o| o.rows.first()).and_then(|r| r.first())
    }
}

/// Builds one statement given prior results.
pub type Step = Box<dyn Fn(&ScriptCtx) -> (String, Vec<Datum>)>;

/// Runs a script (typically `BEGIN; …; COMMIT`) to completion.
pub fn run_script(
    executor: Rc<dyn SqlExecutor>,
    worker: usize,
    steps: Rc<Vec<Step>>,
    cb: Box<dyn FnOnce(Result<ScriptCtx, SqlError>)>,
) {
    fn advance(
        executor: Rc<dyn SqlExecutor>,
        worker: usize,
        steps: Rc<Vec<Step>>,
        mut ctx: ScriptCtx,
        idx: usize,
        cb: Box<dyn FnOnce(Result<ScriptCtx, SqlError>)>,
    ) {
        if idx >= steps.len() {
            cb(Ok(ctx));
            return;
        }
        let (sql, params) = steps[idx](&ctx);
        let ex2 = Rc::clone(&executor);
        let steps2 = Rc::clone(&steps);
        executor.exec(
            worker,
            sql,
            params,
            Box::new(move |result| match result {
                Ok(out) => {
                    ctx.outputs.push(out);
                    advance(ex2, worker, steps2, ctx, idx + 1, cb);
                }
                Err(e) => {
                    // Roll back any open transaction, then surface the
                    // error (the driver retries retryable ones).
                    let e = match e {
                        SqlError::Constraint(m) => {
                            SqlError::Constraint(format!("{m} [step {idx}]"))
                        }
                        other => other,
                    };
                    let ex3 = Rc::clone(&ex2);
                    ex3.exec(worker, "ROLLBACK".to_string(), vec![], Box::new(move |_| cb(Err(e))));
                }
            }),
        );
    }
    advance(executor, worker, steps, ScriptCtx::default(), 0, cb);
}

/// Driver configuration.
#[derive(Clone)]
pub struct DriverConfig {
    /// Number of closed-loop workers.
    pub workers: usize,
    /// Think time between transactions (`None` = no wait, §6.6's noisy
    /// configuration).
    pub think_time: Option<Duration>,
    /// Maximum retries per transaction on serialization conflicts.
    pub max_retries: u32,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig { workers: 4, think_time: Some(dur::ms(100)), max_retries: 10 }
    }
}

/// Aggregated transaction statistics.
pub struct TxnStats {
    /// Committed transactions.
    pub committed: RefCell<u64>,
    /// Transactions that exhausted retries (aborted).
    pub aborted: RefCell<u64>,
    /// Retry attempts performed.
    pub retries: RefCell<u64>,
    /// Transaction latency (nanoseconds), successful commits only.
    pub latency: RefCell<Histogram>,
    /// Committed count per transaction label.
    pub by_label: RefCell<std::collections::HashMap<String, u64>>,
    /// The most recent abort error (diagnostics).
    pub last_abort: RefCell<Option<String>>,
}

impl TxnStats {
    /// Empty stats.
    pub fn new() -> Rc<TxnStats> {
        Rc::new(TxnStats {
            committed: RefCell::new(0),
            aborted: RefCell::new(0),
            retries: RefCell::new(0),
            latency: RefCell::new(Histogram::new()),
            by_label: RefCell::new(Default::default()),
            last_abort: RefCell::new(None),
        })
    }

    /// Committed transactions per minute with the given label — tpmC when
    /// the label is `new_order`.
    pub fn per_minute(&self, label: &str, elapsed: Duration) -> f64 {
        let n = self.by_label.borrow().get(label).copied().unwrap_or(0);
        n as f64 / elapsed.as_secs_f64() * 60.0
    }

    /// p50/p99 of commit latency in seconds.
    pub fn latency_quantiles(&self) -> (f64, f64) {
        let h = self.latency.borrow();
        (h.quantile(0.5) as f64 / 1e9, h.quantile(0.99) as f64 / 1e9)
    }
}

/// Produces the next transaction for a worker: a label and its steps.
pub type TxnFactory = Rc<dyn Fn(usize) -> (String, Rc<Vec<Step>>)>;

/// The closed-loop driver.
pub struct Driver {
    sim: Sim,
    executor: Rc<dyn SqlExecutor>,
    config: DriverConfig,
    factory: TxnFactory,
    /// Shared statistics.
    pub stats: Rc<TxnStats>,
    stop_at: RefCell<SimTime>,
}

impl Driver {
    /// Creates a driver.
    pub fn new(
        sim: &Sim,
        executor: Rc<dyn SqlExecutor>,
        config: DriverConfig,
        factory: TxnFactory,
    ) -> Rc<Driver> {
        Rc::new(Driver {
            sim: sim.clone(),
            executor,
            config,
            factory,
            stats: TxnStats::new(),
            stop_at: RefCell::new(SimTime::MAX),
        })
    }

    /// Starts all workers, stopping new transactions at `until`.
    pub fn run_until(self: &Rc<Self>, until: SimTime) {
        *self.stop_at.borrow_mut() = until;
        for w in 0..self.config.workers {
            self.worker_iteration(w, 0);
        }
    }

    fn worker_iteration(self: &Rc<Self>, worker: usize, attempt: u32) {
        if self.sim.now() >= *self.stop_at.borrow() {
            return;
        }
        let (label, steps) = (self.factory)(worker);
        let started = self.sim.now();
        let this = Rc::clone(self);
        run_script(
            Rc::clone(&self.executor),
            worker,
            steps,
            Box::new(move |result| match result {
                Ok(_) => {
                    *this.stats.committed.borrow_mut() += 1;
                    *this.stats.by_label.borrow_mut().entry(label).or_insert(0) += 1;
                    this.stats
                        .latency
                        .borrow_mut()
                        .record_duration(this.sim.now().duration_since(started));
                    this.schedule_next(worker);
                }
                Err(e) if e.is_retryable() && attempt < this.config.max_retries => {
                    *this.stats.retries.borrow_mut() += 1;
                    let this2 = Rc::clone(&this);
                    this.sim.schedule_after(dur::ms(1 << attempt.min(6)), move || {
                        this2.worker_iteration(worker, attempt + 1);
                    });
                }
                Err(e) => {
                    *this.stats.aborted.borrow_mut() += 1;
                    *this.stats.last_abort.borrow_mut() = Some(e.to_string());
                    this.schedule_next(worker);
                }
            }),
        );
    }

    fn schedule_next(self: &Rc<Self>, worker: usize) {
        let this = Rc::clone(self);
        match self.config.think_time {
            Some(think) => {
                // Jitter ±50% so workers decorrelate.
                let jitter = self.sim.with_rng(|r| rand::Rng::gen_range(r, 0.5..1.5));
                let delay = Duration::from_secs_f64(think.as_secs_f64() * jitter);
                self.sim.schedule_after(delay, move || this.worker_iteration(worker, 0));
            }
            None => {
                // No wait: immediately issue the next transaction.
                self.sim.schedule_after(dur::us(1), move || this.worker_iteration(worker, 0));
            }
        }
    }
}

/// Convenience: a literal statement step.
pub fn stmt(sql: &str) -> Step {
    let sql = sql.to_string();
    Box::new(move |_| (sql.clone(), vec![]))
}

/// Convenience: a parameterized statement step with fixed params.
pub fn stmt_params(sql: &str, params: Vec<Datum>) -> Step {
    let sql = sql.to_string();
    Box::new(move |_| (sql.clone(), params.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An executor that records statements and completes after a delay.
    struct FakeExecutor {
        sim: Sim,
        log: RefCell<Vec<String>>,
        fail_nth: Option<usize>,
        calls: RefCell<usize>,
    }

    impl SqlExecutor for FakeExecutor {
        fn exec(
            &self,
            _worker: usize,
            sql: String,
            _params: Vec<Datum>,
            cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
        ) {
            self.log.borrow_mut().push(sql);
            let n = {
                let mut c = self.calls.borrow_mut();
                *c += 1;
                *c
            };
            let fail = self.fail_nth == Some(n);
            self.sim.schedule_after(dur::ms(5), move || {
                if fail {
                    cb(Err(SqlError::Retry("injected".into())));
                } else {
                    cb(Ok(QueryOutput::default()));
                }
            });
        }
    }

    #[test]
    fn script_runs_steps_in_order() {
        let sim = Sim::new(1);
        let ex = Rc::new(FakeExecutor {
            sim: sim.clone(),
            log: RefCell::new(vec![]),
            fail_nth: None,
            calls: RefCell::new(0),
        });
        let steps: Rc<Vec<Step>> = Rc::new(vec![stmt("BEGIN"), stmt("SELECT 1"), stmt("COMMIT")]);
        let done = Rc::new(RefCell::new(false));
        let d = Rc::clone(&done);
        run_script(
            ex.clone(),
            0,
            steps,
            Box::new(move |r| {
                assert!(r.is_ok());
                *d.borrow_mut() = true;
            }),
        );
        sim.run_for(dur::secs(1));
        assert!(*done.borrow());
        assert_eq!(*ex.log.borrow(), vec!["BEGIN", "SELECT 1", "COMMIT"]);
    }

    #[test]
    fn script_error_rolls_back() {
        let sim = Sim::new(1);
        let ex = Rc::new(FakeExecutor {
            sim: sim.clone(),
            log: RefCell::new(vec![]),
            fail_nth: Some(2),
            calls: RefCell::new(0),
        });
        let steps: Rc<Vec<Step>> = Rc::new(vec![stmt("BEGIN"), stmt("SELECT 1"), stmt("COMMIT")]);
        let result = Rc::new(RefCell::new(None));
        let r = Rc::clone(&result);
        run_script(
            ex.clone(),
            0,
            steps,
            Box::new(move |res| {
                *r.borrow_mut() = Some(res.is_err());
            }),
        );
        sim.run_for(dur::secs(1));
        assert_eq!(*result.borrow(), Some(true));
        assert_eq!(ex.log.borrow().last().unwrap(), "ROLLBACK");
    }

    #[test]
    fn driver_retries_conflicts_and_counts() {
        let sim = Sim::new(1);
        let ex = Rc::new(FakeExecutor {
            sim: sim.clone(),
            log: RefCell::new(vec![]),
            fail_nth: Some(1), // first statement of the first txn conflicts
            calls: RefCell::new(0),
        });
        let factory: TxnFactory = Rc::new(|_| {
            ("work".to_string(), Rc::new(vec![stmt("BEGIN"), stmt("COMMIT")]) as Rc<Vec<Step>>)
        });
        let driver = Driver::new(
            &sim,
            ex,
            DriverConfig { workers: 1, think_time: Some(dur::ms(50)), max_retries: 3 },
            factory,
        );
        driver.run_until(SimTime::from_secs_f64(2.0));
        sim.run_until(SimTime::from_secs_f64(3.0));
        assert!(*driver.stats.retries.borrow() >= 1);
        assert!(*driver.stats.committed.borrow() > 5);
        assert_eq!(*driver.stats.aborted.borrow(), 0);
        let (p50, p99) = driver.stats.latency_quantiles();
        assert!(p50 > 0.0 && p99 >= p50);
        assert!(driver.stats.per_minute("work", dur::secs(2)) > 0.0);
    }

    #[test]
    fn no_wait_mode_is_tight_loop() {
        let sim = Sim::new(1);
        let ex = Rc::new(FakeExecutor {
            sim: sim.clone(),
            log: RefCell::new(vec![]),
            fail_nth: None,
            calls: RefCell::new(0),
        });
        let factory: TxnFactory =
            Rc::new(|_| ("x".to_string(), Rc::new(vec![stmt("SELECT 1")]) as Rc<Vec<Step>>));
        let driver = Driver::new(
            &sim,
            ex,
            DriverConfig { workers: 2, think_time: None, max_retries: 0 },
            factory,
        );
        driver.run_until(SimTime::from_secs_f64(1.0));
        sim.run_until(SimTime::from_secs_f64(1.5));
        // 2 workers, 5ms per txn, 1s: ~400 commits.
        let committed = *driver.stats.committed.borrow();
        assert!(committed > 300, "{committed}");
    }
}
