//! YCSB-lite: point read / update mixes over a single key-value table,
//! with a skewed (approximately Zipfian) key distribution. Used among the
//! 23 held-out workloads of the estimated-CPU accuracy experiment
//! (Fig. 11).

use std::cell::Cell;
use std::rc::Rc;

use crdb_sql::value::Datum;
use rand::Rng;

use crate::driver::{stmt_params, Step, TxnFactory};

/// YCSB configuration.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Rows in `usertable`.
    pub records: u64,
    /// Fraction of operations that are reads (rest are updates).
    pub read_fraction: f64,
    /// Skew exponent: 0 = uniform, ~0.99 = classic YCSB Zipf.
    pub skew: f64,
    /// Payload size per field, bytes.
    pub field_len: usize,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig { records: 1000, read_fraction: 0.5, skew: 0.99, field_len: 100 }
    }
}

impl YcsbConfig {
    /// Workload A: 50/50 read/update.
    pub fn workload_a() -> Self {
        YcsbConfig { read_fraction: 0.5, ..Default::default() }
    }

    /// Workload B: 95/5 read/update.
    pub fn workload_b() -> Self {
        YcsbConfig { read_fraction: 0.95, ..Default::default() }
    }

    /// Workload C: read-only.
    pub fn workload_c() -> Self {
        YcsbConfig { read_fraction: 1.0, ..Default::default() }
    }
}

/// DDL for the YCSB table.
pub fn schema() -> Vec<&'static str> {
    vec!["CREATE TABLE usertable (ycsb_key INT PRIMARY KEY, field0 STRING, field1 STRING)"]
}

/// Load statements.
pub fn load_statements(config: &YcsbConfig) -> Vec<String> {
    let payload = "x".repeat(config.field_len);
    (1..=config.records)
        .collect::<Vec<_>>()
        .chunks(100)
        .map(|chunk| {
            let rows: Vec<String> =
                chunk.iter().map(|k| format!("({k}, '{payload}', '{payload}')")).collect();
            format!("INSERT INTO usertable VALUES {}", rows.join(", "))
        })
        .collect()
}

/// Approximate Zipfian sampling: a power-law transform of a uniform
/// variate, hot keys first.
pub fn skewed_key(rng: &mut impl Rng, records: u64, skew: f64) -> i64 {
    if skew <= 0.0 {
        return rng.gen_range(1..=records) as i64;
    }
    let u: f64 = rng.gen_range(0.0f64..1.0);
    // Inverse-CDF of a bounded Pareto-ish distribution.
    let exponent = 1.0 / (1.0 - skew.min(0.999));
    let x = u.powf(exponent);
    1 + (x * (records - 1) as f64) as i64
}

/// A [`TxnFactory`] producing the configured read/update mix.
pub fn factory(config: YcsbConfig, seed: u64) -> TxnFactory {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let counter = Cell::new(0u64);
    let payload = "y".repeat(config.field_len);
    Rc::new(move |worker| {
        let n = counter.get();
        counter.set(n + 1);
        let mut rng = SmallRng::seed_from_u64(
            seed ^ (worker as u64).wrapping_mul(0x1656_67b1) ^ n.wrapping_mul(0x9e37_79b9),
        );
        let key = skewed_key(&mut rng, config.records, config.skew);
        if rng.gen::<f64>() < config.read_fraction {
            let steps: Rc<Vec<Step>> = Rc::new(vec![stmt_params(
                "SELECT field0, field1 FROM usertable WHERE ycsb_key = $1",
                vec![Datum::Int(key)],
            )]);
            ("read".to_string(), steps)
        } else {
            let steps: Rc<Vec<Step>> = Rc::new(vec![stmt_params(
                "UPDATE usertable SET field0 = $2 WHERE ycsb_key = $1",
                vec![Datum::Int(key), Datum::Str(payload.clone())],
            )]);
            ("update".to_string(), steps)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn skew_prefers_low_keys() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut low = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            let k = skewed_key(&mut rng, 1000, 0.99);
            assert!((1..=1000).contains(&k));
            if k <= 100 {
                low += 1;
            }
        }
        // With heavy skew, far more than 10% of accesses hit the first 10%
        // of the keyspace.
        assert!(low as f64 / N as f64 > 0.5, "low-key fraction {}", low as f64 / N as f64);
        // Uniform baseline.
        let mut low = 0;
        for _ in 0..N {
            if skewed_key(&mut rng, 1000, 0.0) <= 100 {
                low += 1;
            }
        }
        let frac = low as f64 / N as f64;
        assert!((frac - 0.1).abs() < 0.03, "uniform fraction {frac}");
    }

    #[test]
    fn mix_fraction_respected() {
        let f = factory(YcsbConfig::workload_b(), 3);
        let mut reads = 0;
        for i in 0..2000 {
            let (label, _) = f(i % 5);
            if label == "read" {
                reads += 1;
            }
        }
        let frac = reads as f64 / 2000.0;
        assert!((frac - 0.95).abs() < 0.03, "{frac}");
    }

    #[test]
    fn load_statements_cover_all_records() {
        let cfg = YcsbConfig { records: 250, ..Default::default() };
        let stmts = load_statements(&cfg);
        assert_eq!(stmts.len(), 3); // 100 + 100 + 50
        assert!(stmts[2].contains("(201,"));
    }
}
