//! Workloads for the evaluation (§6).
//!
//! Self-contained equivalents of the benchmarks the paper runs from the
//! CockroachDB binary, scaled to simulation size but preserving the
//! transaction mixes and access patterns:
//!
//! - [`tpcc`] — TPC-C-lite: the full schema shape (warehouse, district,
//!   customer, item, stock, orders, order_line) with New-Order, Payment
//!   and Order-Status transactions; stock think-time configuration for
//!   tpmC measurement and a "no wait" mode for noisy neighbors (§6.6).
//! - [`tpch`] — TPC-H-lite: a `lineitem`-centric schema with Q1 (full
//!   scan + aggregation) and Q9-style multi-join, the two queries §6.1.2
//!   analyzes.
//! - [`ycsb`] — YCSB-lite point read/update mixes with skewed keys.
//! - [`trace`] — synthetic diurnal/bursty load traces standing in for the
//!   production tenant activity of Figs. 8 and 9.
//! - [`driver`] — the closed-loop driver: per-worker connections, script
//!   (multi-statement transaction) execution with retry-on-conflict, think
//!   times, and latency/throughput statistics.

#![warn(missing_docs)]

pub mod driver;
pub mod executors;
pub mod tpcc;
pub mod tpch;
pub mod trace;
pub mod ycsb;

pub use driver::{Driver, DriverConfig, SqlExecutor, TxnStats};
pub use executors::{DedicatedExec, DedicatedExecutor, ServerlessExec, ServerlessExecutor};

/// `ANALYZE` statements for every table of a schema, derived from its
/// `CREATE TABLE` statements. Run after loading so the cost-based planner
/// starts from fresh statistics instead of defaults.
pub fn analyze_statements(schema: &[&str]) -> Vec<String> {
    schema
        .iter()
        .filter_map(|s| s.strip_prefix("CREATE TABLE "))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(|t| format!("ANALYZE {t}"))
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn analyze_statements_cover_every_table() {
        let stmts = super::analyze_statements(&super::tpcc::schema());
        assert_eq!(stmts.len(), 7, "one ANALYZE per TPC-C table");
        assert!(stmts.contains(&"ANALYZE warehouse".to_string()));
        assert!(stmts.contains(&"ANALYZE order_line".to_string()));
        // CREATE INDEX statements in a schema are skipped.
        let with_index = ["CREATE TABLE t (a INT PRIMARY KEY)", "CREATE INDEX i ON t (a)"];
        assert_eq!(super::analyze_statements(&with_index), vec!["ANALYZE t".to_string()]);
    }
}
