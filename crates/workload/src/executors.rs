//! Executor adapters: run workloads against a serverless or dedicated
//! deployment.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use crdb_core::{DedicatedCluster, ServerlessCluster};
use crdb_serverless::proxy::Connection;
use crdb_sql::coord::SqlError;
use crdb_sql::exec::QueryOutput;
use crdb_sql::value::Datum;
use crdb_util::time::dur;
use crdb_util::TenantId;

use crate::driver::SqlExecutor;

/// Runs statements through the serverless path: proxy routing, quota
/// gates, per-worker connections (like client connection pools).
pub struct ServerlessExecutor {
    cluster: Rc<ServerlessCluster>,
    tenant: TenantId,
    conns: RefCell<BTreeMap<usize, Rc<Connection>>>,
    connecting: RefCell<BTreeMap<usize, Vec<ConnWaiter>>>,
}

/// A statement waiting for its worker's connection to come up.
type ConnWaiter = Box<dyn FnOnce(Rc<Connection>)>;

impl ServerlessExecutor {
    /// Creates an executor for one tenant.
    pub fn new(cluster: Rc<ServerlessCluster>, tenant: TenantId) -> Rc<ServerlessExecutor> {
        Rc::new(ServerlessExecutor {
            cluster,
            tenant,
            conns: RefCell::new(BTreeMap::new()),
            connecting: RefCell::new(BTreeMap::new()),
        })
    }

    fn with_conn(self: &Rc<Self>, worker: usize, cb: Box<dyn FnOnce(Rc<Connection>)>) {
        // Bind before branching: `cb` may synchronously issue queries that
        // re-enter `with_conn` and borrow the conn map again.
        let existing = self.conns.borrow().get(&worker).map(Rc::clone);
        if let Some(conn) = existing {
            cb(conn);
            return;
        }
        let mut connecting = self.connecting.borrow_mut();
        let waiters = connecting.entry(worker).or_default();
        waiters.push(cb);
        if waiters.len() > 1 {
            return;
        }
        drop(connecting);
        let this = Rc::clone(self);
        let ip = format!("10.0.{}.{}", worker / 256, worker % 256);
        self.cluster.connect(self.tenant, &ip, "workload", move |r| {
            let conn = r.expect("workload connect");
            this.conns.borrow_mut().insert(worker, Rc::clone(&conn));
            let waiters = this.connecting.borrow_mut().remove(&worker).unwrap_or_default();
            for w in waiters {
                w(Rc::clone(&conn));
            }
        });
    }

    /// Closes all worker connections.
    pub fn close_all(&self) {
        let conns = std::mem::take(&mut *self.conns.borrow_mut());
        for (_, conn) in conns {
            self.cluster.close(&conn);
        }
    }

    /// Number of open worker connections.
    pub fn open_connections(&self) -> usize {
        self.conns.borrow().len()
    }
}

impl SqlExecutor for Rc<ServerlessExecutor> {
    fn exec(
        &self,
        worker: usize,
        sql: String,
        params: Vec<Datum>,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        let cluster = Rc::clone(&self.cluster);
        self.with_conn(
            worker,
            Box::new(move |conn| {
                cluster.execute(&conn, &sql, params, cb);
            }),
        );
    }
}

/// Wrapper so `Rc<ServerlessExecutor>` itself implements the trait object
/// the driver wants.
pub struct ServerlessExec(pub Rc<ServerlessExecutor>);

impl SqlExecutor for ServerlessExec {
    fn exec(
        &self,
        worker: usize,
        sql: String,
        params: Vec<Datum>,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        self.0.exec(worker, sql, params, cb)
    }
}

/// Runs statements on a dedicated cluster: each worker pins a session on
/// one fused engine, round-robin.
pub struct DedicatedExecutor {
    cluster: Rc<DedicatedCluster>,
    sessions: RefCell<HashMap<usize, (usize, u64)>>,
}

impl DedicatedExecutor {
    /// Creates the executor.
    pub fn new(cluster: Rc<DedicatedCluster>) -> Rc<DedicatedExecutor> {
        Rc::new(DedicatedExecutor { cluster, sessions: RefCell::new(HashMap::new()) })
    }

    fn session_for(&self, worker: usize) -> (usize, u64) {
        let mut sessions = self.sessions.borrow_mut();
        *sessions.entry(worker).or_insert_with(|| {
            let idx = worker % self.cluster.sql_nodes.len();
            let session = self.cluster.sql_nodes[idx].open_session("workload").expect("session");
            (idx, session)
        })
    }
}

impl SqlExecutor for Rc<DedicatedExecutor> {
    fn exec(
        &self,
        worker: usize,
        sql: String,
        params: Vec<Datum>,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        let (idx, session) = self.session_for(worker);
        let node = Rc::clone(&self.cluster.sql_nodes[idx]);
        node.execute(session, &sql, params, cb);
    }
}

/// Wrapper trait object for the dedicated executor.
pub struct DedicatedExec(pub Rc<DedicatedExecutor>);

impl SqlExecutor for DedicatedExec {
    fn exec(
        &self,
        worker: usize,
        sql: String,
        params: Vec<Datum>,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        self.0.exec(worker, sql, params, cb)
    }
}

/// Runs a list of statements sequentially through an executor (worker 0),
/// driving the simulation until each completes. Used for schema setup and
/// data loading.
pub fn run_setup(sim: &crdb_sim::Sim, executor: &Rc<dyn SqlExecutor>, statements: &[String]) {
    for stmt in statements {
        let done = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        executor.exec(
            0,
            stmt.clone(),
            vec![],
            Box::new(move |r| {
                *d.borrow_mut() = Some(r);
            }),
        );
        // Generous bound: loads can be large.
        for _ in 0..120 {
            if done.borrow().is_some() {
                break;
            }
            sim.run_for(dur::secs(1));
        }
        let result = done.borrow_mut().take();
        match result {
            Some(Ok(_)) => {}
            Some(Err(e)) => panic!("setup statement failed: {stmt}: {e}"),
            None => panic!("setup statement did not complete: {stmt}"),
        }
    }
}
