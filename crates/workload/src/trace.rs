//! Synthetic tenant activity traces.
//!
//! Figures 8 and 9 use production tenant data we cannot access; this
//! module generates the synthetic equivalent described in DESIGN.md §1: a
//! multi-hour load profile with a diurnal baseline, ramps and bursts. The
//! trace controls a driver's *offered load* (target concurrent workers)
//! over time.

use std::time::Duration;

use crdb_util::time::SimTime;

/// One segment of a load trace.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Segment duration.
    pub duration: Duration,
    /// Load multiplier at the start of the segment.
    pub start_level: f64,
    /// Load multiplier at the end (linear interpolation inside).
    pub end_level: f64,
}

/// A piecewise-linear load profile.
#[derive(Debug, Clone, Default)]
pub struct LoadTrace {
    segments: Vec<Segment>,
}

impl LoadTrace {
    /// An empty trace (level 0 everywhere).
    pub fn new() -> Self {
        LoadTrace::default()
    }

    /// Appends a constant segment.
    pub fn hold(mut self, duration: Duration, level: f64) -> Self {
        self.segments.push(Segment { duration, start_level: level, end_level: level });
        self
    }

    /// Appends a linear ramp.
    pub fn ramp(mut self, duration: Duration, from: f64, to: f64) -> Self {
        self.segments.push(Segment { duration, start_level: from, end_level: to });
        self
    }

    /// The load multiplier at `t` (0 beyond the end).
    pub fn level_at(&self, t: SimTime) -> f64 {
        let mut offset = Duration::ZERO;
        let t = t.duration_since(SimTime::ZERO);
        for seg in &self.segments {
            if t < offset + seg.duration {
                let frac = (t - offset).as_secs_f64() / seg.duration.as_secs_f64();
                return seg.start_level + (seg.end_level - seg.start_level) * frac;
            }
            offset += seg.duration;
        }
        0.0
    }

    /// Total trace duration.
    pub fn duration(&self) -> Duration {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Returns the trace with every segment duration divided by `factor`
    /// (time-compressed for faster simulation).
    pub fn compressed(mut self, factor: f64) -> LoadTrace {
        for seg in &mut self.segments {
            seg.duration = Duration::from_secs_f64(seg.duration.as_secs_f64() / factor);
        }
        self
    }

    /// The variable-activity profile used for the Fig. 8 reproduction:
    /// a few hours with a quiet start, a morning ramp, a midday plateau
    /// with a burst, wind-down, and a late spike.
    pub fn fig8_profile() -> LoadTrace {
        let m = |n: u64| Duration::from_secs(n * 60);
        LoadTrace::new()
            .hold(m(20), 0.15)
            .ramp(m(20), 0.15, 0.8)
            .hold(m(25), 0.8)
            .ramp(m(5), 0.8, 1.6) // burst
            .hold(m(10), 1.6)
            .ramp(m(10), 1.6, 0.6)
            .hold(m(30), 0.6)
            .ramp(m(10), 0.6, 1.2) // late spike
            .hold(m(10), 1.2)
            .ramp(m(20), 1.2, 0.1)
            .hold(m(30), 0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdb_util::time::dur;

    fn t(secs: u64) -> SimTime {
        SimTime::from_nanos(secs * 1_000_000_000)
    }

    #[test]
    fn piecewise_interpolation() {
        let trace = LoadTrace::new()
            .hold(dur::secs(10), 1.0)
            .ramp(dur::secs(10), 1.0, 3.0)
            .hold(dur::secs(10), 3.0);
        assert_eq!(trace.level_at(t(5)), 1.0);
        assert_eq!(trace.level_at(t(15)), 2.0);
        assert_eq!(trace.level_at(t(25)), 3.0);
        assert_eq!(trace.level_at(t(100)), 0.0, "beyond the end");
        assert_eq!(trace.duration(), dur::secs(30));
    }

    #[test]
    fn fig8_profile_has_burst_and_quiet_periods() {
        let trace = LoadTrace::fig8_profile();
        let d = trace.duration();
        assert!(d >= Duration::from_secs(3 * 3600 - 600), "multi-hour: {d:?}");
        // Quiet start, busy middle, quiet end.
        assert!(trace.level_at(t(300)) < 0.3);
        assert!(trace.level_at(t(75 * 60)) > 1.3, "burst visible");
        assert!(trace.level_at(t(d.as_secs() - 300)) < 0.3);
    }
}
