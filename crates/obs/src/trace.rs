//! Deterministic per-request trace spans.
//!
//! A [`Trace`] owns a flat slab of span records; [`Span`] handles are cheap
//! clones pointing into it. Spans read their timestamps from the clock the
//! trace was created with — in experiments that is the simulator's
//! `ManualClock`, so start/end stamps are sim-time and a same-seed rerun
//! reproduces the tree exactly.
//!
//! # Propagation rules
//!
//! The simulator is single-threaded and callback-based, so context flows
//! through an ambient, thread-local *current-span stack* rather than through
//! function signatures:
//!
//! 1. A component that does work on behalf of the current request calls
//!    [`child`] (or [`current`]) — both return a no-op [`MaybeSpan`] when no
//!    trace is active, so instrumentation costs nothing on untraced paths.
//! 2. Before scheduling a callback (a sim event, a CPU grant, a network
//!    hop), capture the context: `let span = trace::current();` — the value
//!    is moved into the closure.
//! 3. Inside the callback, re-install it for the duration of the callback:
//!    `let _g = span.enter();`. Guards are strictly LIFO; hold them in a
//!    local and let scope end pop them.
//! 4. End spans explicitly ([`MaybeSpan::end`]) when the logical operation
//!    completes, which is usually inside a later callback than the one that
//!    created them. Ending twice is a no-op (the first end wins).
//!
//! Work whose duration is *modeled* as a single scheduled delay (e.g. the
//! warm-pool start sequence, which samples each phase and sleeps the sum)
//! can record the interior decomposition with [`MaybeSpan::child_at`] /
//! [`MaybeSpan::end_at`], using the same sampled boundaries the model slept
//! on. The resulting tree still sums to the measured end-to-end latency.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use crdb_util::{Clock, SimTime};

use crate::json_escape;

#[derive(Debug)]
struct SpanRecord {
    name: String,
    parent: Option<usize>,
    start: SimTime,
    end: Option<SimTime>,
    tags: Vec<(String, String)>,
}

struct TraceInner {
    clock: Arc<dyn Clock>,
    spans: RefCell<Vec<SpanRecord>>,
}

/// A single trace: one root span plus every descendant recorded under it.
pub struct Trace {
    inner: Rc<TraceInner>,
}

impl Trace {
    /// Starts a new trace whose root span begins now (per `clock`). Returns
    /// the trace handle and the root span.
    pub fn start(name: &str, clock: Arc<dyn Clock>) -> (Trace, Span) {
        let now = clock.now();
        let inner = Rc::new(TraceInner {
            clock,
            spans: RefCell::new(vec![SpanRecord {
                name: name.to_string(),
                parent: None,
                start: now,
                end: None,
                tags: Vec::new(),
            }]),
        });
        let root = Span { inner: inner.clone(), idx: 0 };
        (Trace { inner }, root)
    }

    /// The root span.
    pub fn root(&self) -> Span {
        Span { inner: self.inner.clone(), idx: 0 }
    }

    /// A read-only snapshot of every span, in creation order.
    pub fn spans(&self) -> Vec<SpanView> {
        self.inner
            .spans
            .borrow()
            .iter()
            .map(|r| SpanView {
                name: r.name.clone(),
                parent: r.parent,
                start: r.start,
                end: r.end,
                tags: r.tags.clone(),
            })
            .collect()
    }

    /// The first span (in creation order) with the given name, if any.
    pub fn find(&self, name: &str) -> Option<SpanView> {
        self.spans().into_iter().find(|s| s.name == name)
    }

    /// `parent/child/grandchild` slash-paths for every span, in creation
    /// order. Convenient for golden tests over the tree *shape*.
    pub fn paths(&self) -> Vec<String> {
        let spans = self.inner.spans.borrow();
        let mut paths: Vec<String> = Vec::with_capacity(spans.len());
        for r in spans.iter() {
            let p = match r.parent {
                None => r.name.clone(),
                Some(p) => format!("{}/{}", paths[p], r.name),
            };
            paths.push(p);
        }
        paths
    }

    /// Serializes the span tree as deterministic JSON: children nested under
    /// parents in creation order, tags sorted by key, times in nanoseconds
    /// of sim-time (`end_ns` is `null` for spans still open).
    pub fn to_json(&self) -> String {
        let spans = self.inner.spans.borrow();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        for (i, r) in spans.iter().enumerate() {
            if let Some(p) = r.parent {
                children[p].push(i);
            }
        }
        let mut out = String::new();
        write_span_json(&spans, &children, 0, &mut out);
        out
    }

    /// Renders an indented human-readable tree with durations.
    pub fn to_text(&self) -> String {
        let spans = self.inner.spans.borrow();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        for (i, r) in spans.iter().enumerate() {
            if let Some(p) = r.parent {
                children[p].push(i);
            }
        }
        let mut out = String::new();
        write_span_text(&spans, &children, 0, 0, &mut out);
        out
    }
}

fn write_span_json(spans: &[SpanRecord], children: &[Vec<usize>], idx: usize, out: &mut String) {
    let r = &spans[idx];
    out.push_str("{\"name\":\"");
    json_escape(&r.name, out);
    out.push_str(&format!("\",\"start_ns\":{}", r.start.as_nanos()));
    match r.end {
        Some(e) => out.push_str(&format!(",\"end_ns\":{}", e.as_nanos())),
        None => out.push_str(",\"end_ns\":null"),
    }
    if !r.tags.is_empty() {
        let mut tags = r.tags.clone();
        // Sorted, last-write-wins: retagging a key replaces the old value.
        tags.sort_by(|a, b| a.0.cmp(&b.0));
        tags.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                std::mem::swap(&mut earlier.1, &mut later.1);
                true
            } else {
                false
            }
        });
        out.push_str(",\"tags\":{");
        for (i, (k, v)) in tags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(k, out);
            out.push_str("\":\"");
            json_escape(v, out);
            out.push('"');
        }
        out.push('}');
    }
    if !children[idx].is_empty() {
        out.push_str(",\"children\":[");
        for (i, &c) in children[idx].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_span_json(spans, children, c, out);
        }
        out.push(']');
    }
    out.push('}');
}

fn write_span_text(
    spans: &[SpanRecord],
    children: &[Vec<usize>],
    idx: usize,
    depth: usize,
    out: &mut String,
) {
    let r = &spans[idx];
    for _ in 0..depth {
        out.push_str("  ");
    }
    let dur = match r.end {
        Some(e) => format!("{:.3}ms", e.duration_since(r.start).as_secs_f64() * 1e3),
        None => "open".to_string(),
    };
    out.push_str(&format!("{} [{} @{:.3}ms]", r.name, dur, r.start.as_secs_f64() * 1e3));
    if !r.tags.is_empty() {
        let tags: Vec<String> = r.tags.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&format!(" {{{}}}", tags.join(", ")));
    }
    out.push('\n');
    for &c in &children[idx] {
        write_span_text(spans, children, c, depth + 1, out);
    }
}

/// A read-only copy of one span's record.
#[derive(Debug, Clone)]
pub struct SpanView {
    /// Span name, e.g. `"pool.acquire"`.
    pub name: String,
    /// Index of the parent span in creation order, `None` for the root.
    pub parent: Option<usize>,
    /// Sim-time the span began.
    pub start: SimTime,
    /// Sim-time the span ended, or `None` if still open.
    pub end: Option<SimTime>,
    /// Free-form key/value tags in insertion order.
    pub tags: Vec<(String, String)>,
}

impl SpanView {
    /// `end - start`, or `Duration::ZERO` while the span is open.
    pub fn duration(&self) -> Duration {
        match self.end {
            Some(e) => e.duration_since(self.start),
            None => Duration::ZERO,
        }
    }

    /// The value of tag `key`, if present (last write wins).
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A live handle to one span within a [`Trace`]. Cheap to clone; clones
/// refer to the same record.
#[derive(Clone)]
pub struct Span {
    inner: Rc<TraceInner>,
    idx: usize,
}

impl Span {
    fn now(&self) -> SimTime {
        self.inner.clock.now()
    }

    /// Opens a child span starting now.
    pub fn child(&self, name: &str) -> Span {
        self.child_at(name, self.now())
    }

    /// Opens a child span with an explicit start time (for decomposing
    /// modeled delays; see module docs).
    pub fn child_at(&self, name: &str, start: SimTime) -> Span {
        let mut spans = self.inner.spans.borrow_mut();
        let idx = spans.len();
        spans.push(SpanRecord {
            name: name.to_string(),
            parent: Some(self.idx),
            start,
            end: None,
            tags: Vec::new(),
        });
        Span { inner: self.inner.clone(), idx }
    }

    /// Attaches (or replaces) a key/value tag.
    pub fn tag(&self, key: &str, value: impl std::fmt::Display) {
        let mut spans = self.inner.spans.borrow_mut();
        spans[self.idx].tags.push((key.to_string(), value.to_string()));
    }

    /// Ends the span now. Idempotent: the first end wins.
    pub fn end(&self) {
        let t = self.now();
        self.end_at(t);
    }

    /// Ends the span at an explicit time. Idempotent: the first end wins.
    pub fn end_at(&self, t: SimTime) {
        let mut spans = self.inner.spans.borrow_mut();
        let r = &mut spans[self.idx];
        if r.end.is_none() {
            r.end = Some(t);
        }
    }

    /// Pushes this span onto the ambient current-span stack. The returned
    /// guard pops it on drop; guards must be dropped in LIFO order.
    pub fn enter(&self) -> ScopeGuard {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        ScopeGuard { _not_send: std::marker::PhantomData }
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Span>> = const { RefCell::new(Vec::new()) };
}

/// Pops the ambient stack on drop. See [`Span::enter`].
pub struct ScopeGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// The ambient current span, or an inert handle if no trace is active.
pub fn current() -> MaybeSpan {
    MaybeSpan(CURRENT.with(|c| c.borrow().last().cloned()))
}

/// Opens a child of the ambient current span, or returns an inert handle if
/// no trace is active.
pub fn child(name: &str) -> MaybeSpan {
    current().child(name)
}

/// A span handle that may be inert. Every operation is a no-op when no
/// trace was active at capture time, so instrumented code paths need no
/// `if tracing` branches.
#[derive(Clone, Default)]
pub struct MaybeSpan(Option<Span>);

impl MaybeSpan {
    /// An inert handle.
    pub fn none() -> Self {
        MaybeSpan(None)
    }

    /// Whether this handle refers to a live span.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a child span starting now (inert if this handle is inert).
    pub fn child(&self, name: &str) -> MaybeSpan {
        MaybeSpan(self.0.as_ref().map(|s| s.child(name)))
    }

    /// Opens a child span with an explicit start time.
    pub fn child_at(&self, name: &str, start: SimTime) -> MaybeSpan {
        MaybeSpan(self.0.as_ref().map(|s| s.child_at(name, start)))
    }

    /// Attaches a tag.
    pub fn tag(&self, key: &str, value: impl std::fmt::Display) {
        if let Some(s) = &self.0 {
            s.tag(key, value);
        }
    }

    /// Ends the span now (first end wins).
    pub fn end(&self) {
        if let Some(s) = &self.0 {
            s.end();
        }
    }

    /// Ends the span at an explicit time (first end wins).
    pub fn end_at(&self, t: SimTime) {
        if let Some(s) = &self.0 {
            s.end_at(t);
        }
    }

    /// Re-installs this span as the ambient current span for the guard's
    /// lifetime. Returns `None` (and installs nothing) when inert.
    pub fn enter(&self) -> Option<ScopeGuard> {
        self.0.as_ref().map(|s| s.enter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdb_util::clock::ManualClock;
    use crdb_util::time::dur;

    #[test]
    fn span_tree_records_times_and_tags() {
        let clock = ManualClock::new();
        let (trace, root) = Trace::start("req", clock.clone());
        clock.advance(dur::ms(1));
        let a = root.child("a");
        a.tag("tenant", 7);
        clock.advance(dur::ms(2));
        let b = a.child("b");
        clock.advance(dur::ms(3));
        b.end();
        a.end();
        clock.advance(dur::ms(4));
        root.end();

        let spans = trace.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "req");
        assert_eq!(spans[1].tag("tenant"), Some("7"));
        assert_eq!(spans[1].duration(), dur::ms(5));
        assert_eq!(spans[2].parent, Some(1));
        assert_eq!(trace.paths(), vec!["req", "req/a", "req/a/b"]);
        assert_eq!(spans[0].duration(), dur::ms(10));
    }

    #[test]
    fn ambient_stack_propagates_and_unwinds() {
        let clock = ManualClock::new();
        let (trace, root) = Trace::start("req", clock.clone());
        assert!(!current().is_active());
        {
            let _g = root.enter();
            let c = child("inner");
            assert!(c.is_active());
            // Capture-and-reenter, as a scheduled callback would.
            let captured = current();
            {
                let _g2 = captured.enter();
                let d = child("deeper");
                assert!(d.is_active());
                d.end();
            }
            c.end();
        }
        assert!(!current().is_active());
        assert!(!child("orphan").is_active());
        assert_eq!(trace.paths(), vec!["req", "req/inner", "req/deeper"]);
    }

    #[test]
    fn end_is_idempotent_first_wins() {
        let clock = ManualClock::new();
        let (trace, root) = Trace::start("req", clock.clone());
        clock.advance(dur::ms(5));
        root.end();
        clock.advance(dur::ms(5));
        root.end();
        assert_eq!(trace.spans()[0].duration(), dur::ms(5));
    }

    #[test]
    fn json_is_deterministic_and_nested() {
        let clock = ManualClock::new();
        let (trace, root) = Trace::start("req", clock.clone());
        let a = root.child("a");
        a.tag("z", "2");
        a.tag("k", "v\"q");
        clock.advance(dur::ms(1));
        a.end();
        root.end();
        let j = trace.to_json();
        let expected = concat!(
            r#"{"name":"req","start_ns":0,"end_ns":1000000,"#,
            r#""children":[{"name":"a","start_ns":0,"end_ns":1000000,"#,
            r#""tags":{"k":"v\"q","z":"2"}}]}"#,
        );
        assert_eq!(j, expected);
        // Same construction under a fresh clock -> same bytes.
        let clock2 = ManualClock::new();
        let (trace2, root2) = Trace::start("req", clock2.clone());
        let a2 = root2.child("a");
        a2.tag("z", "2");
        a2.tag("k", "v\"q");
        clock2.advance(dur::ms(1));
        a2.end();
        root2.end();
        assert_eq!(trace2.to_json(), j);
    }

    #[test]
    fn synthetic_decomposition_sums_to_parent() {
        let clock = ManualClock::new();
        let (trace, root) = Trace::start("cold", clock.clone());
        let t0 = clock.now();
        let p1 = root.child_at("phase1", t0);
        p1.end_at(t0 + dur::ms(3));
        let p2 = root.child_at("phase2", t0 + dur::ms(3));
        p2.end_at(t0 + dur::ms(10));
        clock.advance(dur::ms(10));
        root.end();
        let spans = trace.spans();
        let total: Duration = spans[1..].iter().map(|s| s.duration()).sum();
        assert_eq!(total, spans[0].duration());
    }
}
