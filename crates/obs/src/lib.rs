//! Observability: deterministic trace spans and a unified metrics registry.
//!
//! The paper's control loops — scale-from-zero (§4.2), the autoscaler
//! (§4.2.3), and distributed eCPU throttling (§5.2) — are only trustworthy
//! when their inputs are observable end to end. This crate provides the two
//! instruments the rest of the workspace uses to make that so:
//!
//! - [`trace`]: per-request span trees. A [`trace::Span`] carries sim-time
//!   start/end stamps and free-form tags (tenant, session, txn ids) and is
//!   propagated across the callback-style async boundaries of the simulator
//!   via an ambient, thread-local current-span stack. Because the simulator
//!   is single-threaded and seeded, a trace of the same request under the
//!   same seed is identical byte for byte.
//! - [`metrics`]: a unified [`metrics::Registry`] of typed counters, gauges
//!   and fixed-bucket histograms, plus pull-based *sources* so components
//!   that keep their own counters (storage engine metrics, proxy/autoscaler
//!   counters, token-bucket grant totals, admission queue depths) can be
//!   sampled at snapshot time without rewriting them. `snapshot_json()` is
//!   byte-identical across same-seed runs.
//!
//! Everything here is deterministic: no wall clocks, no random ids, no
//! hash-order iteration reaches the serialized output.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::Registry;
pub use trace::{MaybeSpan, Span, Trace};

/// Escapes `s` for embedding inside a JSON string literal.
pub(crate) fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` deterministically for JSON output. Finite values use
/// Rust's shortest round-trip representation (stable for identical inputs);
/// non-finite values degrade to `null` to keep the output valid JSON.
pub(crate) fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}
