//! A unified metrics registry.
//!
//! # Naming scheme
//!
//! Metric names are dotted paths, most-general component first:
//! `component[.entity].metric`, e.g. `proxy.cold_starts`,
//! `kv.node.3.storage.flush_bytes`, `tenant.7.bucket.tokens_granted`.
//! Entities (node ids, tenant ids) are embedded in the name so the snapshot
//! stays a flat, sorted map.
//!
//! # Determinism contract
//!
//! [`Registry::snapshot_json`] is byte-identical across two runs of the same
//! seeded simulation. This holds because: names are collected into a
//! `BTreeMap` (no hash-order reaches the output); counter values are exact
//! integers; gauge/histogram values are `f64`s produced by the deterministic
//! simulation and formatted with Rust's shortest round-trip representation;
//! and registered *sources* are re-sampled at snapshot time, so registration
//! order does not matter. The chaos soak asserts this byte-for-byte.
//!
//! # Instruments vs. sources
//!
//! New code takes typed handles ([`Counter`], [`Gauge`], [`Histo`]) from the
//! registry and updates them directly. Components that already keep their
//! own counters (the storage engine's `StorageMetrics`, proxy/autoscaler
//! cells, bucket grant totals, admission queue depths) are wired in as
//! pull-based sources: a closure registered once at assembly time that
//! reports current values into a [`Sampler`] whenever a snapshot is taken.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use crdb_util::Histogram;

use crate::{json_escape, json_f64};

/// A monotonically increasing integer counter.
#[derive(Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A point-in-time floating value.
#[derive(Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// A fixed-bucket (log-bucketed, ~1.6% relative error) histogram handle.
#[derive(Clone, Default)]
pub struct Histo(Rc<RefCell<Histogram>>);

impl Histo {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.0.borrow_mut().record_duration(d);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.borrow().count()
    }

    /// The value at quantile `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        self.0.borrow().quantile(q)
    }
}

/// Collects values reported by a pull-based source during a snapshot.
#[derive(Default)]
pub struct Sampler {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, HistSummary>,
}

#[derive(Clone)]
struct HistSummary {
    count: u64,
    min: u64,
    max: u64,
    mean: f64,
    p50: u64,
    p99: u64,
}

impl From<&Histogram> for HistSummary {
    fn from(h: &Histogram) -> Self {
        HistSummary {
            count: h.count(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.quantile(0.5),
            p99: h.quantile(0.99),
        }
    }
}

impl Sampler {
    /// Reports a counter value. Names must be unique within one snapshot.
    pub fn counter(&mut self, name: &str, v: u64) {
        let prev = self.counters.insert(name.to_string(), v);
        assert!(prev.is_none(), "duplicate metric name {name:?}");
    }

    /// Reports a gauge value. Names must be unique within one snapshot.
    pub fn gauge(&mut self, name: &str, v: f64) {
        let prev = self.gauges.insert(name.to_string(), v);
        assert!(prev.is_none(), "duplicate metric name {name:?}");
    }

    /// Reports a histogram. Names must be unique within one snapshot.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        let prev = self.hists.insert(name.to_string(), HistSummary::from(h));
        assert!(prev.is_none(), "duplicate metric name {name:?}");
    }
}

type Source = Box<dyn Fn(&mut Sampler)>;

#[derive(Default)]
struct RegistryInner {
    counters: RefCell<BTreeMap<String, Counter>>,
    gauges: RefCell<BTreeMap<String, Gauge>>,
    hists: RefCell<BTreeMap<String, Histo>>,
    sources: RefCell<Vec<Source>>,
}

/// The unified registry. Cheap to clone; clones share state.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Rc<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter with this name, creating it at 0 if new.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.counters.borrow_mut().entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge with this name, creating it at 0 if new.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.gauges.borrow_mut().entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram with this name, creating it empty if new.
    pub fn histogram(&self, name: &str) -> Histo {
        self.inner.hists.borrow_mut().entry(name.to_string()).or_default().clone()
    }

    /// Registers a pull-based source, sampled on every snapshot. A source
    /// must report the same metric names on every call (values may change)
    /// and must not collide with typed instruments or other sources.
    pub fn register_source(&self, f: impl Fn(&mut Sampler) + 'static) {
        self.inner.sources.borrow_mut().push(Box::new(f));
    }

    /// Serializes every instrument and source to deterministic JSON, sorted
    /// by metric name. Byte-identical across same-seed runs.
    pub fn snapshot_json(&self) -> String {
        let mut s = Sampler::default();
        for (name, c) in self.inner.counters.borrow().iter() {
            s.counter(name, c.get());
        }
        for (name, g) in self.inner.gauges.borrow().iter() {
            s.gauge(name, g.get());
        }
        for (name, h) in self.inner.hists.borrow().iter() {
            s.histogram(name, &h.0.borrow());
        }
        for src in self.inner.sources.borrow().iter() {
            src(&mut s);
        }

        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in s.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(k, &mut out);
            out.push_str(&format!("\":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in s.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(k, &mut out);
            out.push_str("\":");
            json_f64(*v, &mut out);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in s.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(k, &mut out);
            out.push_str(&format!(
                "\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":",
                h.count, h.min, h.max
            ));
            json_f64(h.mean, &mut out);
            out.push_str(&format!(",\"p50\":{},\"p99\":{}}}", h.p50, h.p99));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_update_and_snapshot_sorted() {
        let r = Registry::new();
        let c = r.counter("b.count");
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        let g = r.gauge("a.gauge");
        g.set(1.5);
        let h = r.histogram("c.lat");
        h.record(100);
        h.record(200);
        let j = r.snapshot_json();
        assert_eq!(
            j,
            concat!(
                r#"{"counters":{"b.count":3},"gauges":{"a.gauge":1.5},"#,
                r#""histograms":{"c.lat":{"count":2,"min":100,"max":200,"#,
                r#""mean":150.0,"p50":101,"p99":200}}}"#,
            )
        );
    }

    #[test]
    fn same_name_returns_same_instrument() {
        let r = Registry::new();
        r.counter("x").inc();
        r.counter("x").inc();
        assert_eq!(r.counter("x").get(), 2);
    }

    #[test]
    fn sources_are_resampled_each_snapshot() {
        let r = Registry::new();
        let v = Rc::new(Cell::new(7u64));
        let v2 = v.clone();
        r.register_source(move |s| s.counter("src.value", v2.get()));
        assert!(r.snapshot_json().contains("\"src.value\":7"));
        v.set(9);
        assert!(r.snapshot_json().contains("\"src.value\":9"));
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_panic() {
        let r = Registry::new();
        r.counter("dup").inc();
        r.register_source(|s| s.counter("dup", 1));
        let _ = r.snapshot_json();
    }

    #[test]
    fn snapshot_is_reproducible() {
        let build = || {
            let r = Registry::new();
            r.counter("z.n").add(5);
            r.gauge("m.g").set(0.125);
            r.register_source(|s| s.gauge("a.src", 2.0));
            r.snapshot_json()
        };
        assert_eq!(build(), build());
    }
}
