//! The autoscaler's metrics pipeline (§4.3.2).
//!
//! "Our initial implementation used Prometheus to scrape and store these
//! metrics. However, this created a pipeline with too much latency,
//! including a 10 second metrics generation interval, a 10 second metrics
//! scrape interval, and a 10 second Prometheus query interval. These
//! overlapping polling intervals resulted in scaling reaction times of
//! 20-30 seconds. Our solution: update the autoscaler to directly scrape
//! just-in-time CPU metrics from the SQL nodes at a 3 second interval."
//!
//! [`MetricsPipeline`] samples per-tenant SQL CPU usage on the generation
//! interval and exposes it to readers only after the stacked polling
//! stages would have propagated it.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use crdb_sim::Sim;
use crdb_util::time::{dur, SimTime};
use crdb_util::TenantId;

use crate::registry::Registry;

/// Pipeline timing configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// How often nodes generate a metrics sample.
    pub generation_interval: Duration,
    /// Additional propagation delay before a generated sample is visible
    /// to the autoscaler (scrape + query stages).
    pub propagation_delay: Duration,
    /// Samples older than this (relative to the current time) are evicted.
    /// Readers querying windows up to `horizon - propagation_delay` are
    /// guaranteed never to observe a gap from eviction.
    pub horizon: Duration,
}

impl PipelineConfig {
    /// The original Prometheus pipeline: 10 s generation, and samples
    /// visible only after the scrape (10 s) and query (10 s) stages.
    pub fn prometheus() -> Self {
        PipelineConfig {
            generation_interval: dur::secs(10),
            propagation_delay: dur::secs(20),
            horizon: dur::secs(600),
        }
    }

    /// The revamped direct scrape: 3 s just-in-time sampling, effectively
    /// no extra propagation.
    pub fn direct() -> Self {
        PipelineConfig {
            generation_interval: dur::secs(3),
            propagation_delay: Duration::ZERO,
            horizon: dur::secs(600),
        }
    }

    /// Worst-case staleness of what the autoscaler reads.
    pub fn worst_case_staleness(&self) -> Duration {
        self.generation_interval + self.propagation_delay
    }
}

struct TenantSeries {
    /// `(generated_at, vcpus_used_avg_over_interval)` samples.
    samples: Vec<(SimTime, f64)>,
    last_cpu_total: f64,
}

/// Samples per-tenant SQL-node CPU usage and serves it with pipeline
/// latency.
pub struct MetricsPipeline {
    config: PipelineConfig,
    series: Rc<RefCell<HashMap<TenantId, TenantSeries>>>,
}

impl MetricsPipeline {
    /// Starts the sampling loop over the registry's tenants.
    pub fn start(sim: &Sim, registry: Registry, config: PipelineConfig) -> Rc<MetricsPipeline> {
        let pipeline = Rc::new(MetricsPipeline {
            config: config.clone(),
            series: Rc::new(RefCell::new(HashMap::new())),
        });
        let series = Rc::clone(&pipeline.series);
        let sim2 = sim.clone();
        let mut last_at = sim.now();
        sim.schedule_periodic(config.generation_interval, move || {
            let now = sim2.now();
            let dt = now.duration_since(last_at).as_secs_f64();
            last_at = now;
            if dt <= 0.0 {
                return true;
            }
            let mut all = series.borrow_mut();
            // Only active tenants are scraped: a generation tick costs
            // O(running tenants), not O(registered). Suspended tenants'
            // series are dropped at suspension (`forget_tenant`), so a
            // resume starts a fresh window.
            for tenant in registry.active_tenant_ids() {
                let cpu_total: f64 = registry
                    .with_tenant(tenant, |e| {
                        e.nodes
                            .iter()
                            .map(|n| n.sql_cpu_seconds())
                            .chain(e.draining.iter().map(|(n, _)| n.sql_cpu_seconds()))
                            .sum()
                    })
                    .unwrap_or(0.0);
                let entry = all
                    .entry(tenant)
                    .or_insert(TenantSeries { samples: Vec::new(), last_cpu_total: cpu_total });
                let used = ((cpu_total - entry.last_cpu_total) / dt).max(0.0);
                entry.last_cpu_total = cpu_total;
                entry.samples.push((now, used));
                // Bound memory with the configured time horizon. Eviction
                // must never outrun visibility: the newest sample that has
                // cleared propagation (what `visible_usage` returns) is
                // always retained, even under a pathologically short
                // horizon.
                let mut first_keep =
                    entry.samples.partition_point(|(t, _)| now.duration_since(*t) > config.horizon);
                if let Some(newest_visible) =
                    entry.samples.iter().rposition(|(t, _)| *t + config.propagation_delay <= now)
                {
                    first_keep = first_keep.min(newest_visible);
                }
                entry.samples.drain(..first_keep);
            }
            true
        });
        pipeline
    }

    /// The latest per-tenant vCPU usage visible to the autoscaler at
    /// `now`, i.e. the freshest sample that has cleared propagation.
    pub fn visible_usage(&self, tenant: TenantId, now: SimTime) -> Option<(SimTime, f64)> {
        let all = self.series.borrow();
        let s = all.get(&tenant)?;
        let visible_cutoff = now.duration_since(SimTime::ZERO);
        s.samples
            .iter()
            .rev()
            .find(|(t, _)| {
                t.duration_since(SimTime::ZERO) + self.config.propagation_delay <= visible_cutoff
            })
            .copied()
    }

    /// All visible samples within `window` ending at `now`.
    pub fn visible_window(
        &self,
        tenant: TenantId,
        now: SimTime,
        window: Duration,
    ) -> Vec<(SimTime, f64)> {
        let all = self.series.borrow();
        let s = match all.get(&tenant) {
            Some(s) => s,
            None => return Vec::new(),
        };
        s.samples
            .iter()
            .filter(|(t, _)| {
                *t + self.config.propagation_delay <= now
                    && now.duration_since(*t) <= window + self.config.propagation_delay
            })
            .copied()
            .collect()
    }

    /// Drops a tenant's series (called at suspension). Equivalent, from
    /// the autoscaler's point of view, to the all-zero window a
    /// keep-sampling pipeline would have accumulated, at O(1) instead of
    /// O(suspended tenants) per tick.
    pub fn forget_tenant(&self, tenant: TenantId) {
        self.series.borrow_mut().remove(&tenant);
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        Registry::new(Rc::new(|_| unreachable!()))
    }

    #[test]
    fn staleness_math() {
        assert_eq!(PipelineConfig::prometheus().worst_case_staleness(), dur::secs(30));
        assert_eq!(PipelineConfig::direct().worst_case_staleness(), dur::secs(3));
    }

    #[test]
    fn direct_pipeline_serves_fresh_samples() {
        let sim = Sim::new(1);
        let r = registry();
        r.add_tenant(TenantId(2), sim.now());
        // Only active (non-suspended) tenants are scraped.
        r.with_tenant(TenantId(2), |e| e.suspended = false);
        let p = MetricsPipeline::start(&sim, r, PipelineConfig::direct());
        sim.run_for(dur::secs(10));
        let (t, v) = p.visible_usage(TenantId(2), sim.now()).expect("sample visible");
        assert_eq!(v, 0.0, "no nodes, no usage");
        // The freshest visible sample is at most one generation old.
        assert!(sim.now().duration_since(t) <= dur::secs(3));
    }

    #[test]
    fn prometheus_pipeline_hides_recent_samples() {
        let sim = Sim::new(1);
        let r = registry();
        r.add_tenant(TenantId(2), sim.now());
        r.with_tenant(TenantId(2), |e| e.suspended = false);
        let p = MetricsPipeline::start(&sim, r, PipelineConfig::prometheus());
        sim.run_for(dur::secs(25));
        // Generated at 10 and 20; visible only those generated <= now-20.
        // None is also acceptable at t=25 (first visible at 30).
        if let Some((t, _)) = p.visible_usage(TenantId(2), sim.now()) {
            assert!(
                sim.now().duration_since(t) >= dur::secs(20),
                "visible sample is stale by design: {t}"
            );
        }
        sim.run_for(dur::secs(20));
        let (t, _) = p.visible_usage(TenantId(2), sim.now()).expect("eventually visible");
        assert!(sim.now().duration_since(t) >= dur::secs(20));
    }

    /// Regression: the old pruning was count-based (`drain(..512)` past
    /// 1024 samples), so a small generation interval silently dropped
    /// samples that were still inside the autoscaler's visible window. The
    /// horizon-based eviction must keep every sample a reader can reach.
    #[test]
    fn pruning_never_drops_visible_samples() {
        let sim = Sim::new(1);
        let r = registry();
        r.add_tenant(TenantId(2), sim.now());
        r.with_tenant(TenantId(2), |e| e.suspended = false);
        let cfg = PipelineConfig {
            generation_interval: dur::ms(10),
            propagation_delay: Duration::ZERO,
            horizon: dur::secs(600),
        };
        let p = MetricsPipeline::start(&sim, r, cfg);
        sim.run_for(dur::secs(30));
        // 10 ms generation over 30 s => ~3000 samples, all inside a 60 s
        // window. The old code capped retention at 1024.
        let samples = p.visible_window(TenantId(2), sim.now(), dur::secs(60));
        assert!(samples.len() >= 2900, "visible samples were evicted: {}", samples.len());
    }

    /// The horizon really evicts — and even when it is shorter than the
    /// propagation delay allows, the newest visible sample survives.
    #[test]
    fn horizon_evicts_but_keeps_newest_visible() {
        let sim = Sim::new(1);
        let r = registry();
        r.add_tenant(TenantId(2), sim.now());
        r.with_tenant(TenantId(2), |e| e.suspended = false);
        let cfg = PipelineConfig {
            generation_interval: dur::secs(10),
            propagation_delay: dur::secs(20),
            horizon: dur::secs(30),
        };
        let p = MetricsPipeline::start(&sim, r, cfg);
        sim.run_for(dur::secs(600));
        // 60 samples generated; only ~the last 30 s retained.
        let retained = p.visible_window(TenantId(2), sim.now(), dur::secs(600));
        assert!(retained.len() <= 4, "horizon did not evict: {}", retained.len());
        let (t, _) = p.visible_usage(TenantId(2), sim.now()).expect("newest visible kept");
        assert!(sim.now().duration_since(t) >= dur::secs(20));
    }

    #[test]
    fn visible_window_filters_by_propagation() {
        let sim = Sim::new(1);
        let r = registry();
        r.add_tenant(TenantId(2), sim.now());
        r.with_tenant(TenantId(2), |e| e.suspended = false);
        let p = MetricsPipeline::start(&sim, r.clone(), PipelineConfig::direct());
        sim.run_for(dur::secs(31));
        let samples = p.visible_window(TenantId(2), sim.now(), dur::secs(30));
        assert!(samples.len() >= 9, "roughly one sample per 3s: {}", samples.len());
    }
}
