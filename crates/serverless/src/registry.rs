//! Shared per-tenant orchestration state.
//!
//! One [`Registry`] per deployment tracks, for each tenant (virtual
//! cluster): its ready SQL nodes, nodes being drained, whether the tenant
//! is suspended (scaled to zero, §4.2.3), and a factory for creating new
//! SQL nodes — injected by the deployment layer so this crate stays
//! independent of tenant provisioning details.
//!
//! Entries live in a generational [`Slab`] (dense storage, no per-tenant
//! map nodes) with a `BTreeMap` index for id-ordered iteration where
//! snapshots demand it. The registry also maintains the **active set** —
//! tenants not scaled to zero — so the periodic loops (autoscaler,
//! metrics pipeline, accounting) cost O(active), not O(all tenants):
//! with 20,000 suspended tenants and a handful of live ones, a 3-second
//! reconcile tick must not walk 20,000 entries.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use crdb_sql::node::{NodeState, SqlNode};
use crdb_util::slab::{Slab, Slot};
use crdb_util::time::SimTime;
use crdb_util::TenantId;

/// Creates a fresh (state = Created) SQL node for a tenant. Supplied by
/// the deployment assembly.
pub type NodeFactory = Rc<dyn Fn(TenantId) -> Rc<SqlNode>>;

/// Per-tenant orchestration state.
pub struct TenantEntry {
    /// Ready (or starting) SQL nodes accepting new connections.
    pub nodes: Vec<Rc<SqlNode>>,
    /// Nodes being drained: existing sessions only.
    pub draining: Vec<(Rc<SqlNode>, SimTime)>,
    /// Whether the tenant is scaled to zero.
    pub suspended: bool,
    /// Open proxied connections.
    pub connections: u64,
    /// Last instant the tenant had nonzero load (for suspension).
    pub last_active: SimTime,
    /// The tenant's CPU quota in vCPUs (None = unlimited).
    pub quota_vcpus: Option<f64>,
}

impl TenantEntry {
    fn new(now: SimTime) -> Self {
        TenantEntry {
            nodes: Vec::new(),
            draining: Vec::new(),
            suspended: true,
            connections: 0,
            last_active: now,
            quota_vcpus: None,
        }
    }

    /// Nodes currently able to serve new connections.
    pub fn ready_nodes(&self) -> Vec<Rc<SqlNode>> {
        self.nodes.iter().filter(|n| n.state() == NodeState::Ready).cloned().collect()
    }

    /// Total vCPUs allocated to ready + starting nodes.
    pub fn allocated_vcpus(&self) -> f64 {
        self.nodes.iter().map(|n| n.config.vcpus).sum()
    }
}

struct Inner {
    /// Dense per-tenant storage; a suspended tenant is just this entry.
    entries: Slab<TenantEntry>,
    /// Id-ordered index into the slab.
    index: BTreeMap<TenantId, Slot>,
    /// Tenants not scaled to zero; kept in lockstep with
    /// `TenantEntry::suspended` by [`Registry::with_tenant`].
    active: BTreeSet<TenantId>,
}

/// The shared registry.
#[derive(Clone)]
pub struct Registry {
    inner: Rc<RefCell<Inner>>,
    factory: NodeFactory,
}

impl Registry {
    /// Creates a registry with a node factory.
    pub fn new(factory: NodeFactory) -> Registry {
        Registry {
            inner: Rc::new(RefCell::new(Inner {
                entries: Slab::new(),
                index: BTreeMap::new(),
                active: BTreeSet::new(),
            })),
            factory,
        }
    }

    /// Registers a tenant (starts suspended).
    pub fn add_tenant(&self, tenant: TenantId, now: SimTime) {
        let mut inner = self.inner.borrow_mut();
        if inner.index.contains_key(&tenant) {
            return;
        }
        let slot = inner.entries.insert(TenantEntry::new(now));
        inner.index.insert(tenant, slot);
    }

    /// Whether the tenant exists.
    pub fn has_tenant(&self, tenant: TenantId) -> bool {
        self.inner.borrow().index.contains_key(&tenant)
    }

    /// Runs `f` with the tenant's entry. Suspension flips inside `f` are
    /// mirrored into the active set here — this is the single choke point
    /// through which all entry mutation flows.
    pub fn with_tenant<T>(
        &self,
        tenant: TenantId,
        f: impl FnOnce(&mut TenantEntry) -> T,
    ) -> Option<T> {
        let mut inner = self.inner.borrow_mut();
        let slot = *inner.index.get(&tenant)?;
        let entry = inner.entries.get_mut(slot).expect("indexed tenant entry is live");
        let was_suspended = entry.suspended;
        let out = f(entry);
        let now_suspended = entry.suspended;
        if was_suspended != now_suspended {
            if now_suspended {
                inner.active.remove(&tenant);
            } else {
                inner.active.insert(tenant);
            }
        }
        Some(out)
    }

    /// All tenant IDs, in id order. O(all tenants) — the periodic loops
    /// use [`Registry::active_tenant_ids`] instead.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        self.inner.borrow().index.keys().copied().collect()
    }

    /// IDs of tenants not scaled to zero, in id order. This is what the
    /// autoscaler, metrics pipeline, and accounting loops iterate: cost
    /// is proportional to *running* tenants, independent of how many
    /// thousands sit suspended.
    pub fn active_tenant_ids(&self) -> Vec<TenantId> {
        self.inner.borrow().active.iter().copied().collect()
    }

    /// Number of tenants not scaled to zero.
    pub fn active_tenant_count(&self) -> usize {
        self.inner.borrow().active.len()
    }

    /// Creates a fresh SQL node for `tenant` via the injected factory.
    pub fn make_node(&self, tenant: TenantId) -> Rc<SqlNode> {
        (self.factory)(tenant)
    }

    /// Total SQL nodes across tenants (ready + draining).
    pub fn total_sql_nodes(&self) -> usize {
        self.inner.borrow().entries.iter().map(|(_, e)| e.nodes.len() + e.draining.len()).sum()
    }

    /// Ready node count for a tenant.
    pub fn node_count(&self, tenant: TenantId) -> usize {
        let inner = self.inner.borrow();
        match inner.index.get(&tenant) {
            Some(&slot) => inner.entries.get(slot).map_or(0, |e| e.nodes.len()),
            None => 0,
        }
    }

    /// Whether a tenant is suspended.
    pub fn is_suspended(&self, tenant: TenantId) -> bool {
        !self.inner.borrow().active.contains(&tenant)
    }

    /// Drops crashed/stopped nodes from a tenant's bookkeeping so the
    /// autoscaler sees the reduced capacity and backfills. Returns how
    /// many nodes were pruned.
    pub fn prune_stopped(&self, tenant: TenantId) -> usize {
        self.with_tenant(tenant, |entry| {
            let before = entry.nodes.len() + entry.draining.len();
            entry.nodes.retain(|n| n.state() != NodeState::Stopped);
            entry.draining.retain(|(n, _)| n.state() != NodeState::Stopped);
            before - (entry.nodes.len() + entry.draining.len())
        })
        .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        // Tests that need real nodes build them through the deployment
        // layer; here a panicking factory suffices.
        Registry::new(Rc::new(|_| unreachable!("factory not used")))
    }

    #[test]
    fn tenants_start_suspended() {
        let r = registry();
        r.add_tenant(TenantId(2), SimTime::ZERO);
        assert!(r.has_tenant(TenantId(2)));
        assert!(r.is_suspended(TenantId(2)));
        assert_eq!(r.node_count(TenantId(2)), 0);
        assert_eq!(r.total_sql_nodes(), 0);
    }

    #[test]
    fn with_tenant_mutates() {
        let r = registry();
        r.add_tenant(TenantId(2), SimTime::ZERO);
        r.with_tenant(TenantId(2), |e| {
            e.suspended = false;
            e.connections = 3;
        });
        assert!(!r.is_suspended(TenantId(2)));
        assert_eq!(r.with_tenant(TenantId(2), |e| e.connections), Some(3));
        assert_eq!(r.with_tenant(TenantId(9), |_| ()), None);
    }

    #[test]
    fn tenant_ids_sorted() {
        let r = registry();
        for id in [5u64, 2, 9] {
            r.add_tenant(TenantId(id), SimTime::ZERO);
        }
        assert_eq!(r.tenant_ids(), vec![TenantId(2), TenantId(5), TenantId(9)]);
    }
}
