//! Shared per-tenant orchestration state.
//!
//! One [`Registry`] per deployment tracks, for each tenant (virtual
//! cluster): its ready SQL nodes, nodes being drained, whether the tenant
//! is suspended (scaled to zero, §4.2.3), and a factory for creating new
//! SQL nodes — injected by the deployment layer so this crate stays
//! independent of tenant provisioning details.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crdb_sql::node::{NodeState, SqlNode};
use crdb_util::time::SimTime;
use crdb_util::TenantId;

/// Creates a fresh (state = Created) SQL node for a tenant. Supplied by
/// the deployment assembly.
pub type NodeFactory = Rc<dyn Fn(TenantId) -> Rc<SqlNode>>;

/// Per-tenant orchestration state.
pub struct TenantEntry {
    /// Ready (or starting) SQL nodes accepting new connections.
    pub nodes: Vec<Rc<SqlNode>>,
    /// Nodes being drained: existing sessions only.
    pub draining: Vec<(Rc<SqlNode>, SimTime)>,
    /// Whether the tenant is scaled to zero.
    pub suspended: bool,
    /// Open proxied connections.
    pub connections: u64,
    /// Last instant the tenant had nonzero load (for suspension).
    pub last_active: SimTime,
    /// The tenant's CPU quota in vCPUs (None = unlimited).
    pub quota_vcpus: Option<f64>,
}

impl TenantEntry {
    fn new(now: SimTime) -> Self {
        TenantEntry {
            nodes: Vec::new(),
            draining: Vec::new(),
            suspended: true,
            connections: 0,
            last_active: now,
            quota_vcpus: None,
        }
    }

    /// Nodes currently able to serve new connections.
    pub fn ready_nodes(&self) -> Vec<Rc<SqlNode>> {
        self.nodes.iter().filter(|n| n.state() == NodeState::Ready).cloned().collect()
    }

    /// Total vCPUs allocated to ready + starting nodes.
    pub fn allocated_vcpus(&self) -> f64 {
        self.nodes.iter().map(|n| n.config.vcpus).sum()
    }
}

/// The shared registry.
#[derive(Clone)]
pub struct Registry {
    inner: Rc<RefCell<BTreeMap<TenantId, TenantEntry>>>,
    factory: NodeFactory,
}

impl Registry {
    /// Creates a registry with a node factory.
    pub fn new(factory: NodeFactory) -> Registry {
        Registry { inner: Rc::new(RefCell::new(BTreeMap::new())), factory }
    }

    /// Registers a tenant (starts suspended).
    pub fn add_tenant(&self, tenant: TenantId, now: SimTime) {
        self.inner.borrow_mut().entry(tenant).or_insert_with(|| TenantEntry::new(now));
    }

    /// Whether the tenant exists.
    pub fn has_tenant(&self, tenant: TenantId) -> bool {
        self.inner.borrow().contains_key(&tenant)
    }

    /// Runs `f` with the tenant's entry.
    pub fn with_tenant<T>(
        &self,
        tenant: TenantId,
        f: impl FnOnce(&mut TenantEntry) -> T,
    ) -> Option<T> {
        self.inner.borrow_mut().get_mut(&tenant).map(f)
    }

    /// All tenant IDs.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        // BTreeMap: already in tenant-id order.
        self.inner.borrow().keys().copied().collect()
    }

    /// Creates a fresh SQL node for `tenant` via the injected factory.
    pub fn make_node(&self, tenant: TenantId) -> Rc<SqlNode> {
        (self.factory)(tenant)
    }

    /// Total SQL nodes across tenants (ready + draining).
    pub fn total_sql_nodes(&self) -> usize {
        self.inner.borrow().values().map(|e| e.nodes.len() + e.draining.len()).sum()
    }

    /// Ready node count for a tenant.
    pub fn node_count(&self, tenant: TenantId) -> usize {
        self.inner.borrow().get(&tenant).map_or(0, |e| e.nodes.len())
    }

    /// Whether a tenant is suspended.
    pub fn is_suspended(&self, tenant: TenantId) -> bool {
        self.inner.borrow().get(&tenant).is_none_or(|e| e.suspended)
    }

    /// Drops crashed/stopped nodes from a tenant's bookkeeping so the
    /// autoscaler sees the reduced capacity and backfills. Returns how
    /// many nodes were pruned.
    pub fn prune_stopped(&self, tenant: TenantId) -> usize {
        let mut inner = self.inner.borrow_mut();
        let Some(entry) = inner.get_mut(&tenant) else { return 0 };
        let before = entry.nodes.len() + entry.draining.len();
        entry.nodes.retain(|n| n.state() != NodeState::Stopped);
        entry.draining.retain(|(n, _)| n.state() != NodeState::Stopped);
        before - (entry.nodes.len() + entry.draining.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        // Tests that need real nodes build them through the deployment
        // layer; here a panicking factory suffices.
        Registry::new(Rc::new(|_| unreachable!("factory not used")))
    }

    #[test]
    fn tenants_start_suspended() {
        let r = registry();
        r.add_tenant(TenantId(2), SimTime::ZERO);
        assert!(r.has_tenant(TenantId(2)));
        assert!(r.is_suspended(TenantId(2)));
        assert_eq!(r.node_count(TenantId(2)), 0);
        assert_eq!(r.total_sql_nodes(), 0);
    }

    #[test]
    fn with_tenant_mutates() {
        let r = registry();
        r.add_tenant(TenantId(2), SimTime::ZERO);
        r.with_tenant(TenantId(2), |e| {
            e.suspended = false;
            e.connections = 3;
        });
        assert!(!r.is_suspended(TenantId(2)));
        assert_eq!(r.with_tenant(TenantId(2), |e| e.connections), Some(3));
        assert_eq!(r.with_tenant(TenantId(9), |_| ()), None);
    }

    #[test]
    fn tenant_ids_sorted() {
        let r = registry();
        for id in [5u64, 2, 9] {
            r.add_tenant(TenantId(id), SimTime::ZERO);
        }
        assert_eq!(r.tenant_ids(), vec![TenantId(2), TenantId(5), TenantId(9)]);
    }
}
