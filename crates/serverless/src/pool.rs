//! The pre-warmed pod pool and cold-start flows (§4.3.1).
//!
//! "In our original implementation, K8s pods containing SQL nodes were
//! pre-warmed, but did not have a running SQL process until a tenant was
//! assigned. … The cold start flow was revamped so that the SQL process
//! was started before the tenant ID was known. The pre-warmed SQL node
//! process uses a file system watch to detect when the tenant's mTLS
//! certificates are available."
//!
//! Two flows are modeled:
//!
//! - **Unoptimized** (container pre-warmed, process not started): tenant
//!   assignment → certificate delivery → *process start* (up to a second)
//!   → TCP listener opens. The proxy's earlier connection attempt hits a
//!   TCP reset and retries with exponential backoff, roughly doubling the
//!   client-observed time.
//! - **Optimized** (process pre-started): certificate file-watch fires,
//!   the node connects to KV and finishes initialization; the proxy's
//!   connection waits in the accept queue instead of being reset.
//!
//! In both flows the SQL node's own `start()` then performs the real
//! KV/system-database work.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::time::Duration;

use crdb_obs::trace;
use crdb_sim::Sim;
use crdb_sql::node::SqlNode;
use crdb_sql::system_db::SystemDatabase;
use crdb_util::time::dur;
use crdb_util::{RegionId, RetryPolicy, TenantId};

use crate::registry::Registry;

/// Cold-start timing parameters.
#[derive(Debug, Clone)]
pub struct ColdStartConfig {
    /// Whether SQL processes are pre-started in pool pods (§4.3.1).
    pub prewarm_process: bool,
    /// Control-plane latency to assign a pod to a tenant (proxy detection,
    /// reconciliation, certificate issuance request).
    pub pod_assignment: Duration,
    /// Multiplicative jitter applied to each timing component (0.4 = each
    /// delay sampled uniformly in ±40%).
    pub jitter: f64,
    /// Time to start a container in a pre-allocated pod.
    pub container_start: Duration,
    /// Time to start the SQL process inside the container ("may take up
    /// to a second").
    pub process_start: Duration,
    /// Certificate delivery + file-watch detection.
    pub cert_delivery: Duration,
    /// Extra client-observed delay when the proxy's connection attempt is
    /// TCP-reset and retried with exponential backoff.
    pub tcp_retry_penalty: Duration,
    /// Target number of warm pods kept in the pool.
    pub pool_size: usize,
    /// Time to provision a replacement pod into the pool.
    pub replenish_delay: Duration,
    /// Base backoff before retrying a failed pod start; doubles per
    /// consecutive failure.
    pub start_retry_base: Duration,
    /// Upper bound on the start-retry backoff.
    pub start_retry_cap: Duration,
}

impl Default for ColdStartConfig {
    fn default() -> Self {
        ColdStartConfig {
            prewarm_process: true,
            pod_assignment: dur::ms(260),
            jitter: 0.35,
            container_start: dur::ms(450),
            process_start: dur::ms(400),
            cert_delivery: dur::ms(60),
            tcp_retry_penalty: dur::ms(250),
            pool_size: 8,
            replenish_delay: dur::secs(10),
            start_retry_base: dur::ms(250),
            start_retry_cap: dur::secs(4),
        }
    }
}

/// The warm pod pool. Slots are tracked per region: a region outage
/// atomically loses every warm slot located there (the pods are gone),
/// and acquisitions fall back to live regions until the dark region is
/// reprovisioned on recovery.
pub struct WarmPool {
    sim: Sim,
    config: ColdStartConfig,
    warm: RefCell<BTreeMap<RegionId, usize>>,
    /// Regions currently dark (no slots can be acquired or replenished).
    dark: RefCell<BTreeSet<RegionId>>,
    /// Pods handed out (for stats).
    pub acquired: RefCell<u64>,
    /// Acquisitions that found the pool empty and paid full provisioning.
    pub pool_misses: RefCell<u64>,
    /// Fault injection: how many upcoming pod starts should fail.
    fail_next: Cell<u32>,
    /// Pod starts that failed and were retried (for stats/invariants).
    pub start_failures: Cell<u64>,
    /// Warm slots destroyed by region outages (for stats/invariants).
    pub slots_lost: Cell<u64>,
}

impl WarmPool {
    /// Creates a full single-region pool (region 0).
    pub fn new(sim: &Sim, config: ColdStartConfig) -> Rc<WarmPool> {
        WarmPool::new_multi_region(sim, config, &[RegionId(0)])
    }

    /// Creates a pool holding `config.pool_size` warm slots in *each* of
    /// `regions`.
    pub fn new_multi_region(
        sim: &Sim,
        config: ColdStartConfig,
        regions: &[RegionId],
    ) -> Rc<WarmPool> {
        let warm: BTreeMap<RegionId, usize> =
            regions.iter().map(|&r| (r, config.pool_size)).collect();
        Rc::new(WarmPool {
            sim: sim.clone(),
            config,
            warm: RefCell::new(warm),
            dark: RefCell::new(BTreeSet::new()),
            acquired: RefCell::new(0),
            pool_misses: RefCell::new(0),
            fail_next: Cell::new(0),
            start_failures: Cell::new(0),
            slots_lost: Cell::new(0),
        })
    }

    /// Marks a region's warm slots destroyed (outage) or reprovisionable
    /// (recovery). Going dark burns every slot in the region on the spot;
    /// recovery refills the region to `pool_size` after one
    /// `replenish_delay` (the control plane reprovisions in bulk).
    pub fn set_region_dark(self: &Rc<Self>, region: RegionId, dark: bool) {
        if dark {
            if self.dark.borrow_mut().insert(region) {
                let mut warm = self.warm.borrow_mut();
                if let Some(slots) = warm.get_mut(&region) {
                    self.slots_lost.set(self.slots_lost.get() + *slots as u64);
                    *slots = 0;
                }
            }
        } else if self.dark.borrow_mut().remove(&region) {
            let pool = Rc::clone(self);
            self.sim.schedule_after(self.config.replenish_delay, move || {
                if pool.dark.borrow().contains(&region) {
                    return; // went dark again before the refill landed
                }
                let mut warm = pool.warm.borrow_mut();
                if let Some(slots) = warm.get_mut(&region) {
                    *slots = pool.config.pool_size;
                }
            });
        }
    }

    /// Fault injection: makes the next `n` pod starts fail. Each failure
    /// burns the acquired pod; the pool retries with a fresh one after a
    /// capped exponential backoff.
    pub fn fail_next_starts(&self, n: u32) {
        self.fail_next.set(self.fail_next.get().saturating_add(n));
    }

    /// Warm pods currently available across all live regions.
    pub fn available(&self) -> usize {
        let dark = self.dark.borrow();
        self.warm.borrow().iter().filter(|(r, _)| !dark.contains(r)).map(|(_, n)| n).sum()
    }

    /// Warm pods available in one region (zero while it is dark).
    pub fn available_in(&self, region: RegionId) -> usize {
        if self.dark.borrow().contains(&region) {
            return 0;
        }
        self.warm.borrow().get(&region).copied().unwrap_or(0)
    }

    /// The configured flow.
    pub fn config(&self) -> &ColdStartConfig {
        &self.config
    }

    /// Acquires a pod for `tenant`, creates its SQL node via the
    /// registry's factory, runs the cold-start flow and the node's own
    /// startup, and hands the ready node to `cb`. Injected start failures
    /// (see [`WarmPool::fail_next_starts`]) are retried with a capped
    /// exponential backoff, each retry consuming a fresh pod.
    pub fn acquire_and_start(
        self: &Rc<Self>,
        registry: &Registry,
        system_db: &SystemDatabase,
        tenant: TenantId,
        cb: impl FnOnce(Rc<SqlNode>) + 'static,
    ) {
        let preferred = self.warm.borrow().keys().next().copied().unwrap_or(RegionId(0));
        self.acquire_attempt(registry, system_db, tenant, preferred, 0, Box::new(cb));
    }

    /// Like [`WarmPool::acquire_and_start`], but draws from `preferred`'s
    /// warm slots first, falling back to any live region (the re-homing
    /// path when a tenant's home region is dark).
    pub fn acquire_and_start_in(
        self: &Rc<Self>,
        registry: &Registry,
        system_db: &SystemDatabase,
        tenant: TenantId,
        preferred: RegionId,
        cb: impl FnOnce(Rc<SqlNode>) + 'static,
    ) {
        self.acquire_attempt(registry, system_db, tenant, preferred, 0, Box::new(cb));
    }

    /// The region an acquisition would draw a warm slot from: `preferred`
    /// when it is live and stocked, else the first live region with
    /// slots.
    fn pick_region(&self, preferred: RegionId) -> Option<RegionId> {
        let dark = self.dark.borrow();
        let warm = self.warm.borrow();
        if !dark.contains(&preferred) && warm.get(&preferred).is_some_and(|&n| n > 0) {
            return Some(preferred);
        }
        warm.iter().find(|(r, &n)| !dark.contains(r) && n > 0).map(|(&r, _)| r)
    }

    fn acquire_attempt(
        self: &Rc<Self>,
        registry: &Registry,
        system_db: &SystemDatabase,
        tenant: TenantId,
        preferred: RegionId,
        attempt: u32,
        cb: Box<dyn FnOnce(Rc<SqlNode>)>,
    ) {
        *self.acquired.borrow_mut() += 1;
        let span = trace::child("pool.acquire");
        span.tag("tenant", tenant);
        span.tag("attempt", attempt);
        let ambient = trace::current();
        let jitter = self.config.jitter;
        let sample = |d: Duration| -> Duration {
            let f: f64 = self.sim.with_rng(|r| rand::Rng::gen_range(r, 1.0 - jitter..1.0 + jitter));
            Duration::from_secs_f64(d.as_secs_f64() * f)
        };
        // The whole flow sleeps once for the summed delay; each phase is
        // recorded as a contiguous child span with the same sampled
        // boundaries the model sleeps on, so the cold-start trace
        // decomposes the sub-second budget (§4.2) phase by phase.
        let mut cursor = self.sim.now();
        let mut phase = |name: &str, d: Duration| {
            let c = span.child_at(name, cursor);
            cursor += d;
            c.end_at(cursor);
        };
        phase("pod.assignment", sample(self.config.pod_assignment));

        // Pod acquisition: the preferred region's slots first, any live
        // region's second, full provisioning when every live region is dry.
        match self.pick_region(preferred) {
            Some(region) => {
                *self.warm.borrow_mut().get_mut(&region).expect("picked region exists") -= 1;
                span.tag("pool_hit", "true");
                // Schedule replenishment of the region we drew from.
                let pool = Rc::clone(self);
                self.sim.schedule_after(self.config.replenish_delay, move || {
                    if pool.dark.borrow().contains(&region) {
                        return; // the region died meanwhile; recovery refills it
                    }
                    let mut warm = pool.warm.borrow_mut();
                    if let Some(slots) = warm.get_mut(&region) {
                        if *slots < pool.config.pool_size {
                            *slots += 1;
                        }
                    }
                });
            }
            None => {
                *self.pool_misses.borrow_mut() += 1;
                span.tag("pool_hit", "false");
                // No warm pod anywhere: provision a fresh one first.
                phase("pod.provision", self.config.replenish_delay);
            }
        }

        // The flow-specific latency before the SQL node can begin its own
        // startup sequence.
        if self.config.prewarm_process {
            // Process already running; the certificate file-watch fires.
            phase("cert.delivery", sample(self.config.cert_delivery));
        } else {
            // Certificates delivered, then the process boots; the proxy's
            // first connection attempt was reset meanwhile.
            phase("cert.delivery", sample(self.config.cert_delivery));
            phase("container.start", sample(self.config.container_start));
            phase("process.start", sample(self.config.process_start));
            phase("tcp.retry", sample(self.config.tcp_retry_penalty));
        }
        let delay = cursor.duration_since(self.sim.now());

        let node = registry.make_node(tenant);
        let sdb = system_db.clone();
        let pool = Rc::clone(self);
        let registry = registry.clone();
        self.sim.schedule_after(delay, move || {
            if pool.fail_next.get() > 0 {
                // The pod failed to start (injected fault): drop it and
                // retry with a fresh one after a capped backoff.
                pool.fail_next.set(pool.fail_next.get() - 1);
                pool.start_failures.set(pool.start_failures.get() + 1);
                span.tag("start_failed", "true");
                span.end();
                // Shared backoff policy (no budget: the pool retries until
                // a pod sticks — equivalent to the old
                // `(base * 2^min(n,6)).min(cap)` under the default config).
                let backoff = RetryPolicy::exponential(
                    pool.config.start_retry_base,
                    pool.config.start_retry_cap,
                    u32::MAX,
                )
                .delay(attempt)
                .expect("unbounded budget always yields a delay");
                let pool2 = Rc::clone(&pool);
                pool.sim.schedule_after(backoff, move || {
                    let _g = ambient.enter();
                    pool2.acquire_attempt(&registry, &sdb, tenant, preferred, attempt + 1, cb);
                });
                return;
            }
            span.end();
            let _g = ambient.enter();
            let node2 = Rc::clone(&node);
            node.start(&sdb, move || cb(node2));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdb_kv::client::KvClient;
    use crdb_kv::cluster::{KvCluster, KvClusterConfig};
    use crdb_sim::{Location, Topology};
    use crdb_sql::node::SqlNodeConfig;
    use crdb_util::{RegionId, SqlInstanceId};
    use std::cell::Cell;

    fn fixture(prewarm: bool) -> (Sim, Registry, Rc<WarmPool>, SystemDatabase) {
        let sim = Sim::new(1);
        let cluster = KvCluster::new(
            &sim,
            Topology::single_region("us-east1", 3),
            KvClusterConfig::default(),
        );
        let cert = cluster.create_tenant(TenantId(2));
        let sim2 = sim.clone();
        let next_id = Rc::new(Cell::new(1u64));
        let factory = {
            let cluster = cluster.clone();
            Rc::new(move |tenant: TenantId| {
                assert_eq!(tenant, TenantId(2));
                let client =
                    KvClient::new(cluster.clone(), cert.clone(), Location::new(RegionId(0), 0));
                let id = next_id.get();
                next_id.set(id + 1);
                SqlNode::new(&sim2, SqlInstanceId(id), client, SqlNodeConfig::default())
            })
        };
        let registry = Registry::new(factory);
        registry.add_tenant(TenantId(2), sim.now());
        let pool =
            WarmPool::new(&sim, ColdStartConfig { prewarm_process: prewarm, ..Default::default() });
        let sdb = SystemDatabase::optimized(RegionId(0), vec![RegionId(0)]);
        (sim, registry, pool, sdb)
    }

    fn measure_start(prewarm: bool) -> Duration {
        let (sim, registry, pool, sdb) = fixture(prewarm);
        let done = Rc::new(Cell::new(None));
        let d = Rc::clone(&done);
        let s2 = sim.clone();
        let begin = sim.now();
        pool.acquire_and_start(&registry, &sdb, TenantId(2), move |node| {
            assert_eq!(node.state(), crdb_sql::node::NodeState::Ready);
            d.set(Some(s2.now().duration_since(begin)));
        });
        sim.run_for(dur::secs(30));
        done.get().expect("node started")
    }

    #[test]
    fn prewarmed_flow_is_much_faster() {
        let optimized = measure_start(true);
        let unoptimized = measure_start(false);
        assert!(
            optimized.as_secs_f64() < unoptimized.as_secs_f64() / 2.0,
            "pre-warming halves cold start: {optimized:?} vs {unoptimized:?}"
        );
        assert!(optimized < dur::secs(1), "optimized flow is sub-second: {optimized:?}");
        assert!(unoptimized > dur::secs(1), "unoptimized exceeds a second: {unoptimized:?}");
    }

    #[test]
    fn pool_depletes_and_replenishes() {
        let (sim, registry, pool, sdb) = fixture(true);
        let initial = pool.available();
        for _ in 0..initial {
            pool.acquire_and_start(&registry, &sdb, TenantId(2), |_| {});
        }
        assert_eq!(pool.available(), 0);
        // One more: a pool miss.
        pool.acquire_and_start(&registry, &sdb, TenantId(2), |_| {});
        assert_eq!(*pool.pool_misses.borrow(), 1);
        // Replenishment restores the pool over time.
        sim.run_for(dur::secs(60));
        assert!(pool.available() > 0);
    }

    #[test]
    fn failed_starts_retry_with_backoff_until_success() {
        let (sim, registry, pool, sdb) = fixture(true);
        pool.fail_next_starts(3);
        let done = Rc::new(Cell::new(None));
        let d = Rc::clone(&done);
        let s2 = sim.clone();
        let begin = sim.now();
        pool.acquire_and_start(&registry, &sdb, TenantId(2), move |node| {
            assert_eq!(node.state(), crdb_sql::node::NodeState::Ready);
            d.set(Some(s2.now().duration_since(begin)));
        });
        sim.run_for(dur::secs(60));
        let elapsed = done.get().expect("eventually started despite failures");
        assert_eq!(pool.start_failures.get(), 3);
        assert_eq!(*pool.acquired.borrow(), 4, "each retry consumes a fresh pod");
        // At least the three backoffs (250ms + 500ms + 1s) beyond the flow.
        assert!(elapsed >= dur::ms(1750), "{elapsed:?}");
    }

    #[test]
    fn start_retry_backoff_is_capped() {
        let (sim, registry, pool, sdb) = fixture(true);
        // Enough failures to push 250ms << n far past the 4s cap.
        pool.fail_next_starts(10);
        let done = Rc::new(Cell::new(None));
        let d = Rc::clone(&done);
        let s2 = sim.clone();
        let begin = sim.now();
        pool.acquire_and_start(&registry, &sdb, TenantId(2), move |_| {
            d.set(Some(s2.now().duration_since(begin)));
        });
        sim.run_for(dur::mins(5));
        let elapsed = done.get().expect("recovered");
        assert_eq!(pool.start_failures.get(), 10);
        // Backoffs: 0.25 + 0.5 + 1 + 2 + 4*7 = 31.75s; with per-attempt
        // flow delays the total stays far below an uncapped 250ms << 10.
        assert!(elapsed < dur::secs(45), "capped backoff bounds recovery: {elapsed:?}");
    }

    #[test]
    fn region_outage_burns_warm_slots_and_acquisitions_fall_back() {
        let (sim, registry, _single, sdb) = fixture(true);
        let pool = WarmPool::new_multi_region(
            &sim,
            ColdStartConfig::default(),
            &[RegionId(0), RegionId(1)],
        );
        let size = ColdStartConfig::default().pool_size;
        assert_eq!(pool.available(), 2 * size);

        // Region 1 goes dark: its warm slots are destroyed on the spot.
        pool.set_region_dark(RegionId(1), true);
        assert_eq!(pool.available(), size);
        assert_eq!(pool.available_in(RegionId(1)), 0);
        assert_eq!(pool.slots_lost.get(), size as u64);

        // An acquisition preferring the dark region falls back to a live
        // one — still a pool hit, no provisioning penalty.
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        pool.acquire_and_start_in(&registry, &sdb, TenantId(2), RegionId(1), move |_| d.set(true));
        assert_eq!(pool.available_in(RegionId(0)), size - 1);
        assert_eq!(*pool.pool_misses.borrow(), 0, "fallback is a pool hit");
        sim.run_for(dur::secs(30));
        assert!(done.get());

        // Recovery reprovisions the region after the replenish delay.
        pool.set_region_dark(RegionId(1), false);
        sim.run_for(dur::secs(30));
        assert_eq!(pool.available_in(RegionId(1)), size);
    }

    #[test]
    fn pool_miss_pays_provisioning_delay() {
        let (sim, registry, pool, sdb) = fixture(true);
        // Drain the pool instantly.
        for _ in 0..pool.available() {
            pool.acquire_and_start(&registry, &sdb, TenantId(2), |_| {});
        }
        let done = Rc::new(Cell::new(None));
        let d = Rc::clone(&done);
        let s2 = sim.clone();
        let begin = sim.now();
        pool.acquire_and_start(&registry, &sdb, TenantId(2), move |_| {
            d.set(Some(s2.now().duration_since(begin)));
        });
        sim.run_for(dur::secs(60));
        let miss_latency = done.get().unwrap();
        assert!(miss_latency >= ColdStartConfig::default().replenish_delay, "{miss_latency:?}");
    }
}
