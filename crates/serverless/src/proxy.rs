//! The proxy service (§4.2.2, §4.2.4).
//!
//! "Upon receiving a new connection, a proxy server analyzes the incoming
//! PostgreSQL startup message to identify the tenant. If a tenant has
//! multiple SQL nodes, the proxy selects a SQL node from the pool using a
//! 'least connections' algorithm." The proxy also resumes suspended
//! tenants on first connection, throttles failed authentication with
//! exponential backoff, enforces IP allow/deny lists, and migrates idle
//! sessions between SQL nodes using the serialized-session protocol.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use crdb_kv::batch::KvError;
use crdb_obs::trace;
use crdb_sim::Sim;
use crdb_sql::coord::SqlError;
use crdb_sql::exec::QueryOutput;
use crdb_sql::node::{NodeState, SqlNode};
use crdb_sql::session::SessionSnapshot;
use crdb_sql::system_db::SystemDatabase;
use crdb_sql::value::Datum;
use crdb_util::slab::{Slab, Slot};
use crdb_util::time::{dur, SimTime};
use crdb_util::{Breaker, BreakerConfig, Deadline, RetryPolicy, TenantId};

use crate::pool::WarmPool;
use crate::registry::Registry;

/// Supplies the (per-tenant) system-database configuration used during
/// cold starts — multi-region tenants differ in home region (§4.2.5).
pub type SystemDbProvider = Rc<dyn Fn(TenantId) -> SystemDatabase>;

/// Proxy configuration.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// One-way latency client ↔ proxy ↔ SQL node (local hops).
    pub hop_latency: Duration,
    /// Base auth-throttle backoff; doubles per consecutive failure.
    pub auth_backoff_base: Duration,
    /// Upper bound on the auth-throttle backoff, however long the streak.
    pub auth_backoff_cap: Duration,
    /// Connection rebalance loop interval.
    pub rebalance_interval: Duration,
    /// Imbalance (in connections) that triggers migration between nodes.
    pub rebalance_threshold: u64,
    /// Per-statement deadline stamped at the proxy and propagated
    /// SQL → KV client → node (`None` = unbounded, the historical
    /// behavior). No layer below may schedule a retry past it.
    pub statement_deadline: Option<Duration>,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            hop_latency: dur::us(400),
            auth_backoff_base: dur::secs(1),
            auth_backoff_cap: dur::secs(60),
            rebalance_interval: dur::secs(10),
            rebalance_threshold: 2,
            statement_deadline: None,
        }
    }
}

/// Errors surfaced to connecting clients.
#[derive(Debug, Clone, PartialEq)]
pub enum ProxyError {
    /// The startup message names an unknown tenant.
    UnknownTenant,
    /// The source IP is deny-listed (or not allow-listed).
    Denied,
    /// Too many failed authentications from this source; retry later.
    Throttled,
    /// Authentication failed at the backend.
    AuthFailed,
    /// No SQL node could be started for the tenant.
    NodeUnavailable,
    /// SQL error on an established connection.
    Sql(SqlError),
}

/// A proxied client connection.
pub struct Connection {
    /// Connection ID.
    pub id: u64,
    /// The tenant.
    pub tenant: TenantId,
    node: RefCell<Rc<SqlNode>>,
    session: Cell<u64>,
    /// Times this connection was migrated between SQL nodes.
    pub migrations: Cell<u64>,
    /// Last serialized-session snapshot, refreshed whenever the session
    /// is observed idle. If the backend dies abruptly the proxy revives
    /// the session from this on another node (§4.2.4).
    snapshot: RefCell<Option<SessionSnapshot>>,
    /// The connection's slot in the proxy's connection slab (packed
    /// [`Slot`] bits), making close O(1) with no map lookup.
    slot: Cell<u64>,
}

impl Connection {
    /// The SQL node currently serving this connection.
    pub fn node(&self) -> Rc<SqlNode> {
        self.node.borrow().clone()
    }

    /// The session ID on the current node.
    pub fn session(&self) -> u64 {
        self.session.get()
    }
}

struct ThrottleState {
    consecutive_failures: u32,
    blocked_until: SimTime,
}

/// A connect attempt parked behind an in-flight tenant resume.
type ResumeWaiter = Box<dyn FnOnce(Result<Rc<SqlNode>, ProxyError>)>;

/// The proxy service.
pub struct Proxy {
    sim: Sim,
    config: ProxyConfig,
    registry: Registry,
    pool: Rc<WarmPool>,
    system_db: SystemDbProvider,
    /// Open connections in a generational slab: a 100K-session churn
    /// phase allocates no map nodes, and close is an O(1) slot free.
    conns: RefCell<Slab<Rc<Connection>>>,
    next_conn: Cell<u64>,
    /// Keyed by source IP; BTreeMap so any future iteration is ordered.
    throttle: RefCell<BTreeMap<String, ThrottleState>>,
    /// Per-tenant allowlist (None = all allowed).
    allowlist: RefCell<BTreeMap<TenantId, Vec<String>>>,
    /// Per-tenant denylist (co-specified by intrusion detection, §4.2.2).
    denylist: RefCell<BTreeMap<TenantId, Vec<String>>>,
    /// Tenants with a resume in flight and the connects waiting on it.
    resuming: RefCell<BTreeMap<TenantId, Vec<ResumeWaiter>>>,
    /// Total connections accepted.
    pub connects: Cell<u64>,
    /// Total session migrations performed.
    pub migrations: Cell<u64>,
    /// Rebalance migrations that failed (serialize/restore error); the
    /// connection stays on its current node and is retried next sweep.
    pub migration_failures: Cell<u64>,
    /// Connects that triggered a tenant resume (cold start).
    pub cold_starts: Cell<u64>,
    /// Client-observed per-statement latency (one sample per attempt).
    pub statement_latency: RefCell<crdb_util::Histogram>,
    /// Per-tenant client-observed statement latency — the blast-radius
    /// invariant ("healthy-region tenants keep their p99") is checked
    /// against these, not the global histogram.
    tenant_latency: RefCell<BTreeMap<TenantId, crdb_util::Histogram>>,
    /// Per-tenant circuit breakers: a tenant whose backend path keeps
    /// failing (dark region) is shed with a fast `Unavailable` instead of
    /// tying up proxy capacity, while other tenants are untouched.
    breakers: RefCell<BTreeMap<TenantId, Breaker>>,
    /// Statements shed by an open per-tenant breaker.
    pub shed_statements: Cell<u64>,
    /// Live copy of [`ProxyConfig::statement_deadline`], adjustable at
    /// runtime via [`Proxy::set_statement_deadline`].
    statement_deadline: Cell<Option<Duration>>,
}

impl Proxy {
    /// Creates a proxy and starts its rebalance loop.
    pub fn start(
        sim: &Sim,
        config: ProxyConfig,
        registry: Registry,
        pool: Rc<WarmPool>,
        system_db: SystemDbProvider,
    ) -> Rc<Proxy> {
        let proxy = Rc::new(Proxy {
            sim: sim.clone(),
            config: config.clone(),
            registry,
            pool,
            system_db,
            conns: RefCell::new(Slab::new()),
            next_conn: Cell::new(1),
            throttle: RefCell::new(BTreeMap::new()),
            allowlist: RefCell::new(BTreeMap::new()),
            denylist: RefCell::new(BTreeMap::new()),
            resuming: RefCell::new(BTreeMap::new()),
            connects: Cell::new(0),
            migrations: Cell::new(0),
            migration_failures: Cell::new(0),
            cold_starts: Cell::new(0),
            statement_latency: RefCell::new(crdb_util::Histogram::new()),
            tenant_latency: RefCell::new(BTreeMap::new()),
            breakers: RefCell::new(BTreeMap::new()),
            shed_statements: Cell::new(0),
            statement_deadline: Cell::new(config.statement_deadline),
        });
        let p = Rc::clone(&proxy);
        sim.schedule_periodic(config.rebalance_interval, move || {
            p.rebalance();
            true
        });
        proxy
    }

    /// Sets a tenant's IP allowlist (`None` clears it).
    pub fn set_allowlist(&self, tenant: TenantId, ips: Option<Vec<String>>) {
        match ips {
            Some(v) => {
                self.allowlist.borrow_mut().insert(tenant, v);
            }
            None => {
                self.allowlist.borrow_mut().remove(&tenant);
            }
        }
    }

    /// Adds to a tenant's denylist.
    pub fn deny_ip(&self, tenant: TenantId, ip: &str) {
        self.denylist.borrow_mut().entry(tenant).or_default().push(ip.to_string());
    }

    fn check_ip(&self, tenant: TenantId, ip: &str) -> bool {
        // Guards are bound to locals (not scrutinees) so neither list's
        // borrow is held across the other lookup or any caller re-entry.
        let denylist = self.denylist.borrow();
        if let Some(denied) = denylist.get(&tenant) {
            if denied.iter().any(|d| d == ip) {
                return false;
            }
        }
        drop(denylist);
        let allowlist = self.allowlist.borrow();
        if let Some(allowed) = allowlist.get(&tenant) {
            return allowed.iter().any(|a| a == ip);
        }
        true
    }

    fn check_throttle(&self, ip: &str) -> bool {
        let now = self.sim.now();
        self.throttle.borrow().get(ip).is_none_or(|t| t.blocked_until <= now)
    }

    fn record_auth_failure(&self, ip: &str) {
        let now = self.sim.now();
        let mut throttle = self.throttle.borrow_mut();
        let entry = throttle
            .entry(ip.to_string())
            .or_insert(ThrottleState { consecutive_failures: 0, blocked_until: SimTime::ZERO });
        entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
        // The first failure waits exactly the base; each further failure
        // doubles it, clamped to the configured cap so arbitrarily long
        // streaks neither overflow nor lock a source out forever. The
        // shared policy reproduces the old `(base * 2^min(n,10)).min(cap)`
        // schedule exactly under the default config.
        let backoff = RetryPolicy::exponential(
            self.config.auth_backoff_base,
            self.config.auth_backoff_cap,
            u32::MAX,
        )
        .delay(entry.consecutive_failures - 1)
        .expect("unbounded budget always yields a delay");
        entry.blocked_until = now + backoff;
    }

    fn record_auth_success(&self, ip: &str) {
        self.throttle.borrow_mut().remove(ip);
    }

    /// Handles a new client connection: identifies the tenant from the
    /// startup message, applies security controls, resumes the tenant if
    /// suspended, picks the least-connections node, and opens a session.
    /// `auth_ok` models the backend authentication result.
    pub fn connect(
        self: &Rc<Self>,
        tenant: TenantId,
        source_ip: &str,
        user: &str,
        auth_ok: bool,
        cb: impl FnOnce(Result<Rc<Connection>, ProxyError>) + 'static,
    ) {
        // The span ends when the client gets its first byte (the session
        // handle or an error), so its duration is the full connect latency.
        let span = trace::child("proxy.connect");
        span.tag("tenant", tenant);
        let cb = {
            let span = span.clone();
            move |r: Result<Rc<Connection>, ProxyError>| {
                if let Ok(c) = &r {
                    span.tag("session", c.session());
                }
                span.end();
                cb(r)
            }
        };
        let _scope = span.enter();
        if !self.registry.has_tenant(tenant) {
            cb(Err(ProxyError::UnknownTenant));
            return;
        }
        if !self.check_ip(tenant, source_ip) {
            cb(Err(ProxyError::Denied));
            return;
        }
        if !self.check_throttle(source_ip) {
            cb(Err(ProxyError::Throttled));
            return;
        }
        if !auth_ok {
            // The failure is detected from the backend response; throttle
            // further attempts from this origin (§4.2.2).
            self.record_auth_failure(source_ip);
            let hop = self.config.hop_latency * 4;
            self.sim.schedule_after(hop, move || cb(Err(ProxyError::AuthFailed)));
            return;
        }
        self.record_auth_success(source_ip);

        let this = Rc::clone(self);
        let user = user.to_string();
        let ambient = trace::current();
        self.with_ready_node(tenant, move |node| match node {
            Err(e) => cb(Err(e)),
            Ok(node) => {
                let hop = this.config.hop_latency * 2;
                let this2 = Rc::clone(&this);
                let hop_span = ambient.child("network.hop");
                let ambient2 = ambient.clone();
                this.sim.schedule_after(hop, move || {
                    hop_span.end();
                    let _scope = ambient2.enter();
                    let open_span = trace::child("session.open");
                    match node.open_session(&user) {
                        Err(e) => {
                            open_span.end();
                            cb(Err(ProxyError::Sql(e)))
                        }
                        Ok(session) => {
                            let id = this2.next_conn.get();
                            this2.next_conn.set(id + 1);
                            // Capture the initial revival snapshot while the
                            // fresh session is certainly idle.
                            let snapshot = node.serialize_session(session).ok();
                            let conn = Rc::new(Connection {
                                id,
                                tenant,
                                node: RefCell::new(node),
                                session: Cell::new(session),
                                migrations: Cell::new(0),
                                snapshot: RefCell::new(snapshot),
                                slot: Cell::new(0),
                            });
                            let slot = this2.conns.borrow_mut().insert(Rc::clone(&conn));
                            conn.slot.set(slot.to_bits());
                            this2.registry.with_tenant(tenant, |e| {
                                e.connections += 1;
                                e.last_active = this2.sim.now();
                            });
                            this2.connects.set(this2.connects.get() + 1);
                            open_span.end();
                            cb(Ok(conn));
                        }
                    }
                });
            }
        });
    }

    /// Finds a ready node via least-connections, resuming the tenant when
    /// it is scaled to zero.
    fn with_ready_node(
        self: &Rc<Self>,
        tenant: TenantId,
        cb: impl FnOnce(Result<Rc<SqlNode>, ProxyError>) + 'static,
    ) {
        let ready = self.registry.with_tenant(tenant, |e| e.ready_nodes()).unwrap_or_default();
        if let Some(node) = ready.iter().min_by_key(|n| n.session_count()) {
            cb(Ok(Rc::clone(node)));
            return;
        }
        // Scale from zero: one resume at a time; concurrent connects wait.
        let mut resuming = self.resuming.borrow_mut();
        let waiters = resuming.entry(tenant).or_default();
        waiters.push(Box::new(cb));
        if waiters.len() > 1 {
            return; // resume already in flight
        }
        drop(resuming);
        self.cold_starts.set(self.cold_starts.get() + 1);
        let this = Rc::clone(self);
        let sdb = (self.system_db)(tenant);
        self.pool.acquire_and_start(&self.registry.clone(), &sdb, tenant, move |node| {
            this.registry.with_tenant(tenant, |e| {
                e.suspended = false;
                e.nodes.push(Rc::clone(&node));
                e.last_active = this.sim.now();
            });
            let waiters = this.resuming.borrow_mut().remove(&tenant).unwrap_or_default();
            for w in waiters {
                w(Ok(Rc::clone(&node)));
            }
        });
    }

    /// Executes a statement on a connection (client → proxy → node hops
    /// included). If the backend died abruptly since the last statement,
    /// the session is first revived on another node from its cached
    /// snapshot, transparently to the client (§4.2.4).
    pub fn execute(
        self: &Rc<Self>,
        conn: &Rc<Connection>,
        sql: &str,
        params: Vec<Datum>,
        cb: impl FnOnce(Result<QueryOutput, SqlError>) + 'static,
    ) {
        // Shed load for tenants whose backend path keeps failing: the
        // breaker fast-fails at the proxy without touching the SQL or KV
        // layers, so a dark-region tenant cannot tie up shared capacity.
        if !self.breaker_allows(conn.tenant) {
            self.shed_statements.set(self.shed_statements.get() + 1);
            cb(Err(SqlError::Kv(KvError::Unavailable)));
            return;
        }
        // The statement's deadline is stamped once here; revival and
        // crash-mid-flight re-routes all count against the same budget.
        let deadline = match self.statement_deadline.get() {
            Some(d) => Deadline::at(self.sim.now() + d),
            None => Deadline::NONE,
        };
        self.execute_boxed(conn, sql, params, deadline, Box::new(cb));
    }

    /// Changes the per-statement deadline for subsequent statements
    /// (`None` = unbounded). Lets operators widen the budget for offline
    /// audit sessions without rebuilding the proxy.
    pub fn set_statement_deadline(&self, deadline: Option<Duration>) {
        self.statement_deadline.set(deadline);
    }

    fn breaker_allows(&self, tenant: TenantId) -> bool {
        let now = self.sim.now();
        self.breakers
            .borrow_mut()
            .entry(tenant)
            .or_insert_with(|| Breaker::new(BreakerConfig::default()))
            .allow(now)
    }

    /// Records a statement outcome into the tenant's breaker. Only
    /// infrastructure failures count: user errors (parse, constraint, …)
    /// prove the backend is reachable and count as successes.
    fn breaker_record(&self, tenant: TenantId, r: &Result<QueryOutput, SqlError>) {
        let infra_failure = matches!(
            r,
            Err(SqlError::Unavailable)
                | Err(SqlError::Kv(
                    KvError::Unavailable
                        | KvError::NodeUnavailable
                        | KvError::DeadlineExceeded
                        | KvError::AdmissionTimeout
                ))
        );
        let now = self.sim.now();
        let mut breakers = self.breakers.borrow_mut();
        let b = breakers.entry(tenant).or_insert_with(|| Breaker::new(BreakerConfig::default()));
        if infra_failure {
            b.record_failure(now);
        } else {
            b.record_success(now);
        }
    }

    /// Total per-tenant breaker trips (for metrics).
    pub fn breaker_trips(&self) -> u64 {
        self.breakers.borrow().values().map(|b| b.trips()).sum()
    }

    /// The p99 client-observed statement latency for one tenant, if it
    /// has issued any statements.
    pub fn tenant_statement_p99(&self, tenant: TenantId) -> Option<Duration> {
        self.tenant_latency
            .borrow()
            .get(&tenant)
            .filter(|h| h.count() > 0)
            .map(|h| h.quantile_duration(0.99))
    }

    /// `execute` with a boxed callback: the crash-mid-flight path in
    /// [`Self::execute_inner`] re-routes through here, and boxing keeps
    /// the recursive instantiation's type from growing without bound.
    fn execute_boxed(
        self: &Rc<Self>,
        conn: &Rc<Connection>,
        sql: &str,
        params: Vec<Datum>,
        deadline: Deadline,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        // One span (and one latency sample) per attempt: a crash-mid-flight
        // re-route through `execute` records a fresh nested attempt.
        let span = trace::child("proxy.execute");
        span.tag("tenant", conn.tenant);
        span.tag("session", conn.session());
        let begin = self.sim.now();
        let tenant = conn.tenant;
        let this0 = Rc::clone(self);
        let cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)> = {
            let span = span.clone();
            Box::new(move |r: Result<QueryOutput, SqlError>| {
                let elapsed = this0.sim.now().duration_since(begin);
                this0.statement_latency.borrow_mut().record_duration(elapsed);
                this0
                    .tenant_latency
                    .borrow_mut()
                    .entry(tenant)
                    .or_default()
                    .record_duration(elapsed);
                this0.breaker_record(tenant, &r);
                span.end();
                cb(r)
            })
        };
        let _scope = span.enter();
        if conn.node().state() == NodeState::Stopped {
            let this = Rc::clone(self);
            let conn2 = Rc::clone(conn);
            let sql = sql.to_string();
            let revive_span = trace::child("session.revive");
            let ambient = trace::current();
            self.revive(conn, move |r| {
                revive_span.end();
                let _scope = ambient.enter();
                match r {
                    Err(e) => cb(Err(e)),
                    Ok(()) => this.execute_inner(&conn2, &sql, params, deadline, cb),
                }
            });
            return;
        }
        self.execute_inner(conn, sql, params, deadline, cb);
    }

    fn execute_inner(
        self: &Rc<Self>,
        conn: &Rc<Connection>,
        sql: &str,
        params: Vec<Datum>,
        deadline: Deadline,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        let node = conn.node();
        let session = conn.session();
        let hop = self.config.hop_latency * 2;
        let sim = self.sim.clone();
        let sql = sql.to_string();
        let registry = self.registry.clone();
        let tenant = conn.tenant;
        let this = Rc::clone(self);
        let conn2 = Rc::clone(conn);
        let ambient = trace::current();
        let req_hop = ambient.child("network.hop");
        self.sim.schedule_after(hop, move || {
            req_hop.end();
            let _scope = ambient.enter();
            if conn2.node().state() == NodeState::Stopped {
                // The backend crashed while the request was on the wire;
                // route back through `execute`, which revives first (the
                // original statement deadline keeps counting).
                this.execute_boxed(&conn2, &sql, params, deadline, cb);
                return;
            }
            registry.with_tenant(tenant, |e| e.last_active = sim.now());
            let sim2 = sim.clone();
            let node2 = Rc::clone(&node);
            let ambient2 = trace::current();
            node.execute_with_deadline(session, &sql, params, deadline, move |r| {
                // Refresh the revival snapshot whenever the session is
                // idle afterwards, so a later crash resumes from the
                // latest committed state.
                if r.is_ok() {
                    if let Ok(snap) = node2.serialize_session(session) {
                        *conn2.snapshot.borrow_mut() = Some(snap);
                    }
                }
                let resp_hop = ambient2.child("network.hop");
                sim2.schedule_after(hop, move || {
                    resp_hop.end();
                    cb(r)
                });
            });
        });
    }

    /// Revives a connection whose backend died abruptly: prunes the dead
    /// node from orchestration state (so the autoscaler backfills),
    /// restores the last idle snapshot on a ready node — starting one
    /// from the warm pool when the tenant has none — and repoints the
    /// connection.
    fn revive(
        self: &Rc<Self>,
        conn: &Rc<Connection>,
        cb: impl FnOnce(Result<(), SqlError>) + 'static,
    ) {
        self.registry.prune_stopped(conn.tenant);
        let Some(snapshot) = conn.snapshot.borrow().clone() else {
            cb(Err(SqlError::Retry("backend died with no revival snapshot".into())));
            return;
        };
        let this = Rc::clone(self);
        let conn2 = Rc::clone(conn);
        self.with_ready_node(conn.tenant, move |node| {
            let Ok(node) = node else {
                cb(Err(SqlError::Retry("no SQL node available for session revival".into())));
                return;
            };
            // Wire-format roundtrip, as in production; the revival token
            // is re-verified by the restoring node.
            let Some(decoded) = SessionSnapshot::decode(&snapshot.encode()) else {
                cb(Err(SqlError::State("snapshot decode failed".into())));
                return;
            };
            match node.restore_session(&decoded) {
                Err(e) => cb(Err(e)),
                Ok(new_session) => {
                    *conn2.node.borrow_mut() = Rc::clone(&node);
                    conn2.session.set(new_session);
                    conn2.migrations.set(conn2.migrations.get() + 1);
                    this.migrations.set(this.migrations.get() + 1);
                    cb(Ok(()));
                }
            }
        });
    }

    /// Closes a connection.
    pub fn close(&self, conn: &Rc<Connection>) {
        conn.node().close_session(conn.session());
        self.conns.borrow_mut().remove(Slot::from_bits(conn.slot.get()));
        self.registry.with_tenant(conn.tenant, |e| {
            e.connections = e.connections.saturating_sub(1);
        });
    }

    /// Migrates one connection to `target` if its session is idle;
    /// returns whether the migration happened.
    pub fn migrate(&self, conn: &Rc<Connection>, target: &Rc<SqlNode>) -> Result<(), SqlError> {
        let old = conn.node();
        if Rc::ptr_eq(&old, target) {
            return Ok(());
        }
        let snapshot: SessionSnapshot = old.serialize_session(conn.session())?;
        // Wire format roundtrip, as in production.
        let decoded = SessionSnapshot::decode(&snapshot.encode())
            .ok_or(SqlError::State("snapshot decode failed".into()))?;
        let new_session = target.restore_session(&decoded)?;
        old.close_session(conn.session());
        *conn.node.borrow_mut() = Rc::clone(target);
        conn.session.set(new_session);
        conn.migrations.set(conn.migrations.get() + 1);
        self.migrations.set(self.migrations.get() + 1);
        // The serialized state is also the freshest revival snapshot.
        *conn.snapshot.borrow_mut() = Some(snapshot);
        Ok(())
    }

    /// Periodic connection rebalancing (§4.2.2): drains first, then
    /// smooths imbalance across ready nodes.
    pub fn rebalance(self: &Rc<Self>) {
        // The slab iterates in slot-index order, which is deterministic
        // (LIFO slot reuse) — migration order and thus pod placement
        // reproduce exactly under the same seed. Collected up front
        // because migrating re-enters the conn slab.
        let conns: Vec<Rc<Connection>> =
            self.conns.borrow().iter().map(|(_, c)| c.clone()).collect();
        for conn in conns {
            let node = conn.node();
            if node.state() == NodeState::Stopped {
                // Dead backend: its sessions are gone, so the orderly
                // serialize-and-migrate path cannot work. Revive from the
                // cached snapshot instead.
                self.revive(&conn, |_| {});
                continue;
            }
            if node.state() == NodeState::Draining {
                let ready =
                    self.registry.with_tenant(conn.tenant, |e| e.ready_nodes()).unwrap_or_default();
                if let Some(target) = ready.iter().min_by_key(|n| n.session_count()) {
                    if self.migrate(&conn, target).is_err() {
                        // Drain migration is best-effort: the conn stays on
                        // the draining node and the next sweep retries.
                        self.migration_failures.set(self.migration_failures.get() + 1);
                    }
                }
                continue;
            }
            // Smooth distribution: move from crowded to sparse nodes.
            let ready =
                self.registry.with_tenant(conn.tenant, |e| e.ready_nodes()).unwrap_or_default();
            if ready.len() < 2 {
                continue;
            }
            if let Some(target) = ready.iter().min_by_key(|n| n.session_count()) {
                let here = node.session_count() as u64;
                let there = target.session_count() as u64;
                if here > there + self.config.rebalance_threshold
                    && self.migrate(&conn, target).is_err()
                {
                    self.migration_failures.set(self.migration_failures.get() + 1);
                }
            }
        }
    }

    /// Open proxied connections.
    pub fn connection_count(&self) -> usize {
        self.conns.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ColdStartConfig;
    use crdb_kv::client::KvClient;
    use crdb_kv::cluster::{KvCluster, KvClusterConfig};
    use crdb_sim::{Location, Topology};
    use crdb_sql::node::SqlNodeConfig;
    use crdb_util::{RegionId, SqlInstanceId};

    fn fixture() -> (Sim, Rc<Proxy>, Registry) {
        let sim = Sim::new(7);
        let cluster = KvCluster::new(
            &sim,
            Topology::single_region("us-east1", 3),
            KvClusterConfig::default(),
        );
        let cert = cluster.create_tenant(TenantId(2));
        let sim2 = sim.clone();
        let next_id = Rc::new(Cell::new(1u64));
        let factory = {
            let cluster = cluster.clone();
            Rc::new(move |_tenant: TenantId| {
                let client =
                    KvClient::new(cluster.clone(), cert.clone(), Location::new(RegionId(0), 0));
                let id = next_id.get();
                next_id.set(id + 1);
                SqlNode::new(&sim2, SqlInstanceId(id), client, SqlNodeConfig::default())
            })
        };
        let registry = Registry::new(factory);
        registry.add_tenant(TenantId(2), sim.now());
        let pool = WarmPool::new(&sim, ColdStartConfig::default());
        let sdb: SystemDbProvider =
            Rc::new(|_| SystemDatabase::optimized(RegionId(0), vec![RegionId(0)]));
        let proxy = Proxy::start(&sim, ProxyConfig::default(), registry.clone(), pool, sdb);
        (sim, proxy, registry)
    }

    #[test]
    fn first_auth_failure_backs_off_exactly_one_base() {
        let (sim, proxy, _registry) = fixture();
        proxy.record_auth_failure("203.0.113.9");
        assert!(!proxy.check_throttle("203.0.113.9"));
        {
            let throttle = proxy.throttle.borrow();
            let entry = throttle.get("203.0.113.9").unwrap();
            assert_eq!(entry.consecutive_failures, 1);
            assert_eq!(entry.blocked_until, sim.now() + proxy.config.auth_backoff_base);
        }
        // Once exactly one base interval has elapsed, the source may retry.
        sim.schedule_after(proxy.config.auth_backoff_base, || {});
        sim.run_for(proxy.config.auth_backoff_base);
        assert!(proxy.check_throttle("203.0.113.9"));
    }

    #[test]
    fn auth_backoff_saturates_at_cap_for_long_streaks() {
        let (sim, proxy, _registry) = fixture();
        // Far past both the exponent clamp and the cap; must not overflow.
        for _ in 0..40 {
            proxy.record_auth_failure("203.0.113.9");
        }
        {
            let throttle = proxy.throttle.borrow();
            let entry = throttle.get("203.0.113.9").unwrap();
            assert_eq!(entry.consecutive_failures, 40);
            assert_eq!(entry.blocked_until, sim.now() + proxy.config.auth_backoff_cap);
        }
        // A success clears the streak entirely.
        proxy.record_auth_success("203.0.113.9");
        assert!(proxy.check_throttle("203.0.113.9"));
        proxy.record_auth_failure("203.0.113.9");
        let throttle = proxy.throttle.borrow();
        assert_eq!(throttle.get("203.0.113.9").unwrap().consecutive_failures, 1);
    }

    #[test]
    fn statement_deadline_bounds_kv_outage_and_breaker_sheds() {
        let sim = Sim::new(21);
        let cluster = KvCluster::new(
            &sim,
            Topology::single_region("us-east1", 3),
            KvClusterConfig::default(),
        );
        let cert = cluster.create_tenant(TenantId(2));
        let sim2 = sim.clone();
        let next_id = Rc::new(Cell::new(1u64));
        let factory = {
            let cluster = cluster.clone();
            Rc::new(move |_tenant: TenantId| {
                let client =
                    KvClient::new(cluster.clone(), cert.clone(), Location::new(RegionId(0), 0));
                let id = next_id.get();
                next_id.set(id + 1);
                SqlNode::new(&sim2, SqlInstanceId(id), client, SqlNodeConfig::default())
            })
        };
        let registry = Registry::new(factory);
        registry.add_tenant(TenantId(2), sim.now());
        let pool = WarmPool::new(&sim, ColdStartConfig::default());
        let sdb: SystemDbProvider =
            Rc::new(|_| SystemDatabase::optimized(RegionId(0), vec![RegionId(0)]));
        let proxy = Proxy::start(
            &sim,
            ProxyConfig { statement_deadline: Some(dur::secs(2)), ..Default::default() },
            registry.clone(),
            pool,
            sdb,
        );

        let slot = Rc::new(RefCell::new(None));
        {
            let s = Rc::clone(&slot);
            proxy.connect(TenantId(2), "10.0.0.1", "app", true, move |r| {
                *s.borrow_mut() = Some(r.expect("connect"));
            });
        }
        sim.run_for(dur::secs(10));
        let conn = slot.borrow_mut().take().expect("connected");
        let run = |sql: &str, window: Duration| -> (Result<QueryOutput, SqlError>, Duration) {
            let out = Rc::new(RefCell::new(None));
            let o = Rc::clone(&out);
            let begin = sim.now();
            let s2 = sim.clone();
            proxy.execute(&conn, sql, vec![], move |r| {
                *o.borrow_mut() = Some((r, s2.now().duration_since(begin)))
            });
            sim.run_for(window);
            let r = out.borrow_mut().take();
            r.expect("completed")
        };
        run("CREATE TABLE t (id INT PRIMARY KEY)", dur::secs(30)).0.expect("ok");

        // Total KV outage: without a deadline the client's routing budget
        // would retry for ~19s per statement. The propagated deadline
        // bounds each failure near 2s, and five consecutive
        // infrastructure failures trip the tenant's breaker.
        for id in cluster.node_ids() {
            cluster.set_node_alive(id, false);
        }
        // 1s windows keep each follow-up statement inside the breaker's
        // 3s cooldown, so the trip is observable as a shed below.
        for i in 0..5 {
            let (r, elapsed) = run("SELECT * FROM t", dur::secs(1));
            assert!(r.is_err(), "statement {i} fails during the outage");
            assert!(elapsed < dur::secs(4), "deadline bounds attempt {i}: {elapsed:?}");
        }
        assert!(proxy.breaker_trips() >= 1, "breaker tripped after the failure streak");

        // The open breaker sheds instantly at the proxy.
        let (r, elapsed) = run("SELECT * FROM t", dur::secs(1));
        assert!(matches!(r, Err(SqlError::Kv(KvError::Unavailable))), "shed error: {r:?}");
        assert_eq!(elapsed, Duration::ZERO, "shed without touching SQL or KV");
        assert!(proxy.shed_statements.get() >= 1);

        // Recovery: nodes return, the breaker's cooldown lapses, and the
        // half-open probe closes it again.
        for id in cluster.node_ids() {
            cluster.set_node_alive(id, true);
        }
        sim.run_for(dur::secs(30));
        let (r, _) = run("SELECT * FROM t", dur::secs(30));
        r.expect("service restored after recovery");
    }

    #[test]
    fn crashed_backend_session_revives_on_fresh_node() {
        let (sim, proxy, registry) = fixture();
        let slot = Rc::new(RefCell::new(None));
        {
            let s = Rc::clone(&slot);
            proxy.connect(TenantId(2), "10.0.0.1", "app", true, move |r| {
                *s.borrow_mut() = Some(r.expect("connect"));
            });
        }
        sim.run_for(dur::secs(10));
        let conn = slot.borrow_mut().take().expect("connected");
        let run = |sql: &str| {
            let out = Rc::new(RefCell::new(None));
            let o = Rc::clone(&out);
            proxy.execute(&conn, sql, vec![], move |r| *o.borrow_mut() = Some(r));
            sim.run_for(dur::secs(10));
            let r = out.borrow_mut().take();
            r.expect("completed").expect("ok")
        };
        run("CREATE TABLE t (id INT PRIMARY KEY, v STRING)");
        run("INSERT INTO t VALUES (1, 'x'), (2, 'y')");

        let old = conn.node();
        old.crash();
        assert_eq!(registry.node_count(TenantId(2)), 1, "not pruned until revival");

        // The next statement transparently revives the session elsewhere.
        let out = run("SELECT COUNT(*) FROM t");
        assert_eq!(out.rows[0][0].to_string(), "2", "acknowledged writes survive the crash");
        assert_eq!(conn.migrations.get(), 1);
        assert!(!Rc::ptr_eq(&old, &conn.node()), "session moved off the dead node");
        assert_eq!(conn.node().state(), NodeState::Ready);
        assert_eq!(registry.node_count(TenantId(2)), 1, "dead node pruned, replacement started");
    }
}
