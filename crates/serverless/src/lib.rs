//! Serverless orchestration (§4).
//!
//! The components that turn a multi-tenant CockroachDB into a *serverless*
//! service: scale to zero, sub-second cold starts, responsive autoscaling,
//! and transparent connection migration. The Kubernetes control plane of
//! §4.2.1 is replaced by the discrete-event simulator (DESIGN.md §1); the
//! control loops themselves are implemented faithfully.
//!
//! - [`registry`] — shared per-tenant state: active/draining SQL nodes,
//!   suspension, connection counts.
//! - [`pool`] — the pre-warmed pod pool and both cold-start flows
//!   (§4.3.1): the *unoptimized* flow starts the SQL process only after
//!   tenant assignment (and pays TCP-reset retries); the *optimized* flow
//!   pre-starts processes that watch for certificates.
//! - [`proxy`] — tenant routing from the startup message, least-connection
//!   balancing, connection migration via session serialization (§4.2.2,
//!   §4.2.4), auth-failure throttling and IP allow/deny lists.
//! - [`autoscaler`] — the §4.2.3 algorithm: capacity = max(4 × avg CPU,
//!   1.33 × max CPU) over a 5-minute window, quantized to 4-vCPU nodes,
//!   with draining-before-shutdown and suspend-at-zero.
//! - [`metrics`] — the metrics pipeline model (§4.3.2): a stacked-polling
//!   Prometheus-style path versus the 3-second direct scrape.

#![warn(missing_docs)]

pub mod autoscaler;
pub mod metrics;
pub mod pool;
pub mod proxy;
pub mod registry;

pub use autoscaler::{Autoscaler, AutoscalerConfig};
pub use metrics::{MetricsPipeline, PipelineConfig};
pub use pool::{ColdStartConfig, WarmPool};
pub use proxy::{Proxy, ProxyConfig, ProxyError};
pub use registry::{Registry, TenantEntry};
