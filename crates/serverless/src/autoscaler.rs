//! The autoscaler (§4.2.3).
//!
//! "The autoscaler determines the ideal number of SQL nodes to assign to
//! each tenant based on the combined CPU usage of the tenant's SQL nodes.
//! Two metrics are used: the average CPU usage over the last 5 minutes and
//! the peak CPU usage during the last 5 minutes. The autoscaler ensures
//! the total capacity available to SQL nodes is 4x the average CPU usage
//! or 1.33x the max CPU usage, whichever is larger."
//!
//! Scale-down puts excess nodes into draining (reused before warm-pool
//! pods on the next scale-up); a draining node shuts down once its
//! sessions close or after ten minutes. A tenant with no load is
//! eventually suspended — scaled to zero.

use std::cell::Cell;
use std::rc::Rc;
use std::time::Duration;

use crdb_sim::Sim;
use crdb_sql::node::{NodeState, SqlNode};
use crdb_util::time::dur;
use crdb_util::TenantId;

use crate::metrics::MetricsPipeline;
use crate::pool::WarmPool;
use crate::proxy::SystemDbProvider;
use crate::registry::Registry;

/// Autoscaler tuning (§4.2.3 values as defaults).
#[derive(Debug, Clone)]
pub struct AutoscalerConfig {
    /// Capacity multiplier on average CPU (paper: 4×).
    pub avg_factor: f64,
    /// Capacity multiplier on peak CPU (paper: 1.33×).
    pub max_factor: f64,
    /// The metrics window (paper: 5 minutes).
    pub window: Duration,
    /// vCPUs per SQL node (paper: 4).
    pub node_vcpus: f64,
    /// Reconciliation interval (paper: 3 s direct scrape).
    pub reconcile_interval: Duration,
    /// Maximum time a draining node waits for connections to close
    /// (paper: 10 minutes).
    pub drain_timeout: Duration,
    /// Idle time (no connections, no usage) before suspension.
    pub suspend_after: Duration,
    /// Per-tenant vCPU usage below this counts as idle: a running SQL
    /// node burns ~0.15 vCPU on keepalives/GC even with no queries
    /// (§6.2), which must not count as activity.
    pub idle_cpu_threshold: f64,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            avg_factor: 4.0,
            max_factor: 1.33,
            window: dur::mins(5),
            node_vcpus: 4.0,
            reconcile_interval: dur::secs(3),
            drain_timeout: dur::mins(10),
            suspend_after: dur::mins(5),
            idle_cpu_threshold: 0.25,
        }
    }
}

/// Scaling inputs for one tenant (exposed for the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleInputs {
    /// Average vCPU usage over the window.
    pub avg: f64,
    /// Peak vCPU usage over the window.
    pub max: f64,
}

/// The §4.2.3 target: `max(avg_factor · avg, max_factor · max)` vCPUs,
/// quantized up to whole nodes.
pub fn target_nodes(config: &AutoscalerConfig, inputs: ScaleInputs) -> usize {
    let capacity = (config.avg_factor * inputs.avg).max(config.max_factor * inputs.max);
    (capacity / config.node_vcpus).ceil() as usize
}

/// The autoscaler.
pub struct Autoscaler {
    sim: Sim,
    config: AutoscalerConfig,
    registry: Registry,
    pipeline: Rc<MetricsPipeline>,
    pool: Rc<WarmPool>,
    system_db: SystemDbProvider,
    /// Nodes added (from pool or reclaimed from draining).
    pub scale_ups: Cell<u64>,
    /// Nodes moved to draining.
    pub scale_downs: Cell<u64>,
    /// Tenants suspended.
    pub suspensions: Cell<u64>,
}

impl Autoscaler {
    /// Creates and starts the reconcile loop.
    pub fn start(
        sim: &Sim,
        config: AutoscalerConfig,
        registry: Registry,
        pipeline: Rc<MetricsPipeline>,
        pool: Rc<WarmPool>,
        system_db: SystemDbProvider,
    ) -> Rc<Autoscaler> {
        let scaler = Rc::new(Autoscaler {
            sim: sim.clone(),
            config: config.clone(),
            registry,
            pipeline,
            pool,
            system_db,
            scale_ups: Cell::new(0),
            scale_downs: Cell::new(0),
            suspensions: Cell::new(0),
        });
        let s = Rc::clone(&scaler);
        sim.schedule_periodic(config.reconcile_interval, move || {
            s.reconcile();
            true
        });
        scaler
    }

    /// The scaling inputs the autoscaler currently sees for a tenant.
    pub fn inputs(&self, tenant: TenantId) -> ScaleInputs {
        let samples = self.pipeline.visible_window(tenant, self.sim.now(), self.config.window);
        if samples.is_empty() {
            return ScaleInputs { avg: 0.0, max: 0.0 };
        }
        let avg = samples.iter().map(|(_, v)| v).sum::<f64>() / samples.len() as f64;
        let max = samples.iter().map(|(_, v)| *v).fold(0.0, f64::max);
        ScaleInputs { avg, max }
    }

    /// One reconcile pass over every *active* tenant. Suspended tenants
    /// never appear here — resume is connection-driven (proxy) — so a
    /// pass costs O(running tenants) even with 20K suspended.
    pub fn reconcile(&self) {
        let now = self.sim.now();
        for tenant in self.registry.active_tenant_ids() {
            // Crashed pods leave Stopped nodes behind; drop them from the
            // books so `current` reflects real capacity and is backfilled.
            self.registry.prune_stopped(tenant);
            let inputs = self.inputs(tenant);
            let mut target = target_nodes(&self.config, inputs);
            let (current, connections, last_active) = self
                .registry
                .with_tenant(tenant, |e| (e.nodes.len(), e.connections, e.last_active))
                .unwrap_or((0, 0, now));

            // An active tenant keeps at least one node.
            if connections > 0 {
                target = target.max(1);
            }

            let node_count = self.registry.node_count(tenant).max(1) as f64;
            let busy = inputs.avg > self.config.idle_cpu_threshold * node_count;
            if busy || connections > 0 {
                self.registry.with_tenant(tenant, |e| e.last_active = now);
            }

            if target > current {
                self.scale_up(tenant, target - current);
            } else if target < current {
                self.scale_down(tenant, current - target);
            }

            // Drain completion and timeout.
            self.finish_draining(tenant, now);

            // Suspension: no connections and no recent activity.
            if connections == 0
                && !busy
                && now.duration_since(last_active) >= self.config.suspend_after
            {
                self.suspend(tenant);
            }
        }
    }

    fn scale_up(&self, tenant: TenantId, n: usize) {
        for _ in 0..n {
            // Reuse a draining node first (§4.2.3: "draining nodes are
            // reused before pre-warmed ones").
            let reclaimed = self
                .registry
                .with_tenant(tenant, |e| {
                    if let Some(pos) = e
                        .draining
                        .iter()
                        .position(|(n, _)| n.state() == NodeState::Draining && !n.is_retired())
                    {
                        let (node, _) = e.draining.remove(pos);
                        // Resurrect: draining nodes still serve; flip back.
                        e.nodes.push(Rc::clone(&node));
                        return Some(node);
                    }
                    None
                })
                .flatten();
            if let Some(node) = reclaimed {
                node.undrain();
                self.scale_ups.set(self.scale_ups.get() + 1);
                continue;
            }
            // Otherwise pull from the warm pool.
            let registry = self.registry.clone();
            let pool = Rc::clone(&self.pool);
            self.scale_ups.set(self.scale_ups.get() + 1);
            let sdb = (self.system_db)(tenant);
            pool.acquire_and_start(&registry.clone(), &sdb, tenant, move |node| {
                registry.with_tenant(tenant, |e| {
                    if !e.suspended {
                        e.nodes.push(node);
                    } else {
                        node.shutdown();
                    }
                });
            });
        }
    }

    fn scale_down(&self, tenant: TenantId, n: usize) {
        let now = self.sim.now();
        self.registry.with_tenant(tenant, |e| {
            for _ in 0..n {
                if e.nodes.len() <= 1 && e.connections > 0 {
                    break; // keep one node for open connections
                }
                // Drain the node with the fewest sessions.
                let idx =
                    match e.nodes.iter().enumerate().min_by_key(|(_, node)| node.session_count()) {
                        Some((i, _)) => i,
                        None => break,
                    };
                let node = e.nodes.remove(idx);
                node.drain();
                e.draining.push((node, now));
                self.scale_downs.set(self.scale_downs.get() + 1);
            }
        });
    }

    fn finish_draining(&self, tenant: TenantId, now: crdb_util::time::SimTime) {
        let timeout = self.config.drain_timeout;
        self.registry.with_tenant(tenant, |e| {
            e.draining.retain(|(node, since)| {
                let expired = now.duration_since(*since) >= timeout;
                if node.session_count() == 0 || expired {
                    node.shutdown();
                    false
                } else {
                    true
                }
            });
        });
    }

    fn suspend(&self, tenant: TenantId) {
        self.registry.with_tenant(tenant, |e| {
            for node in e.nodes.drain(..) {
                node.shutdown();
            }
            for (node, _) in e.draining.drain(..) {
                node.shutdown();
            }
            e.suspended = true;
        });
        // The pipeline stops sampling suspended tenants; drop the series
        // so a later resume starts from a clean window (equivalent to the
        // zeros a kept-on sampler would have recorded).
        self.pipeline.forget_tenant(tenant);
        self.suspensions.set(self.suspensions.get() + 1);
    }

    /// Direct access to configuration.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }
}

/// Extension for [`SqlNode`]: reverse a drain (scale-up reuse).
trait Undrain {
    fn undrain(&self);
}

impl Undrain for SqlNode {
    fn undrain(&self) {
        // SqlNode has no public un-drain; Ready is restored through its
        // state cell via drain()'s inverse, which `set_ready_for_reuse`
        // models below.
        self.set_ready_for_reuse();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_follows_paper_example() {
        // §4.2.3: avg 2.5 vCPU -> 10 vCPU -> 3 nodes of 4 vCPU.
        let cfg = AutoscalerConfig::default();
        let t = target_nodes(&cfg, ScaleInputs { avg: 2.5, max: 2.5 });
        assert_eq!(t, 3);
        // Spike to 11 vCPU max -> 14.63 -> 4 nodes.
        let t = target_nodes(&cfg, ScaleInputs { avg: 2.5, max: 11.0 });
        assert_eq!(t, 4);
    }

    #[test]
    fn zero_load_targets_zero() {
        let cfg = AutoscalerConfig::default();
        assert_eq!(target_nodes(&cfg, ScaleInputs { avg: 0.0, max: 0.0 }), 0);
    }

    #[test]
    fn max_factor_dominates_spikes() {
        let cfg = AutoscalerConfig::default();
        // avg small, max large: 1.33x max wins.
        let t = target_nodes(&cfg, ScaleInputs { avg: 0.5, max: 12.0 });
        assert_eq!(t, 4); // 15.96 / 4 = 3.99 -> 4
    }
}
