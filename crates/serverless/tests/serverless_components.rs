//! Integration tests for the serverless components working together:
//! autoscaler + pipeline + pool + registry, without the full SQL stack
//! where possible, and proxy behaviours that the end-to-end suites don't
//! pin down.

use std::cell::Cell;
use std::rc::Rc;

use crdb_kv::client::KvClient;
use crdb_kv::cluster::{KvCluster, KvClusterConfig};
use crdb_serverless::autoscaler::{Autoscaler, AutoscalerConfig};
use crdb_serverless::metrics::{MetricsPipeline, PipelineConfig};
use crdb_serverless::pool::{ColdStartConfig, WarmPool};
use crdb_serverless::proxy::{Proxy, ProxyConfig};
use crdb_serverless::registry::Registry;
use crdb_sim::{Location, Sim, Topology};
use crdb_sql::node::{NodeState, SqlNode, SqlNodeConfig};
use crdb_sql::system_db::SystemDatabase;
use crdb_util::time::dur;
use crdb_util::{RegionId, SqlInstanceId, TenantId};

struct Fixture {
    sim: Sim,
    registry: Registry,
    pool: Rc<WarmPool>,
    proxy: Rc<Proxy>,
    autoscaler: Rc<Autoscaler>,
}

fn fixture(seed: u64, pipeline: PipelineConfig) -> Fixture {
    fixture_opts(seed, pipeline, true)
}

fn fixture_opts(seed: u64, pipeline: PipelineConfig, with_autoscaler: bool) -> Fixture {
    let sim = Sim::new(seed);
    let kv =
        KvCluster::new(&sim, Topology::single_region("us-east1", 3), KvClusterConfig::default());
    let cert = kv.create_tenant(TenantId(2));
    let next = Rc::new(Cell::new(1u64));
    let factory = {
        let kv = kv.clone();
        let sim = sim.clone();
        let next = Rc::clone(&next);
        Rc::new(move |_tenant: TenantId| {
            let client = KvClient::new(kv.clone(), cert.clone(), Location::new(RegionId(0), 0));
            let id = next.get();
            next.set(id + 1);
            SqlNode::new(&sim, SqlInstanceId(id), client, SqlNodeConfig::default())
        })
    };
    let registry = Registry::new(factory);
    registry.add_tenant(TenantId(2), sim.now());
    let pool = WarmPool::new(&sim, ColdStartConfig::default());
    let provider: crdb_serverless::proxy::SystemDbProvider =
        Rc::new(|_t| SystemDatabase::optimized(RegionId(0), vec![RegionId(0)]));
    let pipeline = MetricsPipeline::start(&sim, registry.clone(), pipeline);
    let proxy = Proxy::start(
        &sim,
        ProxyConfig::default(),
        registry.clone(),
        Rc::clone(&pool),
        Rc::clone(&provider),
    );
    let autoscaler = Autoscaler::start(
        // An idle scaler (yearly reconcile) when the test drives the
        // registry manually.
        &sim,
        AutoscalerConfig {
            suspend_after: dur::secs(40),
            reconcile_interval: if with_autoscaler { dur::secs(3) } else { dur::secs(31_536_000) },
            ..Default::default()
        },
        registry.clone(),
        pipeline,
        Rc::clone(&pool),
        provider,
    );
    Fixture { sim, registry, pool, proxy, autoscaler }
}

#[test]
fn concurrent_connects_share_one_resume() {
    let f = fixture(1, PipelineConfig::direct());
    let connected = Rc::new(Cell::new(0u32));
    for i in 0..5 {
        let c = Rc::clone(&connected);
        f.proxy.connect(TenantId(2), &format!("10.0.0.{i}"), "u", true, move |r| {
            r.expect("connect");
            c.set(c.get() + 1);
        });
    }
    f.sim.run_for(dur::secs(10));
    assert_eq!(connected.get(), 5, "all five connects succeeded");
    assert_eq!(f.proxy.cold_starts.get(), 1, "one cold start served them all");
    assert_eq!(f.registry.node_count(TenantId(2)), 1);
    assert_eq!(*f.pool.acquired.borrow(), 1);
}

#[test]
fn least_connections_balances_across_nodes() {
    // Manual node management: the autoscaler is parked.
    let f = fixture_opts(2, PipelineConfig::direct(), false);
    // Bring up the first node via a connect, then add a second node
    // manually (as a scale-up would).
    let first = Rc::new(Cell::new(false));
    {
        let fl = Rc::clone(&first);
        f.proxy.connect(TenantId(2), "10.1.1.1", "u", true, move |r| {
            r.expect("connect");
            fl.set(true);
        });
    }
    f.sim.run_for(dur::secs(5));
    assert!(first.get());
    let sdb = SystemDatabase::optimized(RegionId(0), vec![RegionId(0)]);
    let registry = f.registry.clone();
    f.pool.acquire_and_start(&f.registry, &sdb, TenantId(2), move |node| {
        registry.with_tenant(TenantId(2), |e| e.nodes.push(node));
    });
    f.sim.run_for(dur::secs(5));
    assert_eq!(f.registry.node_count(TenantId(2)), 2);

    // Ten more connections must spread across both nodes.
    for i in 0..10 {
        f.proxy.connect(TenantId(2), &format!("10.1.2.{i}"), "u", true, |r| {
            r.expect("connect");
        });
        f.sim.run_for(dur::ms(300));
    }
    let counts = f
        .registry
        .with_tenant(TenantId(2), |e| e.nodes.iter().map(|n| n.session_count()).collect::<Vec<_>>())
        .unwrap();
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    assert!(max - min <= 2, "least-connections balance: {counts:?}");
}

#[test]
fn prometheus_pipeline_reacts_slower_than_direct() {
    // Drive a synthetic usage step through both pipelines and measure when
    // the autoscaler's visible average first moves.
    let mut reaction = Vec::new();
    for (cfg, _name) in
        [(PipelineConfig::direct(), "direct"), (PipelineConfig::prometheus(), "prometheus")]
    {
        let f = fixture(3, cfg);
        // Bring up a node and burn CPU on it.
        let ready = Rc::new(Cell::new(false));
        {
            let r2 = Rc::clone(&ready);
            f.proxy.connect(TenantId(2), "10.2.2.2", "u", true, move |r| {
                r.expect("connect");
                r2.set(true);
            });
        }
        f.sim.run_for(dur::secs(6));
        assert!(ready.get());
        let node = f.registry.with_tenant(TenantId(2), |e| e.nodes[0].clone()).unwrap();
        assert_eq!(node.state(), NodeState::Ready);
        let step_at = f.sim.now();
        // A sustained CPU step: 2 vCPUs' worth of work every second.
        let cpu = node.cpu.clone();
        f.sim.schedule_periodic(dur::secs(1), move || {
            cpu.submit(TenantId(2), 2.0, || {});
            true
        });
        // Watch for the autoscaler's view to cross a threshold.
        let mut seen_at = None;
        for _ in 0..40 {
            f.sim.run_for(dur::secs(1));
            if f.autoscaler.inputs(TenantId(2)).max > 1.0 {
                seen_at = Some(f.sim.now().duration_since(step_at));
                break;
            }
        }
        reaction.push(seen_at.expect("step eventually visible"));
    }
    assert!(
        reaction[1] > reaction[0] + dur::secs(10),
        "prometheus pipeline reacts much slower: direct {:?} vs prometheus {:?} (paper: 20-30s vs 3s)",
        reaction[0],
        reaction[1]
    );
}

#[test]
fn autoscaler_suspends_and_pool_replenishes() {
    let f = fixture(4, PipelineConfig::direct());
    let conn = Rc::new(std::cell::RefCell::new(None));
    {
        let c = Rc::clone(&conn);
        f.proxy.connect(TenantId(2), "10.3.3.3", "u", true, move |r| {
            *c.borrow_mut() = Some(r.expect("connect"));
        });
    }
    f.sim.run_for(dur::secs(5));
    let pool_after_acquire = f.pool.available();
    let conn = conn.borrow().clone().unwrap();
    f.proxy.close(&conn);
    f.sim.run_for(dur::mins(3));
    assert!(f.registry.is_suspended(TenantId(2)), "tenant scaled to zero");
    assert!(f.autoscaler.suspensions.get() >= 1);
    assert!(f.pool.available() > pool_after_acquire, "the pool replenished after the acquisition");
}
