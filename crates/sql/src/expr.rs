//! Expression AST and evaluation.

use std::fmt;

use crate::value::{Datum, Row};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// An expression over the columns of the current scope.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal datum.
    Literal(Datum),
    /// A column reference, resolved to a scope ordinal at plan time.
    Column(usize),
    /// An unresolved column name (only before binding).
    Name(String),
    /// A prepared-statement parameter (1-based).
    Param(usize),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Type mismatch for an operator.
    TypeMismatch(&'static str),
    /// Division by zero.
    DivisionByZero,
    /// An unbound name or parameter survived to execution.
    Unbound(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeMismatch(op) => write!(f, "type mismatch in {op}"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::Unbound(n) => write!(f, "unbound reference {n}"),
        }
    }
}

impl Expr {
    /// Evaluates against a row (scope columns) with bound parameters.
    pub fn eval(&self, row: &Row, params: &[Datum]) -> Result<Datum, EvalError> {
        match self {
            Expr::Literal(d) => Ok(d.clone()),
            Expr::Column(i) => {
                row.get(*i).cloned().ok_or_else(|| EvalError::Unbound(format!("column {i}")))
            }
            Expr::Name(n) => Err(EvalError::Unbound(n.clone())),
            Expr::Param(n) => {
                params.get(*n - 1).cloned().ok_or_else(|| EvalError::Unbound(format!("${n}")))
            }
            Expr::Not(e) => match e.eval(row, params)? {
                Datum::Bool(b) => Ok(Datum::Bool(!b)),
                Datum::Null => Ok(Datum::Null),
                _ => Err(EvalError::TypeMismatch("NOT")),
            },
            Expr::Bin(op, l, r) => {
                use BinOp::*;
                match op {
                    And | Or => {
                        let lv = l.eval(row, params)?;
                        // Short-circuit.
                        match (op, &lv) {
                            (And, Datum::Bool(false)) => return Ok(Datum::Bool(false)),
                            (Or, Datum::Bool(true)) => return Ok(Datum::Bool(true)),
                            _ => {}
                        }
                        let rv = r.eval(row, params)?;
                        match (lv, rv) {
                            (Datum::Bool(a), Datum::Bool(b)) => {
                                Ok(Datum::Bool(if *op == And { a && b } else { a || b }))
                            }
                            (Datum::Null, _) | (_, Datum::Null) => Ok(Datum::Null),
                            _ => Err(EvalError::TypeMismatch("AND/OR")),
                        }
                    }
                    Eq | Ne | Lt | Le | Gt | Ge => {
                        let lv = l.eval(row, params)?;
                        let rv = r.eval(row, params)?;
                        match lv.sql_cmp(&rv) {
                            None => Ok(Datum::Null),
                            Some(ord) => {
                                let b = match op {
                                    Eq => ord.is_eq(),
                                    Ne => !ord.is_eq(),
                                    Lt => ord.is_lt(),
                                    Le => ord.is_le(),
                                    Gt => ord.is_gt(),
                                    Ge => ord.is_ge(),
                                    _ => unreachable!(),
                                };
                                Ok(Datum::Bool(b))
                            }
                        }
                    }
                    Add | Sub | Mul | Div | Mod => {
                        let lv = l.eval(row, params)?;
                        let rv = r.eval(row, params)?;
                        if lv.is_null() || rv.is_null() {
                            return Ok(Datum::Null);
                        }
                        // Integer arithmetic stays integer (except /).
                        if let (Datum::Int(a), Datum::Int(b)) = (&lv, &rv) {
                            return match op {
                                Add => Ok(Datum::Int(a.wrapping_add(*b))),
                                Sub => Ok(Datum::Int(a.wrapping_sub(*b))),
                                Mul => Ok(Datum::Int(a.wrapping_mul(*b))),
                                Mod => {
                                    if *b == 0 {
                                        Err(EvalError::DivisionByZero)
                                    } else {
                                        Ok(Datum::Int(a % b))
                                    }
                                }
                                Div => {
                                    if *b == 0 {
                                        Err(EvalError::DivisionByZero)
                                    } else {
                                        Ok(Datum::Float(*a as f64 / *b as f64))
                                    }
                                }
                                _ => unreachable!(),
                            };
                        }
                        let a = lv.as_f64().ok_or(EvalError::TypeMismatch("arith"))?;
                        let b = rv.as_f64().ok_or(EvalError::TypeMismatch("arith"))?;
                        match op {
                            Add => Ok(Datum::Float(a + b)),
                            Sub => Ok(Datum::Float(a - b)),
                            Mul => Ok(Datum::Float(a * b)),
                            Div => {
                                if b == 0.0 {
                                    Err(EvalError::DivisionByZero)
                                } else {
                                    Ok(Datum::Float(a / b))
                                }
                            }
                            Mod => Err(EvalError::TypeMismatch("%")),
                            _ => unreachable!(),
                        }
                    }
                }
            }
        }
    }

    /// Resolves [`Expr::Name`] nodes against a scope of column names;
    /// names may be qualified (`table.col`) or bare.
    pub fn bind(&mut self, scope: &[String]) -> Result<(), String> {
        match self {
            Expr::Name(n) => {
                let idx = resolve_name(scope, n)?;
                *self = Expr::Column(idx);
                Ok(())
            }
            Expr::Bin(_, l, r) => {
                l.bind(scope)?;
                r.bind(scope)
            }
            Expr::Not(e) => e.bind(scope),
            _ => Ok(()),
        }
    }

    /// Substitutes parameters with literal values (used when caching
    /// bound plans).
    pub fn references_params(&self) -> bool {
        match self {
            Expr::Param(_) => true,
            Expr::Bin(_, l, r) => l.references_params() || r.references_params(),
            Expr::Not(e) => e.references_params(),
            _ => false,
        }
    }
}

/// Resolves a possibly-qualified name in a scope. A bare name matches a
/// qualified scope entry's suffix; ambiguity is an error.
pub fn resolve_name(scope: &[String], name: &str) -> Result<usize, String> {
    let mut matches = scope
        .iter()
        .enumerate()
        .filter(|(_, s)| s.as_str() == name || s.rsplit('.').next() == Some(name));
    match (matches.next(), matches.next()) {
        (Some((i, _)), None) => Ok(i),
        (None, _) => Err(format!("column {name} not found")),
        (Some(_), Some(_)) => Err(format!("column {name} is ambiguous")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i64) -> Expr {
        Expr::Literal(Datum::Int(i))
    }

    #[test]
    fn arithmetic() {
        let e = Expr::Bin(BinOp::Add, Box::new(lit(2)), Box::new(lit(3)));
        assert_eq!(e.eval(&vec![], &[]).unwrap(), Datum::Int(5));
        let e = Expr::Bin(BinOp::Div, Box::new(lit(7)), Box::new(lit(2)));
        assert_eq!(e.eval(&vec![], &[]).unwrap(), Datum::Float(3.5));
        let e = Expr::Bin(BinOp::Div, Box::new(lit(1)), Box::new(lit(0)));
        assert_eq!(e.eval(&vec![], &[]), Err(EvalError::DivisionByZero));
        let e = Expr::Bin(BinOp::Mod, Box::new(lit(7)), Box::new(lit(3)));
        assert_eq!(e.eval(&vec![], &[]).unwrap(), Datum::Int(1));
    }

    #[test]
    fn comparisons_and_null() {
        let e = Expr::Bin(BinOp::Lt, Box::new(lit(1)), Box::new(lit(2)));
        assert_eq!(e.eval(&vec![], &[]).unwrap(), Datum::Bool(true));
        let e = Expr::Bin(BinOp::Eq, Box::new(Expr::Literal(Datum::Null)), Box::new(lit(2)));
        assert_eq!(e.eval(&vec![], &[]).unwrap(), Datum::Null);
        let e = Expr::Bin(BinOp::Add, Box::new(Expr::Literal(Datum::Null)), Box::new(lit(2)));
        assert_eq!(e.eval(&vec![], &[]).unwrap(), Datum::Null);
    }

    #[test]
    fn short_circuit_logic() {
        // FALSE AND <error> short-circuits.
        let e = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Literal(Datum::Bool(false))),
            Box::new(Expr::Name("unbound".into())),
        );
        assert_eq!(e.eval(&vec![], &[]).unwrap(), Datum::Bool(false));
        let e = Expr::Bin(
            BinOp::Or,
            Box::new(Expr::Literal(Datum::Bool(true))),
            Box::new(Expr::Name("unbound".into())),
        );
        assert_eq!(e.eval(&vec![], &[]).unwrap(), Datum::Bool(true));
    }

    #[test]
    fn columns_and_params() {
        let row = vec![Datum::Int(10), Datum::Str("x".into())];
        let e = Expr::Bin(BinOp::Mul, Box::new(Expr::Column(0)), Box::new(Expr::Param(1)));
        assert_eq!(e.eval(&row, &[Datum::Int(3)]).unwrap(), Datum::Int(30));
        assert!(e.references_params());
        assert!(!Expr::Column(0).references_params());
    }

    #[test]
    fn binding_names() {
        let scope = vec!["t.a".to_string(), "t.b".to_string(), "u.b".to_string()];
        let mut e = Expr::Name("a".into());
        e.bind(&scope).unwrap();
        assert_eq!(e, Expr::Column(0));
        let mut e = Expr::Name("u.b".into());
        e.bind(&scope).unwrap();
        assert_eq!(e, Expr::Column(2));
        let mut e = Expr::Name("b".into());
        assert!(e.bind(&scope).is_err(), "ambiguous bare name");
        let mut e = Expr::Name("zzz".into());
        assert!(e.bind(&scope).is_err());
    }
}
