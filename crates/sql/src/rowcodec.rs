//! Row ↔ KV encoding.
//!
//! The SQL layer "translates \[tables\] into key-value pairs for persistence
//! and distribution" (§3.1). Layout (all inside the tenant's keyspace
//! segment — the tenant prefix is added by the KV client, not here):
//!
//! ```text
//! primary row:  tbl/<table_id>/<index 1>/<pk datums…>    -> value datums
//! index entry:  tbl/<table_id>/<index_id>/<idx datums…>/<pk datums…> -> ()
//! ```
//!
//! Datum key encoding is order-preserving so that PK range constraints
//! become KV spans.

use bytes::{BufMut, Bytes, BytesMut};
use crdb_kv::keys as kvkeys;

use crate::schema::{TableDescriptor, PRIMARY_INDEX_ID};
use crate::value::{Datum, Row};

const TYPE_NULL: u8 = 0x00;
const TYPE_INT: u8 = 0x01;
const TYPE_FLOAT: u8 = 0x02;
const TYPE_STR: u8 = 0x03;
const TYPE_BOOL: u8 = 0x04;

/// Appends an order-preserving encoding of one datum to a key.
pub fn encode_key_datum(b: &mut BytesMut, d: &Datum) {
    match d {
        Datum::Null => b.put_u8(TYPE_NULL),
        Datum::Int(i) => {
            b.put_u8(TYPE_INT);
            // Flip the sign bit so negative ints sort before positive.
            b.put_u64((*i as u64) ^ (1 << 63));
        }
        Datum::Float(f) => {
            b.put_u8(TYPE_FLOAT);
            // IEEE-754 total-order trick.
            let bits = f.to_bits();
            let key = if *f >= 0.0 { bits ^ (1 << 63) } else { !bits };
            b.put_u64(key);
        }
        Datum::Str(s) => {
            b.put_u8(TYPE_STR);
            kvkeys::encode_str(b, s);
        }
        Datum::Bool(v) => {
            b.put_u8(TYPE_BOOL);
            b.put_u8(*v as u8);
        }
    }
}

/// Decodes one key datum, returning it and the remaining slice.
pub fn decode_key_datum(buf: &[u8]) -> Option<(Datum, &[u8])> {
    match *buf.first()? {
        TYPE_NULL => Some((Datum::Null, &buf[1..])),
        TYPE_INT => {
            let (v, rest) = kvkeys::decode_u64(&buf[1..])?;
            Some((Datum::Int((v ^ (1 << 63)) as i64), rest))
        }
        TYPE_FLOAT => {
            let (v, rest) = kvkeys::decode_u64(&buf[1..])?;
            let bits = if v & (1 << 63) != 0 { v ^ (1 << 63) } else { !v };
            Some((Datum::Float(f64::from_bits(bits)), rest))
        }
        TYPE_STR => {
            let (s, rest) = kvkeys::decode_str(&buf[1..])?;
            Some((Datum::Str(s), rest))
        }
        TYPE_BOOL => Some((Datum::Bool(*buf.get(1)? == 1), &buf[2..])),
        _ => None,
    }
}

/// The key prefix of a table's index: `tbl/<table_id>/<index_id>/`.
pub fn index_prefix(table_id: u64, index_id: u64) -> BytesMut {
    let mut b = BytesMut::with_capacity(24);
    b.put_slice(b"tbl/");
    kvkeys::encode_u64(&mut b, table_id);
    kvkeys::encode_u64(&mut b, index_id);
    b
}

/// The exclusive end of an index's key span.
pub fn index_prefix_end(table_id: u64, index_id: u64) -> Bytes {
    index_prefix(table_id, index_id + 1).freeze()
}

/// The key a table's `ANALYZE` statistics are stored under:
/// `tstat/<table_id>`. Lives next to the `desc/` descriptor keys inside
/// the tenant keyspace so catalog loads pick statistics up with the
/// same scan machinery.
pub fn stats_key(table_id: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(16);
    b.put_slice(b"tstat/");
    kvkeys::encode_u64(&mut b, table_id);
    b.freeze()
}

/// Inclusive start of the span holding every table's statistics.
pub fn stats_span_start() -> Bytes {
    Bytes::from_static(b"tstat/")
}

/// Exclusive end of the statistics span.
pub fn stats_span_end() -> Bytes {
    Bytes::from_static(b"tstat0")
}

/// Encodes a row's primary key: `tbl/<id>/1/<pk datums>`.
pub fn primary_key(table: &TableDescriptor, row: &Row) -> Bytes {
    let mut b = index_prefix(table.id, PRIMARY_INDEX_ID);
    for &i in &table.primary_key {
        encode_key_datum(&mut b, &row[i]);
    }
    b.freeze()
}

/// Encodes a primary key directly from PK datums (for point lookups).
pub fn primary_key_from_datums(table: &TableDescriptor, pk: &[Datum]) -> Bytes {
    let mut b = index_prefix(table.id, PRIMARY_INDEX_ID);
    for d in pk {
        encode_key_datum(&mut b, d);
    }
    b.freeze()
}

/// Encodes a prefix of the primary key (for span constraints); returns the
/// inclusive start of the span covered by the prefix.
pub fn key_with_prefix(table: &TableDescriptor, index_id: u64, datums: &[Datum]) -> Bytes {
    let mut b = index_prefix(table.id, index_id);
    for d in datums {
        encode_key_datum(&mut b, d);
    }
    b.freeze()
}

/// The exclusive end of the span sharing `prefix`: prefix + 0xff.
pub fn prefix_span_end(prefix: &Bytes) -> Bytes {
    let mut b = BytesMut::from(prefix.as_ref());
    b.put_u8(0xff);
    b.freeze()
}

/// Encodes the non-PK column values of a row.
pub fn encode_row_value(table: &TableDescriptor, row: &Row) -> Bytes {
    let mut b = BytesMut::new();
    for i in table.value_columns() {
        encode_value_datum(&mut b, &row[i]);
    }
    b.freeze()
}

fn encode_value_datum(b: &mut BytesMut, d: &Datum) {
    match d {
        Datum::Null => b.put_u8(TYPE_NULL),
        Datum::Int(i) => {
            b.put_u8(TYPE_INT);
            b.put_i64(*i);
        }
        Datum::Float(f) => {
            b.put_u8(TYPE_FLOAT);
            b.put_f64(*f);
        }
        Datum::Str(s) => {
            b.put_u8(TYPE_STR);
            b.put_u32(s.len() as u32);
            b.put_slice(s.as_bytes());
        }
        Datum::Bool(v) => {
            b.put_u8(TYPE_BOOL);
            b.put_u8(*v as u8);
        }
    }
}

fn decode_value_datum(buf: &[u8]) -> Option<(Datum, &[u8])> {
    match *buf.first()? {
        TYPE_NULL => Some((Datum::Null, &buf[1..])),
        TYPE_INT => {
            let v = i64::from_be_bytes(buf.get(1..9)?.try_into().ok()?);
            Some((Datum::Int(v), &buf[9..]))
        }
        TYPE_FLOAT => {
            let v = f64::from_be_bytes(buf.get(1..9)?.try_into().ok()?);
            Some((Datum::Float(v), &buf[9..]))
        }
        TYPE_STR => {
            let n = u32::from_be_bytes(buf.get(1..5)?.try_into().ok()?) as usize;
            let s = String::from_utf8(buf.get(5..5 + n)?.to_vec()).ok()?;
            Some((Datum::Str(s), &buf[5 + n..]))
        }
        TYPE_BOOL => Some((Datum::Bool(*buf.get(1)? == 1), &buf[2..])),
        _ => None,
    }
}

/// Reconstructs a full row from a primary-index KV pair.
pub fn decode_row(table: &TableDescriptor, key: &[u8], value: &[u8]) -> Option<Row> {
    let prefix = index_prefix(table.id, PRIMARY_INDEX_ID);
    let mut rest = key.strip_prefix(prefix.as_ref())?;
    let mut row: Row = vec![Datum::Null; table.columns.len()];
    for &i in &table.primary_key {
        let (d, r) = decode_key_datum(rest)?;
        row[i] = d;
        rest = r;
    }
    let mut vrest = value;
    for i in table.value_columns() {
        let (d, r) = decode_value_datum(vrest)?;
        row[i] = d;
        vrest = r;
    }
    Some(row)
}

/// Encodes a secondary-index entry key for a row:
/// `tbl/<id>/<index_id>/<indexed datums…>/<pk datums…>`.
pub fn index_entry_key(
    table: &TableDescriptor,
    index_id: u64,
    columns: &[usize],
    row: &Row,
) -> Bytes {
    let mut b = index_prefix(table.id, index_id);
    for &i in columns {
        encode_key_datum(&mut b, &row[i]);
    }
    for &i in &table.primary_key {
        encode_key_datum(&mut b, &row[i]);
    }
    b.freeze()
}

/// Extracts the primary-key datums from a secondary-index entry key.
pub fn decode_index_entry(
    table: &TableDescriptor,
    index_id: u64,
    n_indexed: usize,
    key: &[u8],
) -> Option<Vec<Datum>> {
    let prefix = index_prefix(table.id, index_id);
    let mut rest = key.strip_prefix(prefix.as_ref())?;
    for _ in 0..n_indexed {
        let (_, r) = decode_key_datum(rest)?;
        rest = r;
    }
    let mut pk = Vec::with_capacity(table.primary_key.len());
    for _ in 0..table.primary_key.len() {
        let (d, r) = decode_key_datum(rest)?;
        pk.push(d);
        rest = r;
    }
    Some(pk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, IndexDescriptor};
    use crate::value::ColumnType;

    fn table() -> TableDescriptor {
        TableDescriptor {
            id: 52,
            name: "t".into(),
            columns: vec![
                Column { name: "a".into(), ty: ColumnType::Int, nullable: false },
                Column { name: "b".into(), ty: ColumnType::String, nullable: false },
                Column { name: "c".into(), ty: ColumnType::Float, nullable: true },
                Column { name: "d".into(), ty: ColumnType::Bool, nullable: true },
            ],
            primary_key: vec![0, 1],
            indexes: vec![IndexDescriptor { id: 2, name: "b_idx".into(), columns: vec![1] }],
        }
    }

    fn row(a: i64, b: &str, c: f64, d: bool) -> Row {
        vec![Datum::Int(a), Datum::Str(b.into()), Datum::Float(c), Datum::Bool(d)]
    }

    #[test]
    fn row_roundtrip() {
        let t = table();
        let r = row(-5, "hello", 2.75, true);
        let key = primary_key(&t, &r);
        let value = encode_row_value(&t, &r);
        let decoded = decode_row(&t, &key, &value).expect("decodes");
        assert_eq!(decoded, r);
    }

    #[test]
    fn null_values_roundtrip() {
        let t = table();
        let r = vec![Datum::Int(1), Datum::Str("x".into()), Datum::Null, Datum::Null];
        let key = primary_key(&t, &r);
        let value = encode_row_value(&t, &r);
        assert_eq!(decode_row(&t, &key, &value).unwrap(), r);
    }

    #[test]
    fn key_encoding_preserves_order() {
        let datums = [
            Datum::Int(i64::MIN),
            Datum::Int(-1),
            Datum::Int(0),
            Datum::Int(1),
            Datum::Int(i64::MAX),
        ];
        let mut keys: Vec<Bytes> = Vec::new();
        for d in &datums {
            let mut b = BytesMut::new();
            encode_key_datum(&mut b, d);
            keys.push(b.freeze());
        }
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "int order preserved");
        }
        // Floats, including negatives.
        let floats = [-10.5, -0.25, 0.0, 0.25, 10.5];
        let mut keys: Vec<Bytes> = Vec::new();
        for f in floats {
            let mut b = BytesMut::new();
            encode_key_datum(&mut b, &Datum::Float(f));
            keys.push(b.freeze());
        }
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "float order preserved");
        }
    }

    #[test]
    fn string_keys_are_prefix_safe() {
        let t = table();
        let r1 = row(1, "ab", 0.0, false);
        let r2 = row(1, "ab\u{0}c", 0.0, false);
        let k1 = primary_key(&t, &r1);
        let k2 = primary_key(&t, &r2);
        assert_ne!(k1, k2);
        assert!(k1 < k2);
        assert_eq!(decode_row(&t, &k2, &encode_row_value(&t, &r2)).unwrap(), r2);
    }

    #[test]
    fn span_prefix_covers_rows() {
        let t = table();
        let span_start = key_with_prefix(&t, PRIMARY_INDEX_ID, &[Datum::Int(7)]);
        let span_end = prefix_span_end(&span_start);
        for b in ["a", "m", "zz"] {
            let key = primary_key(&t, &row(7, b, 0.0, false));
            assert!(key >= span_start && key < span_end, "{b} inside span");
        }
        let outside = primary_key(&t, &row(8, "a", 0.0, false));
        assert!(outside >= span_end);
    }

    #[test]
    fn index_entry_roundtrip() {
        let t = table();
        let r = row(9, "bee", 1.0, true);
        let key = index_entry_key(&t, 2, &[1], &r);
        let pk = decode_index_entry(&t, 2, 1, &key).expect("decodes");
        assert_eq!(pk, vec![Datum::Int(9), Datum::Str("bee".into())]);
    }

    #[test]
    fn index_spans_are_disjoint_per_index() {
        let end = index_prefix_end(52, PRIMARY_INDEX_ID);
        let idx2_start = index_prefix(52, 2).freeze();
        assert_eq!(end, idx2_start, "index spans tile the table span");
    }
}
