//! SQL parser: recursive descent over the token stream.
//!
//! The dialect covers what the paper's workloads need: DDL (CREATE/DROP
//! TABLE, CREATE INDEX), DML (INSERT/UPDATE/DELETE), SELECT with joins,
//! WHERE, GROUP BY + aggregates, ORDER BY, LIMIT, and explicit
//! transactions.

use crate::expr::{BinOp, Expr};
use crate::lexer::{tokenize, Token};
use crate::value::{ColumnType, Datum};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)`
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// A scalar expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`, if present.
        alias: Option<String>,
    },
    /// An aggregate call; `arg` is `None` for `COUNT(*)`.
    Agg {
        /// The function.
        func: AggFunc,
        /// The argument, absent for `COUNT(*)`.
        arg: Option<Expr>,
        /// `AS alias`, if present.
        alias: Option<String>,
    },
}

/// A joined table.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Table name.
    pub table: String,
    /// Optional alias.
    pub alias: Option<String>,
    /// The ON condition.
    pub on: Expr,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// Base table and alias (`None` for table-less SELECT).
    pub from: Option<(String, Option<String>)>,
    /// INNER JOINs, left-deep in order.
    pub joins: Vec<Join>,
    /// WHERE clause.
    pub filter: Option<Expr>,
    /// GROUP BY expressions (column names at parse time).
    pub group_by: Vec<Expr>,
    /// ORDER BY keys with descending flags.
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT.
    pub limit: Option<u64>,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Columns: name, type, nullable.
        columns: Vec<(String, ColumnType, bool)>,
        /// Primary-key column names.
        primary_key: Vec<String>,
    },
    /// CREATE INDEX.
    CreateIndex {
        /// Index name.
        name: String,
        /// Table name.
        table: String,
        /// Indexed column names.
        columns: Vec<String>,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
    },
    /// INSERT.
    Insert {
        /// Table name.
        table: String,
        /// Target columns (empty = all, in ordinal order).
        columns: Vec<String>,
        /// Row value expressions.
        values: Vec<Vec<Expr>>,
    },
    /// SELECT.
    Select(SelectStmt),
    /// UPDATE.
    Update {
        /// Table name.
        table: String,
        /// SET assignments.
        sets: Vec<(String, Expr)>,
        /// WHERE clause.
        filter: Option<Expr>,
    },
    /// DELETE.
    Delete {
        /// Table name.
        table: String,
        /// WHERE clause.
        filter: Option<Expr>,
    },
    /// ANALYZE: collect statistics for one table.
    Analyze {
        /// Table name.
        table: String,
    },
    /// EXPLAIN: render the chosen plan for a SELECT without running it.
    Explain(SelectStmt),
    /// BEGIN.
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
}

/// Parses one SQL statement.
pub fn parse(sql: &str) -> Result<Statement, String> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";");
    if p.pos != p.tokens.len() {
        return Err(format!("trailing tokens after statement: {:?}", p.peek()));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), String> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(format!("expected {kw}, found {:?}", self.peek()))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if let Some(Token::Sym(s)) = self.peek() {
            if *s == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), String> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(format!("expected {sym:?}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    fn statement(&mut self) -> Result<Statement, String> {
        if self.eat_kw("create") {
            if self.eat_kw("table") {
                return self.create_table();
            }
            if self.eat_kw("index") {
                return self.create_index();
            }
            return Err("expected TABLE or INDEX after CREATE".into());
        }
        if self.eat_kw("drop") {
            self.expect_kw("table")?;
            return Ok(Statement::DropTable { name: self.ident()? });
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("select") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("update") {
            return self.update();
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let filter = if self.eat_kw("where") { Some(self.expr()?) } else { None };
            return Ok(Statement::Delete { table, filter });
        }
        if self.eat_kw("analyze") {
            return Ok(Statement::Analyze { table: self.ident()? });
        }
        if self.eat_kw("explain") {
            self.expect_kw("select")?;
            return Ok(Statement::Explain(self.select()?));
        }
        if self.eat_kw("begin") {
            self.eat_kw("transaction");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("commit") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("rollback") {
            return Ok(Statement::Rollback);
        }
        Err(format!("unrecognized statement start: {:?}", self.peek()))
    }

    fn create_table(&mut self) -> Result<Statement, String> {
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        let mut primary_key: Vec<String> = Vec::new();
        loop {
            if self.eat_kw("primary") {
                self.expect_kw("key")?;
                self.expect_sym("(")?;
                loop {
                    primary_key.push(self.ident()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            } else {
                let col = self.ident()?;
                let ty = match self.ident()?.as_str() {
                    "int" | "integer" | "bigint" => ColumnType::Int,
                    "float" | "double" | "decimal" | "numeric" | "real" => ColumnType::Float,
                    "string" | "text" | "varchar" | "char" => ColumnType::String,
                    "bool" | "boolean" => ColumnType::Bool,
                    other => return Err(format!("unknown type {other}")),
                };
                let mut nullable = true;
                loop {
                    if self.eat_kw("not") {
                        self.expect_kw("null")?;
                        nullable = false;
                    } else if self.eat_kw("primary") {
                        self.expect_kw("key")?;
                        primary_key.push(col.clone());
                        nullable = false;
                    } else if self.eat_kw("null") {
                        nullable = true;
                    } else {
                        break;
                    }
                }
                columns.push((col, ty, nullable));
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        if primary_key.is_empty() {
            return Err("table requires a PRIMARY KEY".into());
        }
        Ok(Statement::CreateTable { name, columns, primary_key })
    }

    fn create_index(&mut self) -> Result<Statement, String> {
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateIndex { name, table, columns })
    }

    fn insert(&mut self) -> Result<Statement, String> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_sym("(") {
            loop {
                columns.push(self.ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        self.expect_kw("values")?;
        let mut values = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            values.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, values })
    }

    fn update(&mut self) -> Result<Statement, String> {
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym("=")?;
            sets.push((col, self.expr()?));
            if !self.eat_sym(",") {
                break;
            }
        }
        let filter = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, sets, filter })
    }

    fn select(&mut self) -> Result<SelectStmt, String> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        let mut from = None;
        let mut joins = Vec::new();
        if self.eat_kw("from") {
            let table = self.ident()?;
            let alias = self.maybe_alias();
            from = Some((table, alias));
            while self.eat_kw("join") || {
                if self.eat_kw("inner") {
                    self.expect_kw("join")?;
                    true
                } else {
                    false
                }
            } {
                let table = self.ident()?;
                let alias = self.maybe_alias();
                self.expect_kw("on")?;
                let on = self.expr()?;
                joins.push(Join { table, alias, on });
            }
        }
        let filter = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                other => return Err(format!("expected LIMIT count, found {other:?}")),
            }
        } else {
            None
        };
        Ok(SelectStmt { items, from, joins, filter, group_by, order_by, limit })
    }

    fn maybe_alias(&mut self) -> Option<String> {
        if self.eat_kw("as") {
            return self.ident().ok();
        }
        // A bare identifier that is not a clause keyword is an alias.
        if let Some(Token::Ident(s)) = self.peek() {
            const KEYWORDS: &[&str] =
                &["join", "inner", "on", "where", "group", "order", "limit", "set", "values"];
            if !KEYWORDS.contains(&s.as_str()) {
                let s = s.clone();
                self.pos += 1;
                return Some(s);
            }
        }
        None
    }

    fn select_item(&mut self) -> Result<SelectItem, String> {
        if self.eat_sym("*") {
            return Ok(SelectItem::Star);
        }
        // Aggregate?
        if let Some(Token::Ident(name)) = self.peek() {
            let func = match name.as_str() {
                "count" => Some(AggFunc::Count),
                "sum" => Some(AggFunc::Sum),
                "avg" => Some(AggFunc::Avg),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                _ => None,
            };
            if let Some(func) = func {
                if self.tokens.get(self.pos + 1) == Some(&Token::Sym("(")) {
                    self.pos += 2;
                    let arg = if self.eat_sym("*") {
                        if func != AggFunc::Count {
                            return Err("only COUNT accepts *".into());
                        }
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_sym(")")?;
                    let alias = if self.eat_kw("as") { Some(self.ident()?) } else { None };
                    return Ok(SelectItem::Agg { func, arg, alias });
                }
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") { Some(self.ident()?) } else { None };
        Ok(SelectItem::Expr { expr, alias })
    }

    // Expression parsing: precedence climbing.
    fn expr(&mut self) -> Result<Expr, String> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, String> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Bin(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, String> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::Bin(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, String> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, String> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Sym("=")) => Some(BinOp::Eq),
            Some(Token::Sym("!=")) => Some(BinOp::Ne),
            Some(Token::Sym("<")) => Some(BinOp::Lt),
            Some(Token::Sym("<=")) => Some(BinOp::Le),
            Some(Token::Sym(">")) => Some(BinOp::Gt),
            Some(Token::Sym(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            Ok(Expr::Bin(op, Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, String> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("+")) => BinOp::Add,
                Some(Token::Sym("-")) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, String> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("*")) => BinOp::Mul,
                Some(Token::Sym("/")) => BinOp::Div,
                Some(Token::Sym("%")) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Bin(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, String> {
        if self.eat_sym("-") {
            let e = self.unary_expr()?;
            return Ok(match e {
                Expr::Literal(Datum::Int(i)) => Expr::Literal(Datum::Int(-i)),
                Expr::Literal(Datum::Float(f)) => Expr::Literal(Datum::Float(-f)),
                other => {
                    Expr::Bin(BinOp::Sub, Box::new(Expr::Literal(Datum::Int(0))), Box::new(other))
                }
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, String> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Datum::Int(i))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Datum::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Datum::Str(s))),
            Some(Token::Param(n)) => Ok(Expr::Param(n)),
            Some(Token::Sym("(")) => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => match name.as_str() {
                "true" => Ok(Expr::Literal(Datum::Bool(true))),
                "false" => Ok(Expr::Literal(Datum::Bool(false))),
                "null" => Ok(Expr::Literal(Datum::Null)),
                _ => {
                    if self.eat_sym(".") {
                        let col = self.ident()?;
                        Ok(Expr::Name(format!("{name}.{col}")))
                    } else {
                        Ok(Expr::Name(name))
                    }
                }
            },
            other => Err(format!("unexpected token in expression: {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_inline_and_composite_pk() {
        let s = parse(
            "CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name STRING NOT NULL, w_ytd FLOAT)",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns, primary_key } => {
                assert_eq!(name, "warehouse");
                assert_eq!(columns.len(), 3);
                assert_eq!(primary_key, vec!["w_id"]);
                assert!(!columns[0].2, "pk not nullable");
                assert!(!columns[1].2);
                assert!(columns[2].2);
            }
            other => panic!("{other:?}"),
        }
        let s = parse("CREATE TABLE d (a INT, b INT, c STRING, PRIMARY KEY (a, b))").unwrap();
        match s {
            Statement::CreateTable { primary_key, .. } => {
                assert_eq!(primary_key, vec!["a", "b"])
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert { table, columns, values } => {
                assert_eq!(table, "t");
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(values.len(), 2);
                assert_eq!(values[1][0], Expr::Literal(Datum::Int(2)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_full_clause_set() {
        let s = parse(
            "SELECT d_id, SUM(amount) AS total FROM orders WHERE d_id >= 1 AND d_id < 10 \
             GROUP BY d_id ORDER BY total DESC LIMIT 5",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 2);
                assert!(matches!(sel.items[1], SelectItem::Agg { func: AggFunc::Sum, .. }));
                assert!(sel.filter.is_some());
                assert_eq!(sel.group_by.len(), 1);
                assert_eq!(sel.order_by.len(), 1);
                assert!(sel.order_by[0].1, "descending");
                assert_eq!(sel.limit, Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_join_with_aliases() {
        let s = parse(
            "SELECT o.o_id, c.c_name FROM orders o JOIN customer AS c ON o.o_c_id = c.c_id \
             WHERE o.o_id = 5",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.from, Some(("orders".into(), Some("o".into()))));
                assert_eq!(sel.joins.len(), 1);
                assert_eq!(sel.joins[0].alias, Some("c".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_delete_txn() {
        assert!(matches!(parse("BEGIN").unwrap(), Statement::Begin));
        assert!(matches!(parse("COMMIT;").unwrap(), Statement::Commit));
        assert!(matches!(parse("ROLLBACK").unwrap(), Statement::Rollback));
        let s = parse("UPDATE t SET a = a + 1, b = 'z' WHERE a = $1").unwrap();
        match s {
            Statement::Update { sets, filter, .. } => {
                assert_eq!(sets.len(), 2);
                assert!(filter.unwrap().references_params());
            }
            other => panic!("{other:?}"),
        }
        let s = parse("DELETE FROM t WHERE a < 3").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));
    }

    #[test]
    fn expression_precedence() {
        let s = parse("SELECT 1 + 2 * 3").unwrap();
        match s {
            Statement::Select(sel) => match &sel.items[0] {
                SelectItem::Expr { expr, .. } => {
                    let v = expr.eval(&vec![], &[]).unwrap();
                    assert_eq!(v, Datum::Int(7));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star_and_unary_minus() {
        let s = parse("SELECT COUNT(*), -5 FROM t").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(
                    sel.items[0],
                    SelectItem::Agg { func: AggFunc::Count, arg: None, .. }
                ));
                assert!(matches!(
                    sel.items[1],
                    SelectItem::Expr { expr: Expr::Literal(Datum::Int(-5)), .. }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn analyze_and_explain() {
        let s = parse("ANALYZE stock").unwrap();
        assert_eq!(s, Statement::Analyze { table: "stock".into() });
        let s = parse("EXPLAIN SELECT i_id FROM item WHERE i_price < 10.0").unwrap();
        match s {
            Statement::Explain(sel) => {
                assert!(sel.filter.is_some());
                assert_eq!(sel.from, Some(("item".into(), None)));
            }
            other => panic!("{other:?}"),
        }
        // EXPLAIN only covers SELECT.
        assert!(parse("EXPLAIN UPDATE t SET a = 1").is_err());
        assert!(parse("ANALYZE").is_err());
    }

    #[test]
    fn errors() {
        // "SELECT FROM" parses as a bare column named "from" and is
        // rejected at binding time, like several real engines.
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("CREATE TABLE t (a INT)").is_err(), "pk required");
        assert!(parse("SELECT 1 extra garbage ,").is_err());
        assert!(parse("SUM(*)").is_err());
    }
}
