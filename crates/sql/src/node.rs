//! The SQL node: a per-tenant SQL process (§4.1).
//!
//! A SQL node owns no durable state — schema and data live behind the KV
//! API — so it can be created, drained and destroyed freely. Its life
//! cycle mirrors §4.3.1: created (possibly pre-warmed before the tenant is
//! known), *started* against a tenant (certificate available → connect to
//! KV → blocking system-database reads/writes → ready), then serving
//! sessions until drained.
//!
//! Cold-start latency is the sum of (a) the real KV work it performs
//! (catalog scan, instance registration) and (b) the modeled
//! system-database access latencies of [`crate::system_db`], which carry
//! the multi-region locality arithmetic of Fig. 10b.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

use bytes::{BufMut, Bytes, BytesMut};
use crdb_kv::client::KvClient;
use crdb_obs::trace;
use crdb_sim::cpu::CpuScheduler;
use crdb_sim::{Location, Sim};
use crdb_util::time::{dur, SimTime};
use crdb_util::{Deadline, SqlInstanceId, TenantId};

use crate::coord::{SqlError, Txn};
use crate::exec::{execute, QueryOutput};
use crate::parser::{parse, Statement};
use crate::plan::{plan_statement, Catalog, Plan};
use crate::rowcodec;
use crate::schema::TableDescriptor;
use crate::session::{Session, SessionSnapshot};
use crate::stats::TableStatistics;
use crate::system_db::SystemDatabase;

/// KV pairs fetched per ANALYZE chunk: the statistics scan streams the
/// table instead of materializing it in one response.
const ANALYZE_CHUNK: usize = 1024;

/// Where query execution runs relative to the KV process (§6.1): the
/// Traditional deployment fuses SQL and KV in one process; Serverless
/// separates them, paying marshalling costs on scan-heavy plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Single-process KV+SQL (the paper's "traditional" cluster).
    Traditional,
    /// Separate SQL process (CockroachDB Serverless).
    Serverless,
}

/// SQL node configuration. All SQL nodes get the same shape in production:
/// 4 vCPUs and 12 GB RAM (§4.2.3).
#[derive(Debug, Clone)]
pub struct SqlNodeConfig {
    /// vCPU allocation.
    pub vcpus: f64,
    /// Execution mode.
    pub mode: ExecMode,
    /// Placement.
    pub location: Location,
    /// Base CPU-seconds per statement.
    pub cpu_per_statement: f64,
    /// CPU-seconds per row processed.
    pub cpu_per_row: f64,
    /// CPU-seconds per byte processed.
    pub cpu_per_byte: f64,
    /// Extra CPU-seconds per byte crossing the SQL/KV process boundary
    /// (marshal + unmarshal), charged only in [`ExecMode::Serverless`].
    pub cpu_marshal_per_byte: f64,
    /// Extra CPU-seconds per row crossing the process boundary — "the
    /// rows need to be marshaled and un-marshaled between the processes"
    /// (§6.1.2); per-row framing dominates the per-byte cost.
    pub cpu_marshal_per_row: f64,
    /// CPU-seconds of process initialization during cold start.
    pub startup_cpu: f64,
    /// Modeled resident memory of an idle SQL node with one connection
    /// (§6.2 reports 180 MiB).
    pub idle_memory_bytes: u64,
    /// Modeled additional memory per active session.
    pub memory_per_session: u64,
    /// Background CPU of a running SQL node (connection keepalives,
    /// metrics emission, GC) in CPU-seconds per second; §6.2 measures
    /// 0.15 for an idle node with one connection.
    pub idle_cpu_per_second: f64,
}

impl Default for SqlNodeConfig {
    fn default() -> Self {
        SqlNodeConfig {
            vcpus: 4.0,
            mode: ExecMode::Serverless,
            location: Location::new(crdb_util::RegionId(0), 0),
            cpu_per_statement: 40e-6,
            cpu_per_row: 3e-6,
            cpu_per_byte: 2e-9,
            cpu_marshal_per_byte: 6e-9,
            cpu_marshal_per_row: 3.5e-6,
            startup_cpu: 50e-3,
            idle_memory_bytes: 180 << 20,
            memory_per_session: 4 << 20,
            idle_cpu_per_second: 0.15,
        }
    }
}

impl SqlNodeConfig {
    /// Returns a copy with every CPU cost multiplied by `factor` (pairs
    /// with `CostModel::scaled` for scaled-cost experiments).
    pub fn scaled(&self, factor: f64) -> SqlNodeConfig {
        SqlNodeConfig {
            cpu_per_statement: self.cpu_per_statement * factor,
            cpu_per_row: self.cpu_per_row * factor,
            cpu_per_byte: self.cpu_per_byte * factor,
            cpu_marshal_per_byte: self.cpu_marshal_per_byte * factor,
            cpu_marshal_per_row: self.cpu_marshal_per_row * factor,
            ..self.clone()
        }
    }
}

/// SQL node life-cycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Process exists, tenant unknown (pre-warmed pool).
    Created,
    /// Executing the cold-start sequence.
    Starting,
    /// Serving queries.
    Ready,
    /// No new connections; existing sessions draining (§4.2.3).
    Draining,
    /// Shut down.
    Stopped,
}

/// Running accumulator for one ANALYZE scan.
struct AnalyzeAcc {
    row_count: u64,
    key_bytes: u64,
    value_bytes: u64,
    /// (index id, prefix length) → distinct encoded key prefixes.
    distinct: BTreeMap<(u64, u64), BTreeSet<Bytes>>,
}

/// A per-tenant SQL node.
pub struct SqlNode {
    /// This node's instance ID (registered in `system.sql_instances`).
    pub instance_id: SqlInstanceId,
    /// The owning tenant.
    pub tenant: TenantId,
    sim: Sim,
    /// The node's CPU.
    pub cpu: CpuScheduler,
    client: KvClient,
    /// Configuration.
    pub config: SqlNodeConfig,
    catalog: Rc<RefCell<Catalog>>,
    state: Cell<NodeState>,
    sessions: RefCell<HashMap<u64, Session>>,
    next_session_id: Cell<u64>,
    /// Statements executed.
    pub queries_executed: Cell<u64>,
    /// Cold start duration, once started.
    pub cold_start: Cell<Option<std::time::Duration>>,
    /// Per-tenant session-revival secret (shared by the tenant's nodes;
    /// derived here from the tenant id — a stand-in for a managed secret).
    revival_secret: u64,
    /// Retired nodes (e.g. pending a version upgrade) drain but are never
    /// reclaimed by the autoscaler.
    retired: Cell<bool>,
    /// Set when the node dies abruptly (fault injection) rather than by
    /// orderly shutdown.
    crashed: Cell<bool>,
}

impl SqlNode {
    /// Creates a node bound to a tenant's KV client (certificate inside).
    pub fn new(
        sim: &Sim,
        instance_id: SqlInstanceId,
        client: KvClient,
        config: SqlNodeConfig,
    ) -> Rc<SqlNode> {
        let tenant = client.cert().tenant();
        Rc::new(SqlNode {
            instance_id,
            tenant,
            sim: sim.clone(),
            cpu: CpuScheduler::new(sim.clone(), config.vcpus),
            client,
            config,
            catalog: Rc::new(RefCell::new(Catalog::new())),
            state: Cell::new(NodeState::Created),
            sessions: RefCell::new(HashMap::new()),
            next_session_id: Cell::new(1),
            queries_executed: Cell::new(0),
            cold_start: Cell::new(None),
            revival_secret: 0x5eed_0000 ^ tenant.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15),
            retired: Cell::new(false),
            crashed: Cell::new(false),
        })
    }

    /// Current life-cycle state.
    pub fn state(&self) -> NodeState {
        self.state.get()
    }

    /// Modeled resident memory (Fig. 7b accounting).
    pub fn memory_bytes(&self) -> u64 {
        self.config.idle_memory_bytes
            + self.sessions.borrow().len() as u64 * self.config.memory_per_session
    }

    /// Cumulative SQL CPU-seconds consumed by this node.
    pub fn sql_cpu_seconds(&self) -> f64 {
        self.cpu.cumulative_usage_total()
    }

    /// Runs the cold-start sequence (§4.3.1 / §3.2.5): process init CPU,
    /// blocking system-database accesses with locality-modeled latency,
    /// real catalog load, and instance registration. `on_ready` fires when
    /// the node can accept queries.
    pub fn start(self: &Rc<Self>, system_db: &SystemDatabase, on_ready: impl FnOnce() + 'static) {
        assert_eq!(self.state.get(), NodeState::Created, "start() on fresh nodes only");
        self.state.set(NodeState::Starting);
        let started_at = self.sim.now();
        let topology = self.client.cluster().topology();

        // Total modeled latency of the blocking system-table accesses.
        let sys_latency = system_db.cold_start_latency(&topology, self.config.location);

        let span = trace::child("sql.node.start");
        span.tag("instance", self.instance_id);
        span.tag("tenant", self.tenant);
        let init_span = span.child("process.init");
        let node = Rc::clone(self);
        self.cpu.submit(self.tenant, self.config.startup_cpu, move || {
            init_span.end();
            let sys_span = span.child("systemdb.access");
            let node2 = Rc::clone(&node);
            node.sim.schedule_after(sys_latency, move || {
                sys_span.end();
                // Real catalog load: scan persisted descriptors.
                let catalog_span = span.child("catalog.load");
                let node3 = Rc::clone(&node2);
                let span2 = span.clone();
                let _scope = catalog_span.enter();
                node2.load_catalog({
                    let catalog_span = catalog_span.clone();
                    move || {
                        catalog_span.end();
                        // Register this instance for DistSQL discovery.
                        let reg_span = span2.child("instance.register");
                        let node4 = Rc::clone(&node3);
                        let _scope = reg_span.enter();
                        node3.register_instance({
                            let reg_span = reg_span.clone();
                            move || {
                                reg_span.end();
                                span2.end();
                                node4.state.set(NodeState::Ready);
                                node4
                                    .cold_start
                                    .set(Some(node4.sim.now().duration_since(started_at)));
                                node4.start_background_loop();
                                on_ready();
                            }
                        });
                    }
                });
            });
        });
    }

    /// Background CPU burn while the node runs (§6.2's idle 0.15 CPU-s/s):
    /// keepalives, metrics, GC.
    fn start_background_loop(self: &Rc<Self>) {
        if self.config.idle_cpu_per_second <= 0.0 {
            return;
        }
        let node = Rc::clone(self);
        self.sim.schedule_periodic(dur::secs(1), move || {
            if node.state.get() == NodeState::Stopped {
                return false;
            }
            node.cpu.submit(node.tenant, node.config.idle_cpu_per_second, || {});
            true
        });
    }

    fn load_catalog(self: &Rc<Self>, cb: impl FnOnce() + 'static) {
        let node = Rc::clone(self);
        self.client.scan(
            crdb_kv::keys::make_key(self.tenant, b"desc/"),
            crdb_kv::keys::make_key(self.tenant, b"desc0"),
            usize::MAX,
            move |pairs| {
                if let Ok(pairs) = pairs {
                    let mut catalog = node.catalog.borrow_mut();
                    for (_, v) in pairs {
                        if let Some(desc) = TableDescriptor::decode(&v) {
                            catalog.install(desc);
                        }
                    }
                }
                // Table statistics live beside the descriptors and feed the
                // cost-based planner; load them in the same refresh.
                let node2 = Rc::clone(&node);
                node.client.scan(
                    crdb_kv::keys::make_key(node.tenant, &rowcodec::stats_span_start()),
                    crdb_kv::keys::make_key(node.tenant, &rowcodec::stats_span_end()),
                    usize::MAX,
                    move |pairs| {
                        if let Ok(pairs) = pairs {
                            let mut catalog = node2.catalog.borrow_mut();
                            for (_, v) in pairs {
                                if let Some(stats) = TableStatistics::decode(&v) {
                                    catalog.install_stats(stats);
                                }
                            }
                        }
                        cb();
                    },
                );
            },
        );
    }

    fn register_instance(self: &Rc<Self>, cb: impl FnOnce() + 'static) {
        let mut key = BytesMut::new();
        key.put_slice(b"sqlinst/");
        key.put_u64(self.instance_id.raw());
        let mut value = BytesMut::new();
        value.put_u64(self.config.location.region.raw());
        value.put_u32(self.config.location.zone);
        self.client.put(
            crdb_kv::keys::make_key(self.tenant, &key.freeze()),
            value.freeze(),
            move |_| cb(),
        );
    }

    /// Opens a session for `user`; returns its ID.
    pub fn open_session(&self, user: &str) -> Result<u64, SqlError> {
        if self.state.get() != NodeState::Ready {
            return Err(SqlError::State(format!("node is {:?}", self.state.get())));
        }
        let id = self.next_session_id.get();
        self.next_session_id.set(id + 1);
        self.sessions.borrow_mut().insert(id, Session::new(id, user));
        Ok(id)
    }

    /// Closes a session.
    pub fn close_session(&self, id: u64) {
        self.sessions.borrow_mut().remove(&id);
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.borrow().len()
    }

    /// Sets a session variable.
    pub fn set_session_var(&self, session: u64, key: &str, value: &str) -> Result<(), SqlError> {
        let mut sessions = self.sessions.borrow_mut();
        let s = sessions.get_mut(&session).ok_or(SqlError::State("no such session".into()))?;
        s.settings.insert(key.to_string(), value.to_string());
        Ok(())
    }

    /// Registers a prepared statement.
    pub fn prepare(&self, session: u64, name: &str, sql: &str) -> Result<(), SqlError> {
        parse(sql).map_err(SqlError::Parse)?;
        let mut sessions = self.sessions.borrow_mut();
        let s = sessions.get_mut(&session).ok_or(SqlError::State("no such session".into()))?;
        s.prepared.insert(name.to_string(), sql.to_string());
        Ok(())
    }

    /// Executes a prepared statement by name.
    pub fn execute_prepared(
        self: &Rc<Self>,
        session: u64,
        name: &str,
        params: Vec<crate::value::Datum>,
        cb: impl FnOnce(Result<QueryOutput, SqlError>) + 'static,
    ) {
        let sql = {
            let sessions = self.sessions.borrow();
            match sessions.get(&session).and_then(|s| s.prepared.get(name)) {
                Some(s) => s.clone(),
                None => {
                    cb(Err(SqlError::State(format!("unknown prepared statement {name}"))));
                    return;
                }
            }
        };
        self.execute(session, &sql, params, cb);
    }

    /// Parses, plans and executes one statement in the given session.
    pub fn execute(
        self: &Rc<Self>,
        session: u64,
        sql: &str,
        params: Vec<crate::value::Datum>,
        cb: impl FnOnce(Result<QueryOutput, SqlError>) + 'static,
    ) {
        self.execute_with_deadline(session, sql, params, Deadline::NONE, cb)
    }

    /// Like [`SqlNode::execute`], but every KV batch the statement issues
    /// carries `deadline`, and no statement-level retry is scheduled past
    /// it. This is how the proxy's per-statement deadline propagates into
    /// the SQL layer. Internal maintenance work (catalog refresh, index
    /// backfill, intent cleanup) stays unbounded.
    pub fn execute_with_deadline(
        self: &Rc<Self>,
        session: u64,
        sql: &str,
        params: Vec<crate::value::Datum>,
        deadline: Deadline,
        cb: impl FnOnce(Result<QueryOutput, SqlError>) + 'static,
    ) {
        if !matches!(self.state.get(), NodeState::Ready | NodeState::Draining) {
            cb(Err(SqlError::State(format!("node is {:?}", self.state.get()))));
            return;
        }
        let stmt = match parse(sql) {
            Ok(s) => s,
            Err(e) => {
                cb(Err(SqlError::Parse(e)));
                return;
            }
        };
        let span = trace::child("sql.execute");
        span.tag("session", session);
        span.tag("tenant", self.tenant);
        let cb = {
            let span = span.clone();
            move |r: Result<QueryOutput, SqlError>| {
                if r.is_err() {
                    span.tag("error", true);
                }
                span.end();
                cb(r);
            }
        };
        let _scope = span.enter();
        self.execute_statement(session, stmt, params, deadline, 0, Box::new(cb));
    }

    fn execute_statement(
        self: &Rc<Self>,
        session: u64,
        stmt: Statement,
        params: Vec<crate::value::Datum>,
        deadline: Deadline,
        attempt: u32,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        self.queries_executed.set(self.queries_executed.get() + 1);
        // Transaction control first.
        match &stmt {
            Statement::Begin => {
                let mut sessions = self.sessions.borrow_mut();
                let s = match sessions.get_mut(&session) {
                    Some(s) => s,
                    None => {
                        cb(Err(SqlError::State("no such session".into())));
                        return;
                    }
                };
                if s.txn.as_ref().is_some_and(|t| t.is_pending()) {
                    drop(sessions);
                    cb(Err(SqlError::State("transaction already open".into())));
                    return;
                }
                s.txn = Some(Txn::begin_with_deadline(&self.client, deadline));
                // Release the borrow before the callback: it may issue the
                // next statement synchronously.
                drop(sessions);
                cb(Ok(QueryOutput::default()));
                return;
            }
            Statement::Commit | Statement::Rollback => {
                let txn = {
                    let mut sessions = self.sessions.borrow_mut();
                    match sessions.get_mut(&session).and_then(|s| s.txn.take()) {
                        Some(t) => t,
                        None => {
                            cb(Err(SqlError::State("no transaction open".into())));
                            return;
                        }
                    }
                };
                let finish = move |r: Result<(), SqlError>| match r {
                    Ok(()) => cb(Ok(QueryOutput::default())),
                    Err(e) => cb(Err(e)),
                };
                if matches!(stmt, Statement::Commit) {
                    txn.commit(finish);
                } else {
                    txn.rollback(finish);
                }
                return;
            }
            _ => {}
        }

        // Bind the planning result before matching: a `match` on the
        // expression directly would keep the catalog `RefMut` temporary
        // alive through the arms, and the `unknown table` arm can re-enter
        // `execute_statement` synchronously (a fail-fast catalog refresh
        // during a partition), which needs the catalog borrow again.
        let planned = plan_statement(&mut self.catalog.borrow_mut(), &stmt);
        let plan = match planned {
            Ok(p) => p,
            Err(SqlError::Plan(msg)) if msg.starts_with("unknown table") && attempt == 0 => {
                // The table may have been created by another SQL node since
                // this node loaded its catalog: refresh the descriptors
                // (the analogue of a descriptor-lease refresh) and retry.
                let node = Rc::clone(self);
                self.load_catalog(move || {
                    node.execute_statement(session, stmt, params, deadline, 1, cb);
                });
                return;
            }
            Err(e) => {
                cb(Err(e));
                return;
            }
        };

        // DDL runs autocommit against the catalog + descriptor storage.
        match plan {
            Plan::CreateTable(desc) => {
                let desc2 = desc.clone();
                self.persist_descriptor(
                    &desc,
                    Box::new({
                        let node = Rc::clone(self);
                        move |r| match r {
                            Ok(()) => {
                                node.catalog.borrow_mut().install(desc2);
                                cb(Ok(QueryOutput::default()));
                            }
                            Err(e) => cb(Err(e)),
                        }
                    }),
                );
            }
            Plan::CreateIndex { table, index } => {
                self.backfill_index(table, index, cb);
            }
            Plan::DropTable(desc) => {
                self.drop_table(desc, cb);
            }
            Plan::Analyze(desc) => {
                self.analyze_table(desc, cb);
            }
            Plan::Explain { lines } => {
                // EXPLAIN never executes: it renders the chosen plan tree
                // with estimated costs, one row per line.
                let rows: Vec<Vec<crate::value::Datum>> =
                    lines.into_iter().map(|l| vec![crate::value::Datum::Str(l)]).collect();
                cb(Ok(QueryOutput {
                    columns: vec!["plan".to_string()],
                    rows,
                    ..Default::default()
                }));
            }
            Plan::Begin | Plan::Commit | Plan::Rollback => unreachable!("handled above"),
            other => {
                // Query / DML.
                let (txn, autocommit) = {
                    let sessions = self.sessions.borrow();
                    match sessions.get(&session).and_then(|s| s.txn.clone()) {
                        Some(t) if t.is_pending() => (t, false),
                        _ => (Txn::begin_with_deadline(&self.client, deadline), true),
                    }
                };
                let node = Rc::clone(self);
                let stmt2 = stmt.clone();
                let params2 = params.clone();
                let txn_for_cb = txn.clone();
                execute(&txn, other, params, move |result| {
                    let txn = txn_for_cb;
                    match result {
                        Err(e) if e.is_retryable() && autocommit && attempt < 5 => {
                            // Retry the whole autocommit statement at a new
                            // timestamp after a short backoff — unless that
                            // retry would land past the caller's deadline.
                            let backoff = dur::ms(2 << attempt);
                            if !deadline.allows(node.sim.now(), backoff) {
                                cb(Err(SqlError::Kv(crdb_kv::batch::KvError::DeadlineExceeded)));
                                return;
                            }
                            let node2 = Rc::clone(&node);
                            let ambient = trace::current();
                            node.sim.schedule_after(backoff, move || {
                                let _g = ambient.enter();
                                node2.execute_statement(
                                    session,
                                    stmt2,
                                    params2,
                                    deadline,
                                    attempt + 1,
                                    cb,
                                )
                            });
                        }
                        Err(e) => cb(Err(e)),
                        Ok(output) => {
                            if autocommit {
                                let node2 = Rc::clone(&node);
                                let txn2 = txn.clone();
                                txn.commit(move |r| match r {
                                    Err(e) if e.is_retryable() && attempt < 5 => {
                                        let backoff = dur::ms(2 << attempt);
                                        if !deadline.allows(node2.sim.now(), backoff) {
                                            cb(Err(SqlError::Kv(
                                                crdb_kv::batch::KvError::DeadlineExceeded,
                                            )));
                                            return;
                                        }
                                        let node3 = Rc::clone(&node2);
                                        let ambient = trace::current();
                                        node2.sim.schedule_after(backoff, move || {
                                            let _g = ambient.enter();
                                            node3.execute_statement(
                                                session,
                                                stmt2,
                                                params2,
                                                deadline,
                                                attempt + 1,
                                                cb,
                                            )
                                        });
                                    }
                                    Err(e) => cb(Err(e)),
                                    Ok(()) => {
                                        let _ = txn2;
                                        node2.finish_with_cpu(output, cb);
                                    }
                                });
                            } else {
                                node.finish_with_cpu(output, cb);
                            }
                        }
                    }
                });
            }
        }
    }

    /// Charges SQL-layer CPU for a completed statement, then responds.
    fn finish_with_cpu(
        self: &Rc<Self>,
        output: QueryOutput,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        let stats = output.stats;
        let mut cost = self.config.cpu_per_statement
            + stats.rows_read as f64 * self.config.cpu_per_row
            + (stats.bytes_read + stats.bytes_written) as f64 * self.config.cpu_per_byte
            + stats.rows_written as f64 * self.config.cpu_per_row;
        if self.config.mode == ExecMode::Serverless {
            // Rows crossing the SQL/KV process boundary pay marshalling
            // (§6.1.2): full scans hurt, point reads barely notice.
            cost += stats.bytes_read as f64 * self.config.cpu_marshal_per_byte
                + stats.rows_read as f64 * self.config.cpu_marshal_per_row;
        }
        let span = trace::child("sql.cpu");
        self.cpu.submit(self.tenant, cost, move || {
            span.end();
            cb(Ok(output))
        });
    }

    fn persist_descriptor(
        &self,
        desc: &TableDescriptor,
        cb: Box<dyn FnOnce(Result<(), SqlError>)>,
    ) {
        let mut key = BytesMut::new();
        key.put_slice(b"desc/");
        key.put_u64(desc.id);
        self.client.put(
            crdb_kv::keys::make_key(self.tenant, &key.freeze()),
            desc.encode(),
            move |r| cb(r.map_err(SqlError::Kv)),
        );
    }

    fn backfill_index(
        self: &Rc<Self>,
        table: TableDescriptor,
        index: crate::schema::IndexDescriptor,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        // Scan the whole primary index and write entries transactionally.
        let txn = Txn::begin(&self.client);
        let start = rowcodec::index_prefix(table.id, crate::schema::PRIMARY_INDEX_ID).freeze();
        let end = rowcodec::index_prefix_end(table.id, crate::schema::PRIMARY_INDEX_ID);
        let node = Rc::clone(self);
        let txn2 = txn.clone();
        txn.scan(start, end, usize::MAX, move |pairs| {
            let pairs = match pairs {
                Ok(p) => p,
                Err(e) => {
                    cb(Err(e));
                    return;
                }
            };
            let mut n = 0u64;
            for (k, v) in pairs {
                if let Some(row) = rowcodec::decode_row(&table, &k, &v) {
                    txn2.put(
                        rowcodec::index_entry_key(&table, index.id, &index.columns, &row),
                        Bytes::new(),
                    );
                    n += 1;
                }
            }
            let table2 = table.clone();
            let node2 = Rc::clone(&node);
            txn2.commit(move |r| match r {
                Err(e) => cb(Err(e)),
                Ok(()) => {
                    node2.persist_descriptor(
                        &table2,
                        Box::new({
                            let node3 = Rc::clone(&node2);
                            let table3 = table2.clone();
                            move |r| match r {
                                Ok(()) => {
                                    node3.catalog.borrow_mut().install(table3);
                                    cb(Ok(QueryOutput { rows_affected: n, ..Default::default() }));
                                }
                                Err(e) => cb(Err(e)),
                            }
                        }),
                    );
                }
            });
        });
    }

    fn drop_table(
        self: &Rc<Self>,
        desc: TableDescriptor,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        // Delete every key of the table (all indexes), then the descriptor.
        let txn = Txn::begin(&self.client);
        let start = rowcodec::index_prefix(desc.id, 0).freeze();
        let end = rowcodec::index_prefix_end(desc.id, u32::MAX as u64);
        let node = Rc::clone(self);
        let txn2 = txn.clone();
        txn.scan(start, end, usize::MAX, move |pairs| {
            let pairs = match pairs {
                Ok(p) => p,
                Err(e) => {
                    cb(Err(e));
                    return;
                }
            };
            for (k, _) in pairs {
                txn2.delete(k);
            }
            let mut dkey = BytesMut::new();
            dkey.put_slice(b"desc/");
            dkey.put_u64(desc.id);
            txn2.delete(dkey.freeze());
            // Any persisted statistics go with the table.
            txn2.delete(rowcodec::stats_key(desc.id));
            let name = desc.name.clone();
            let node2 = Rc::clone(&node);
            txn2.commit(move |r| match r {
                Err(e) => cb(Err(e)),
                Ok(()) => {
                    node2.catalog.borrow_mut().remove(&name);
                    cb(Ok(QueryOutput::default()));
                }
            });
        });
    }

    /// `ANALYZE <table>`: streams the primary index in chunks, collecting
    /// row count, average key/value bytes, and per-index distinct-prefix
    /// counts, then persists the result under `tstat/<table_id>` and
    /// installs it in the catalog for the cost-based planner.
    fn analyze_table(
        self: &Rc<Self>,
        table: TableDescriptor,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        let start = crdb_kv::keys::make_key(
            self.tenant,
            &rowcodec::index_prefix(table.id, crate::schema::PRIMARY_INDEX_ID).freeze(),
        );
        let end = crdb_kv::keys::make_key(
            self.tenant,
            &rowcodec::index_prefix_end(table.id, crate::schema::PRIMARY_INDEX_ID),
        );
        let acc = Rc::new(RefCell::new(AnalyzeAcc {
            row_count: 0,
            key_bytes: 0,
            value_bytes: 0,
            distinct: BTreeMap::new(),
        }));
        self.analyze_chunk(table, start, end, acc, cb);
    }

    /// One ANALYZE scan chunk; recurses until the span is exhausted.
    fn analyze_chunk(
        self: &Rc<Self>,
        table: TableDescriptor,
        start: Bytes,
        end: Bytes,
        acc: Rc<RefCell<AnalyzeAcc>>,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        let node = Rc::clone(self);
        self.client.scan(start, end.clone(), ANALYZE_CHUNK, move |pairs| {
            let pairs = match pairs {
                Ok(p) => p,
                Err(e) => {
                    cb(Err(SqlError::Kv(e)));
                    return;
                }
            };
            let done = pairs.len() < ANALYZE_CHUNK;
            let mut next_start = None;
            {
                let mut a = acc.borrow_mut();
                // Index column sets whose prefixes are counted, primary
                // first.
                let mut index_cols: Vec<(u64, Vec<usize>)> =
                    vec![(crate::schema::PRIMARY_INDEX_ID, table.primary_key.clone())];
                for idx in &table.indexes {
                    index_cols.push((idx.id, idx.columns.clone()));
                }
                for (k, v) in &pairs {
                    // The raw client scan returns tenant-prefixed keys.
                    let Some(user_key) = crdb_kv::keys::strip_prefix(node.tenant, k) else {
                        continue;
                    };
                    let Some(row) = rowcodec::decode_row(&table, &user_key, v) else {
                        continue;
                    };
                    a.row_count += 1;
                    a.key_bytes += user_key.len() as u64;
                    a.value_bytes += v.len() as u64;
                    for (index_id, cols) in &index_cols {
                        for plen in 1..=cols.len() {
                            let datums: Vec<crate::value::Datum> =
                                cols[..plen].iter().map(|&c| row[c].clone()).collect();
                            let prefix = rowcodec::key_with_prefix(&table, *index_id, &datums);
                            a.distinct.entry((*index_id, plen as u64)).or_default().insert(prefix);
                        }
                    }
                }
                if let Some((k, _)) = pairs.last() {
                    // Resume strictly after the last key seen.
                    let mut nk = BytesMut::with_capacity(k.len() + 1);
                    nk.put_slice(k);
                    nk.put_u8(0);
                    next_start = Some(nk.freeze());
                }
            }
            match next_start {
                Some(ns) if !done => node.analyze_chunk(table, ns, end, acc, cb),
                _ => node.finish_analyze(table, acc, cb),
            }
        });
    }

    /// Builds, persists and installs the statistics once the scan is done.
    fn finish_analyze(
        self: &Rc<Self>,
        table: TableDescriptor,
        acc: Rc<RefCell<AnalyzeAcc>>,
        cb: Box<dyn FnOnce(Result<QueryOutput, SqlError>)>,
    ) {
        let a = acc.borrow();
        let row_count = a.row_count;
        // (index, plen) keys iterate in plen order per index, so pushing
        // yields distinct counts indexed by prefix length - 1.
        let mut distinct_prefixes: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for ((index_id, _plen), set) in a.distinct.iter() {
            distinct_prefixes.entry(*index_id).or_default().push(set.len() as u64);
        }
        let stats = TableStatistics {
            table_id: table.id,
            row_count,
            avg_key_bytes: a.key_bytes.checked_div(row_count).unwrap_or(0),
            avg_value_bytes: a.value_bytes.checked_div(row_count).unwrap_or(0),
            distinct_prefixes,
            created_at_nanos: self.sim.now().as_nanos(),
        };
        drop(a);
        let node = Rc::clone(self);
        let stats2 = stats.clone();
        self.client.put(
            crdb_kv::keys::make_key(self.tenant, &rowcodec::stats_key(table.id)),
            Bytes::from(stats.encode()),
            move |r| match r {
                Err(e) => cb(Err(SqlError::Kv(e))),
                Ok(()) => {
                    node.catalog.borrow_mut().install_stats(stats2);
                    cb(Ok(QueryOutput { rows_affected: row_count, ..Default::default() }));
                }
            },
        );
    }

    /// Serializes an idle session for migration (§4.2.4).
    pub fn serialize_session(&self, session: u64) -> Result<SessionSnapshot, SqlError> {
        let sessions = self.sessions.borrow();
        let s = sessions.get(&session).ok_or(SqlError::State("no such session".into()))?;
        SessionSnapshot::capture(
            s,
            self.tenant.raw(),
            self.sim.now().as_nanos(),
            self.revival_secret,
        )
    }

    /// Restores a migrated session; returns the new session ID.
    pub fn restore_session(&self, snapshot: &SessionSnapshot) -> Result<u64, SqlError> {
        if self.state.get() != NodeState::Ready {
            return Err(SqlError::State(format!("node is {:?}", self.state.get())));
        }
        let id = self.next_session_id.get();
        self.next_session_id.set(id + 1);
        let session = snapshot.restore(id, self.tenant.raw(), self.revival_secret)?;
        self.sessions.borrow_mut().insert(id, session);
        Ok(id)
    }

    /// Puts the node into draining: existing sessions keep working, new
    /// sessions are refused.
    pub fn drain(&self) {
        if self.state.get() == NodeState::Ready {
            self.state.set(NodeState::Draining);
        }
    }

    /// Returns a draining node to Ready — the autoscaler reuses draining
    /// nodes before pulling from the warm pool (§4.2.3). Retired nodes
    /// (rolling upgrades) are not reusable.
    pub fn set_ready_for_reuse(&self) {
        if self.state.get() == NodeState::Draining && !self.retired.get() {
            self.state.set(NodeState::Ready);
        }
    }

    /// Marks the node as retiring (rolling upgrade, §6.4): it drains and
    /// must not be reclaimed for scale-up.
    pub fn retire(&self) {
        self.retired.set(true);
        self.drain();
    }

    /// Whether the node has been retired.
    pub fn is_retired(&self) -> bool {
        self.retired.get()
    }

    /// Stops the node.
    pub fn shutdown(&self) {
        self.state.set(NodeState::Stopped);
        self.sessions.borrow_mut().clear();
    }

    /// Abrupt process death (fault injection). Unlike an orderly
    /// [`SqlNode::shutdown`] nothing drains: in-memory sessions are lost
    /// on the spot, and the proxy must detect the dead backend and revive
    /// its sessions on another node from cached snapshots (§4.2.4).
    pub fn crash(&self) {
        self.crashed.set(true);
        self.state.set(NodeState::Stopped);
        self.sessions.borrow_mut().clear();
    }

    /// Whether the node died by [`SqlNode::crash`].
    pub fn has_crashed(&self) -> bool {
        self.crashed.get()
    }

    /// The node's KV client (for tests and the orchestrator).
    pub fn kv_client(&self) -> &KvClient {
        &self.client
    }

    /// Read access to the catalog (for tests).
    pub fn catalog(&self) -> Rc<RefCell<Catalog>> {
        Rc::clone(&self.catalog)
    }

    /// Current time (from the shared simulation clock).
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}
