//! Table statistics collected by `ANALYZE` and consumed by the
//! cost-based planner.
//!
//! Statistics live in the tenant's own keyspace (a `tstat/<table id>`
//! key next to the `desc/` descriptors — the FoundationDB Record Layer
//! shape of keeping per-tenant metadata inside the tenant), so a SQL
//! pod that cold-starts for the tenant reads them back with the same
//! catalog scan machinery and every pod plans with the same numbers:
//! the paper's "same query, same plan" contract (§6.7) extends to
//! statistics because they are versioned KV state, not process state.
//!
//! All counts are integers. The planner's cost model is integer-only so
//! plan choice can never depend on float rounding (see `plan.rs`).

use std::collections::BTreeMap;

/// Statistics for one table, collected by a full scan of the primary
/// index at `ANALYZE` time.
///
/// `distinct_prefixes[index_id][k-1]` holds the number of distinct
/// `k`-column key prefixes observed for that index — e.g. for an index
/// on `(s_w_id, s_i_id)`, element 0 counts distinct warehouses and
/// element 1 counts distinct `(warehouse, item)` pairs. The planner
/// divides `row_count` by the relevant prefix count to estimate rows
/// per equality seek.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStatistics {
    /// Table these statistics describe.
    pub table_id: u64,
    /// Total rows in the primary index at collection time.
    pub row_count: u64,
    /// Average encoded primary-key length in bytes (0 when empty).
    pub avg_key_bytes: u64,
    /// Average encoded row-value length in bytes (0 when empty).
    pub avg_value_bytes: u64,
    /// Distinct prefix counts per index id (primary included).
    pub distinct_prefixes: BTreeMap<u64, Vec<u64>>,
    /// Simulation time (nanoseconds) the collection scan started.
    pub created_at_nanos: u64,
}

impl TableStatistics {
    /// Distinct count for the first `prefix_len` columns of `index_id`,
    /// if collected. `prefix_len` of zero never matches.
    pub fn distinct_prefix(&self, index_id: u64, prefix_len: usize) -> Option<u64> {
        if prefix_len == 0 {
            return None;
        }
        self.distinct_prefixes.get(&index_id).and_then(|v| v.get(prefix_len - 1)).copied()
    }

    /// Serializes to the stored value format (length-prefixed integers,
    /// same hand-rolled style as the table descriptor codec).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.table_id.to_be_bytes());
        out.extend_from_slice(&self.row_count.to_be_bytes());
        out.extend_from_slice(&self.avg_key_bytes.to_be_bytes());
        out.extend_from_slice(&self.avg_value_bytes.to_be_bytes());
        out.extend_from_slice(&self.created_at_nanos.to_be_bytes());
        out.extend_from_slice(&(self.distinct_prefixes.len() as u32).to_be_bytes());
        for (index_id, counts) in &self.distinct_prefixes {
            out.extend_from_slice(&index_id.to_be_bytes());
            out.extend_from_slice(&(counts.len() as u32).to_be_bytes());
            for c in counts {
                out.extend_from_slice(&c.to_be_bytes());
            }
        }
        out
    }

    /// Parses the stored value format; `None` on any truncation.
    pub fn decode(buf: &[u8]) -> Option<TableStatistics> {
        let mut r = Reader { buf, pos: 0 };
        let table_id = r.u64()?;
        let row_count = r.u64()?;
        let avg_key_bytes = r.u64()?;
        let avg_value_bytes = r.u64()?;
        let created_at_nanos = r.u64()?;
        let n_indexes = r.u32()?;
        let mut distinct_prefixes = BTreeMap::new();
        for _ in 0..n_indexes {
            let index_id = r.u64()?;
            let len = r.u32()?;
            let mut counts = Vec::with_capacity(len as usize);
            for _ in 0..len {
                counts.push(r.u64()?);
            }
            distinct_prefixes.insert(index_id, counts);
        }
        Some(TableStatistics {
            table_id,
            row_count,
            avg_key_bytes,
            avg_value_bytes,
            distinct_prefixes,
            created_at_nanos,
        })
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.pos + n > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableStatistics {
        let mut distinct = BTreeMap::new();
        distinct.insert(1, vec![2, 100]);
        distinct.insert(2, vec![40]);
        TableStatistics {
            table_id: 101,
            row_count: 100,
            avg_key_bytes: 22,
            avg_value_bytes: 37,
            distinct_prefixes: distinct,
            created_at_nanos: 5_000_000_000,
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let decoded = TableStatistics::decode(&s.encode()).expect("decodes");
        assert_eq!(decoded, s);
    }

    #[test]
    fn truncation_is_none() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(TableStatistics::decode(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn distinct_prefix_lookup() {
        let s = sample();
        assert_eq!(s.distinct_prefix(1, 1), Some(2));
        assert_eq!(s.distinct_prefix(1, 2), Some(100));
        assert_eq!(s.distinct_prefix(1, 3), None);
        assert_eq!(s.distinct_prefix(1, 0), None);
        assert_eq!(s.distinct_prefix(9, 1), None);
    }
}
