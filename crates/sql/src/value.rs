//! SQL datums and column types.

use std::cmp::Ordering;
use std::fmt;

/// A SQL column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// Double-precision float.
    Float,
    /// UTF-8 string.
    String,
    /// Boolean.
    Bool,
}

/// A SQL value.
#[derive(Debug, Clone)]
pub enum Datum {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Datum {
    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// The type of this datum, if not NULL.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Datum::Null => None,
            Datum::Int(_) => Some(ColumnType::Int),
            Datum::Float(_) => Some(ColumnType::Float),
            Datum::Str(_) => Some(ColumnType::String),
            Datum::Bool(_) => Some(ColumnType::Bool),
        }
    }

    /// Numeric view (ints widen to float), for arithmetic and aggregates.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Truthiness for WHERE clauses (NULL is not true).
    pub fn is_true(&self) -> bool {
        matches!(self, Datum::Bool(true))
    }

    /// SQL comparison: NULL compares as unknown (`None`); numeric types
    /// compare cross-type.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        use Datum::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality (NULL = anything is unknown → false).
    pub fn sql_eq(&self, other: &Datum) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Float(x) => write!(f, "{x}"),
            Datum::Str(s) => write!(f, "{s}"),
            Datum::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Datum::Null, Datum::Null) => true,
            _ => self.sql_eq(other),
        }
    }
}

/// A row: a vector of datums aligned with a table's columns.
pub type Row = Vec<Datum>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons() {
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Int(2)), Some(Ordering::Less));
        assert_eq!(Datum::Int(2).sql_cmp(&Datum::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Datum::Str("a".into()).sql_cmp(&Datum::Str("b".into())), Some(Ordering::Less));
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert!(!Datum::Null.sql_eq(&Datum::Null), "NULL = NULL is unknown");
        assert_eq!(Datum::Null, Datum::Null, "but Rust Eq treats them equal for grouping");
    }

    #[test]
    fn truthiness() {
        assert!(Datum::Bool(true).is_true());
        assert!(!Datum::Bool(false).is_true());
        assert!(!Datum::Null.is_true());
        assert!(!Datum::Int(1).is_true());
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Datum::Int(5).as_f64(), Some(5.0));
        assert_eq!(Datum::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Datum::Str("x".into()).as_f64(), None);
        assert_eq!(Datum::Int(5).as_i64(), Some(5));
    }

    #[test]
    fn display() {
        assert_eq!(Datum::Int(42).to_string(), "42");
        assert_eq!(Datum::Null.to_string(), "NULL");
        assert_eq!(Datum::Bool(true).to_string(), "true");
    }
}
