//! The per-tenant system database and its multi-region localities
//! (§3.2.5).
//!
//! Cold starts of SQL nodes "perform multiple blocking reads and writes to
//! the system database. … Using the default configuration for the system
//! database would place all leaseholders in one region, which would
//! require cross-region accesses for all nodes outside that region and
//! increase cold start latency." The optimized configuration converts
//! `system.descriptor` (consistent low-latency reads) to a **global**
//! table and `system.sql_instances` (latency-sensitive writes) to
//! **regional by row**.
//!
//! This module models the *latency* of system-table accesses as a function
//! of locality and the requesting region — the arithmetic behind Fig. 10b
//! — while the content of the tables (descriptors, instance rows) lives in
//! real KV keys.

use std::time::Duration;

use crdb_sim::{Location, Topology};
use crdb_util::RegionId;

/// Table locality, per the multi-region SQL abstractions of \[58\].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableLocality {
    /// Readable locally in every region (non-voting replicas everywhere);
    /// writes pay cross-region coordination.
    Global,
    /// Each row homed in a region; reads/writes of a row from its home
    /// region are local.
    RegionalByRow,
    /// Whole table homed in one region.
    RegionalByTable(RegionId),
}

/// Access type for latency modeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Consistent read.
    Read,
    /// Replicated write.
    Write,
}

/// A system table relevant to cold start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemTable {
    /// SQL schema metadata (`system.descriptor`).
    Descriptor,
    /// Cluster settings (`system.settings`).
    Settings,
    /// Authentication data (`system.users`).
    Users,
    /// SQL instance registry for DistSQL discovery
    /// (`system.sql_instances`).
    SqlInstances,
    /// Lease table for schema leases (`system.lease`).
    Lease,
}

/// The system database configuration of one tenant.
#[derive(Debug, Clone)]
pub struct SystemDatabase {
    /// Whether the §3.2.5 multi-region optimizations are applied.
    pub multi_region_optimized: bool,
    /// Where leaseholders sit when unoptimized (the paper's experiment
    /// pins them to asia-southeast1).
    pub home_region: RegionId,
    /// The tenant's configured regions.
    pub regions: Vec<RegionId>,
}

impl SystemDatabase {
    /// An optimized single/multi-region system database homed at `home`.
    pub fn optimized(home_region: RegionId, regions: Vec<RegionId>) -> Self {
        SystemDatabase { multi_region_optimized: true, home_region, regions }
    }

    /// The unoptimized configuration: every system table regional in
    /// `home`.
    pub fn unoptimized(home_region: RegionId, regions: Vec<RegionId>) -> Self {
        SystemDatabase { multi_region_optimized: false, home_region, regions }
    }

    /// The effective locality of a system table.
    pub fn locality(&self, table: SystemTable) -> TableLocality {
        if !self.multi_region_optimized {
            return TableLocality::RegionalByTable(self.home_region);
        }
        match table {
            // Tables needing consistent low-latency reads become global.
            SystemTable::Descriptor | SystemTable::Settings | SystemTable::Users => {
                TableLocality::Global
            }
            // Tables with latency-sensitive writes become regional by row.
            SystemTable::SqlInstances | SystemTable::Lease => TableLocality::RegionalByRow,
        }
    }

    /// Latency of one access to `table` from a node in `from`, on
    /// `topology`. Reads cost one RTT to the serving replica; writes add
    /// quorum coordination.
    pub fn access_latency(
        &self,
        topology: &Topology,
        table: SystemTable,
        access: Access,
        from: Location,
    ) -> Duration {
        let local = Location::new(from.region, from.zone);
        let other_zone = Location::new(from.region, (from.zone + 1) % 3);
        let local_rtt = topology.base_latency(from, local) * 2;
        let zone_quorum_rtt = topology.base_latency(from, other_zone) * 2;
        match (self.locality(table), access) {
            (TableLocality::Global, Access::Read) => {
                // Consistent local read from a non-voting replica.
                local_rtt
            }
            (TableLocality::Global, Access::Write) => {
                // Coordinate with the farthest configured region.
                let worst = self
                    .regions
                    .iter()
                    .map(|&r| topology.base_latency(from, Location::new(r, 0)) * 2)
                    .max()
                    .unwrap_or(local_rtt);
                worst + local_rtt
            }
            (TableLocality::RegionalByRow, Access::Read) => local_rtt,
            (TableLocality::RegionalByRow, Access::Write) => {
                // Leaseholder local; quorum within the region (zone
                // survivability).
                local_rtt + zone_quorum_rtt
            }
            (TableLocality::RegionalByTable(home), access) => {
                let to_home = topology.base_latency(from, Location::new(home, 0)) * 2;
                match access {
                    Access::Read => to_home,
                    Access::Write => to_home + to_home / 2,
                }
            }
        }
    }

    /// The sequence of blocking system-database accesses a SQL node
    /// performs during cold start (§3.2.5, §6.5): schema and settings
    /// reads, authentication, then making itself discoverable.
    pub fn cold_start_accesses() -> Vec<(SystemTable, Access)> {
        vec![
            (SystemTable::Settings, Access::Read),
            (SystemTable::Descriptor, Access::Read),
            (SystemTable::Descriptor, Access::Read),
            (SystemTable::Users, Access::Read),
            (SystemTable::Lease, Access::Write),
            (SystemTable::SqlInstances, Access::Write),
        ]
    }

    /// Total cold-start system-database latency from `from`.
    pub fn cold_start_latency(&self, topology: &Topology, from: Location) -> Duration {
        Self::cold_start_accesses()
            .into_iter()
            .map(|(t, a)| self.access_latency(topology, t, a, from))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crdb_util::time::dur;

    fn three_region() -> Topology {
        Topology::three_region()
    }

    #[test]
    fn optimized_localities() {
        let db =
            SystemDatabase::optimized(RegionId(0), vec![RegionId(0), RegionId(1), RegionId(2)]);
        assert_eq!(db.locality(SystemTable::Descriptor), TableLocality::Global);
        assert_eq!(db.locality(SystemTable::SqlInstances), TableLocality::RegionalByRow);
    }

    #[test]
    fn unoptimized_pins_everything_to_home() {
        let db =
            SystemDatabase::unoptimized(RegionId(2), vec![RegionId(0), RegionId(1), RegionId(2)]);
        assert_eq!(
            db.locality(SystemTable::Descriptor),
            TableLocality::RegionalByTable(RegionId(2))
        );
    }

    #[test]
    fn optimized_cold_start_is_local_everywhere() {
        let topo = three_region();
        let db = SystemDatabase::optimized(RegionId(0), topo.regions().collect());
        for region in topo.regions() {
            let latency = db.cold_start_latency(&topo, Location::new(region, 0));
            assert!(
                latency < dur::ms(50),
                "region {region}: optimized cold start stays local: {latency:?}"
            );
        }
    }

    #[test]
    fn unoptimized_cold_start_pays_cross_region_rtts() {
        let topo = three_region();
        // Leaseholders pinned to asia-southeast1 (region 2), as in the
        // paper's experiment.
        let db = SystemDatabase::unoptimized(RegionId(2), topo.regions().collect());
        // From asia itself: still fast.
        let asia = db.cold_start_latency(&topo, Location::new(RegionId(2), 0));
        assert!(asia < dur::ms(50), "{asia:?}");
        // From europe: each access pays the eu<->asia RTT (~250 ms), and
        // cold start performs several of them.
        let europe = db.cold_start_latency(&topo, Location::new(RegionId(1), 0));
        assert!(europe > dur::ms(1000), "cross-region cold start is slow: {europe:?}");
        // From us-central: in between.
        let us = db.cold_start_latency(&topo, Location::new(RegionId(0), 0));
        assert!(us > dur::ms(700) && us < europe, "{us:?}");
    }

    #[test]
    fn global_writes_cost_more_than_reads() {
        let topo = three_region();
        let db = SystemDatabase::optimized(RegionId(0), topo.regions().collect());
        let from = Location::new(RegionId(0), 0);
        let read = db.access_latency(&topo, SystemTable::Descriptor, Access::Read, from);
        let write = db.access_latency(&topo, SystemTable::Descriptor, Access::Write, from);
        assert!(write > read * 10, "global writes pay cross-region: {read:?} vs {write:?}");
    }

    #[test]
    fn regional_by_row_writes_stay_local() {
        let topo = three_region();
        let db = SystemDatabase::optimized(RegionId(0), topo.regions().collect());
        for region in topo.regions() {
            let w = db.access_latency(
                &topo,
                SystemTable::SqlInstances,
                Access::Write,
                Location::new(region, 0),
            );
            assert!(w < dur::ms(10), "region {region}: {w:?}");
        }
    }
}
