//! The per-tenant SQL layer (§3.1, §3.2.2).
//!
//! Each tenant runs its own instance of this layer in its own process (a
//! "SQL node", §4.1): it owns no durable state beyond what it reads and
//! writes through the KV batch API, which is what makes SQL nodes cheap to
//! start, stop and migrate — the architectural key to sub-second cold
//! starts.
//!
//! - [`value`], [`schema`], [`rowcodec`] — datums, table/index
//!   descriptors, and the order-preserving row↔KV encoding.
//! - [`lexer`], [`parser`], [`expr`] — a SQL dialect sufficient for the
//!   paper's workloads (DDL, DML, filters, aggregates, order/limit,
//!   joins).
//! - [`plan`], [`exec`] — cost-based logical planning (span extraction
//!   from predicates, statistics-driven index selection, lookup joins,
//!   LIMIT pushdown) and a callback-driven executor over the KV client.
//! - [`stats`] — per-table statistics collected by `ANALYZE` and
//!   persisted in the tenant keyspace for the cost model.
//! - [`coord`] — the transaction coordinator: buffered writes,
//!   read-your-writes, parallel intent writes, commit via transaction
//!   record flip, intent resolution.
//! - [`session`] — SQL sessions, prepared statements, and the serialized
//!   session + revival token used for dynamic session migration (§4.2.4).
//! - [`system_db`] — the per-tenant system database with multi-region
//!   table localities (global / regional-by-row, §3.2.5): descriptor reads
//!   and `sql_instances` registration with locality-aware latency, the
//!   determinant of multi-region cold-start time (Fig. 10b).
//! - [`node`] — the SQL node: startup sequence (certificate wait → KV
//!   connect → system reads → instance registration), query execution,
//!   DistSQL-lite placement (Traditional vs Serverless process boundaries,
//!   §6.1), and CPU accounting.

#![warn(missing_docs)]

pub mod coord;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod node;
pub mod parser;
pub mod plan;
pub mod rowcodec;
pub mod schema;
pub mod session;
pub mod stats;
pub mod system_db;
pub mod value;

pub use node::{SqlNode, SqlNodeConfig};
pub use session::Session;
pub use value::Datum;
