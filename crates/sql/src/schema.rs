//! Table and index descriptors, and their binary encoding.
//!
//! Descriptors are persisted in the tenant's `system.descriptor` table —
//! each tenant keeps "its own separate copy of all the SQL metadata,
//! without visibility of that of other tenants" (§3.2.2). The encoding is
//! a small hand-rolled binary format (the workspace deliberately carries
//! no serialization-format dependency).

use bytes::{BufMut, Bytes, BytesMut};

use crate::value::ColumnType;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lower-cased).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

/// A secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDescriptor {
    /// Index ID (unique within the table; 1 is the primary index).
    pub id: u64,
    /// Index name.
    pub name: String,
    /// Indexed column ordinals, in order.
    pub columns: Vec<usize>,
}

/// A table descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDescriptor {
    /// Table ID (unique within the tenant).
    pub id: u64,
    /// Table name (lower-cased).
    pub name: String,
    /// Columns in ordinal order.
    pub columns: Vec<Column>,
    /// Primary-key column ordinals, in order.
    pub primary_key: Vec<usize>,
    /// Secondary indexes.
    pub indexes: Vec<IndexDescriptor>,
}

/// ID of the primary index in key encoding.
pub const PRIMARY_INDEX_ID: u64 = 1;

impl TableDescriptor {
    /// Ordinal of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Ordinals of the non-primary-key columns, in ordinal order.
    pub fn value_columns(&self) -> Vec<usize> {
        (0..self.columns.len()).filter(|i| !self.primary_key.contains(i)).collect()
    }

    /// The secondary index whose leading columns exactly cover `cols`
    /// as a prefix, if any.
    pub fn index_with_prefix(&self, cols: &[usize]) -> Option<&IndexDescriptor> {
        self.indexes
            .iter()
            .find(|idx| cols.len() <= idx.columns.len() && idx.columns[..cols.len()] == *cols)
    }

    /// Serializes the descriptor.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u64(self.id);
        put_str(&mut b, &self.name);
        b.put_u32(self.columns.len() as u32);
        for c in &self.columns {
            put_str(&mut b, &c.name);
            b.put_u8(match c.ty {
                ColumnType::Int => 0,
                ColumnType::Float => 1,
                ColumnType::String => 2,
                ColumnType::Bool => 3,
            });
            b.put_u8(c.nullable as u8);
        }
        b.put_u32(self.primary_key.len() as u32);
        for &i in &self.primary_key {
            b.put_u32(i as u32);
        }
        b.put_u32(self.indexes.len() as u32);
        for idx in &self.indexes {
            b.put_u64(idx.id);
            put_str(&mut b, &idx.name);
            b.put_u32(idx.columns.len() as u32);
            for &i in &idx.columns {
                b.put_u32(i as u32);
            }
        }
        b.freeze()
    }

    /// Deserializes a descriptor.
    pub fn decode(raw: &[u8]) -> Option<TableDescriptor> {
        let mut r = Reader { buf: raw, pos: 0 };
        let id = r.u64()?;
        let name = r.str()?;
        let ncols = r.u32()? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let name = r.str()?;
            let ty = match r.u8()? {
                0 => ColumnType::Int,
                1 => ColumnType::Float,
                2 => ColumnType::String,
                3 => ColumnType::Bool,
                _ => return None,
            };
            let nullable = r.u8()? == 1;
            columns.push(Column { name, ty, nullable });
        }
        let npk = r.u32()? as usize;
        let mut primary_key = Vec::with_capacity(npk);
        for _ in 0..npk {
            primary_key.push(r.u32()? as usize);
        }
        let nidx = r.u32()? as usize;
        let mut indexes = Vec::with_capacity(nidx);
        for _ in 0..nidx {
            let id = r.u64()?;
            let name = r.str()?;
            let n = r.u32()? as usize;
            let mut cols = Vec::with_capacity(n);
            for _ in 0..n {
                cols.push(r.u32()? as usize);
            }
            indexes.push(IndexDescriptor { id, name, columns: cols });
        }
        Some(TableDescriptor { id, name, columns, primary_key, indexes })
    }
}

fn put_str(b: &mut BytesMut, s: &str) {
    b.put_u32(s.len() as u32);
    b.put_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().ok()?))
    }
    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableDescriptor {
        TableDescriptor {
            id: 52,
            name: "warehouse".into(),
            columns: vec![
                Column { name: "w_id".into(), ty: ColumnType::Int, nullable: false },
                Column { name: "w_name".into(), ty: ColumnType::String, nullable: false },
                Column { name: "w_ytd".into(), ty: ColumnType::Float, nullable: true },
            ],
            primary_key: vec![0],
            indexes: vec![IndexDescriptor { id: 2, name: "w_name_idx".into(), columns: vec![1] }],
        }
    }

    #[test]
    fn descriptor_roundtrip() {
        let d = sample();
        let decoded = TableDescriptor::decode(&d.encode()).expect("decodes");
        assert_eq!(decoded, d);
    }

    #[test]
    fn decode_rejects_truncation() {
        let raw = sample().encode();
        for cut in [0, 4, 9, raw.len() - 1] {
            assert_eq!(TableDescriptor::decode(&raw[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn column_lookup_and_value_columns() {
        let d = sample();
        assert_eq!(d.column_index("w_name"), Some(1));
        assert_eq!(d.column_index("nope"), None);
        assert_eq!(d.value_columns(), vec![1, 2]);
    }

    #[test]
    fn index_prefix_match() {
        let d = sample();
        assert_eq!(d.index_with_prefix(&[1]).map(|i| i.id), Some(2));
        assert_eq!(d.index_with_prefix(&[2]), None);
        assert_eq!(d.index_with_prefix(&[]).map(|i| i.id), Some(2), "empty prefix matches any");
    }
}
