//! SQL tokenizer.

use std::fmt;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser; identifiers are lower-cased here).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `$n` prepared-statement parameter (1-based).
    Param(usize),
    /// Punctuation or operator.
    Sym(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Param(n) => write!(f, "${n}"),
            Token::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// Tokenizes SQL text. Returns an error message on malformed input.
pub fn tokenize(input: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err("unterminated string literal".into()),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err("bare $".into());
                }
                let n: usize = input[start..j].parse().map_err(|_| "bad param")?;
                if n == 0 {
                    return Err("params are 1-based".into());
                }
                out.push(Token::Param(n));
                i = j;
            }
            '0'..='9' => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit() || (bytes[j] == b'.' && !is_float))
                {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &input[start..j];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| "bad float")?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| "bad int")?));
                }
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                out.push(Token::Ident(input[start..j].to_ascii_lowercase()));
                i = j;
            }
            '<' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Sym("<="));
                i += 2;
            }
            '>' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Sym(">="));
                i += 2;
            }
            '<' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Token::Sym("!="));
                i += 2;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Sym("!="));
                i += 2;
            }
            '=' => {
                out.push(Token::Sym("="));
                i += 1;
            }
            '<' => {
                out.push(Token::Sym("<"));
                i += 1;
            }
            '>' => {
                out.push(Token::Sym(">"));
                i += 1;
            }
            '(' | ')' | ',' | '*' | '+' | '-' | '/' | '%' | '.' | ';' => {
                let sym = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    '%' => "%",
                    '.' => ".",
                    _ => ";",
                };
                out.push(Token::Sym(sym));
                i += 1;
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let toks = tokenize("SELECT a, b FROM t WHERE a >= 10").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("select".into()),
                Token::Ident("a".into()),
                Token::Sym(","),
                Token::Ident("b".into()),
                Token::Ident("from".into()),
                Token::Ident("t".into()),
                Token::Ident("where".into()),
                Token::Ident("a".into()),
                Token::Sym(">="),
                Token::Int(10),
            ]
        );
    }

    #[test]
    fn literals() {
        let toks = tokenize("1 2.5 'it''s' $3").unwrap();
        assert_eq!(
            toks,
            vec![Token::Int(1), Token::Float(2.5), Token::Str("it's".into()), Token::Param(3),]
        );
    }

    #[test]
    fn operators_and_comments() {
        let toks = tokenize("a <> b -- trailing\n c != d <= e >= f").unwrap();
        let syms: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Sym(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["!=", "!=", "<=", ">="]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("$0").is_err());
        assert!(tokenize("$").is_err());
        assert!(tokenize("#").is_err());
    }

    #[test]
    fn identifiers_lowercased() {
        let toks = tokenize("SeLeCt FooBar").unwrap();
        assert_eq!(toks[1], Token::Ident("foobar".into()));
    }
}
