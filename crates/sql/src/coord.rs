//! The SQL-side transaction coordinator.
//!
//! SQL statements buffer their writes in the coordinator; reads merge the
//! buffer over MVCC snapshots (read-your-writes). Commit runs the
//! two-phase KV protocol: write intents for every buffered key (one
//! batch, split per range by the KV client), flip the transaction record
//! via `EndTxn`, then resolve intents. Conflicts surface as retryable
//! errors — the session layer re-runs the transaction, which is also how
//! the production system behaves under `RETRY_SERIALIZABLE`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use bytes::Bytes;
use crdb_kv::batch::{BatchRequest, KvError, RequestKind, ResponseKind};
use crdb_kv::client::{make_txn_meta, KvClient};
use crdb_kv::keys as kvkeys;
use crdb_kv::txn::TxnMeta;
use crdb_obs::trace;
use crdb_util::Deadline;

use crate::expr::EvalError;

/// SQL-layer errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexing/parsing failure.
    Parse(String),
    /// Planning failure (unknown table, unbound column, …).
    Plan(String),
    /// Runtime expression error.
    Eval(EvalError),
    /// KV-layer error (non-retryable).
    Kv(KvError),
    /// Serialization conflict: the transaction should be retried.
    Retry(String),
    /// Transient infrastructure failure (partition, crash, dark region):
    /// retryable like [`SqlError::Retry`], but kept distinct so upstream
    /// circuit breakers can tell an outage from workload contention.
    Unavailable,
    /// Constraint violation (duplicate primary key, null in non-null).
    Constraint(String),
    /// Session/transaction state misuse.
    State(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Plan(m) => write!(f, "planning error: {m}"),
            SqlError::Eval(e) => write!(f, "evaluation error: {e}"),
            SqlError::Kv(e) => write!(f, "kv error: {e:?}"),
            SqlError::Retry(m) => write!(f, "restart transaction: {m}"),
            SqlError::Unavailable => write!(f, "restart transaction: kv unavailable"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::State(m) => write!(f, "invalid state: {m}"),
        }
    }
}

impl SqlError {
    /// Whether the enclosing transaction should be retried.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SqlError::Retry(_) | SqlError::Unavailable)
    }
}

fn map_kv_error(e: KvError) -> SqlError {
    match e {
        KvError::WriteTooOld { .. } => SqlError::Retry("write too old".into()),
        KvError::IntentConflict { other_txn } => {
            SqlError::Retry(format!("conflict with txn {other_txn}"))
        }
        KvError::TxnAborted => SqlError::Retry("transaction aborted".into()),
        // Transient infrastructure failure (crash or partition): the
        // statement failed fast, but the transaction is retryable once
        // the fault clears or leases move.
        KvError::Unavailable => SqlError::Unavailable,
        // Deliberately NOT retryable: the caller's deadline has already
        // passed, so re-running the transaction can only waste work.
        KvError::DeadlineExceeded => SqlError::Kv(KvError::DeadlineExceeded),
        other => SqlError::Kv(other),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnState {
    Pending,
    Committed,
    Aborted,
}

struct TxnInner {
    client: KvClient,
    meta: TxnMeta,
    /// Buffered writes on *unprefixed* user keys (`None` = delete).
    writes: BTreeMap<Bytes, Option<Bytes>>,
    /// Read spans (unprefixed, half-open) validated at commit — the
    /// coordinator-side refresh that stands in for the timestamp cache.
    reads: Vec<(Bytes, Bytes)>,
    state: TxnState,
    /// The caller's deadline, stamped onto every KV batch this
    /// transaction issues ([`Deadline::NONE`] when unbounded).
    deadline: Deadline,
    /// KV batches issued (stats for CPU accounting and eCPU features).
    pub kv_batches: u64,
}

fn point_span(key: &Bytes) -> (Bytes, Bytes) {
    let mut end = key.to_vec();
    end.push(0x00);
    (key.clone(), Bytes::from(end))
}

/// A SQL transaction handle (cheap to clone).
#[derive(Clone)]
pub struct Txn {
    inner: Rc<RefCell<TxnInner>>,
}

impl Txn {
    /// Begins a transaction on `client`.
    pub fn begin(client: &KvClient) -> Txn {
        Txn::begin_with_deadline(client, Deadline::NONE)
    }

    /// Begins a transaction whose KV batches all carry `deadline` — the
    /// propagation point from the SQL layer into the KV client, which in
    /// turn refuses to schedule any retry past it.
    pub fn begin_with_deadline(client: &KvClient, deadline: Deadline) -> Txn {
        // The anchor is provisional until the first write is known.
        let meta = make_txn_meta(client.cluster(), Bytes::from_static(b""));
        Txn {
            inner: Rc::new(RefCell::new(TxnInner {
                client: client.clone(),
                meta,
                writes: BTreeMap::new(),
                reads: Vec::new(),
                state: TxnState::Pending,
                deadline,
                kv_batches: 0,
            })),
        }
    }

    fn deadline(&self) -> Deadline {
        self.inner.borrow().deadline
    }

    fn tenant(&self) -> crdb_util::TenantId {
        self.inner.borrow().client.cert().tenant()
    }

    fn prefixed(&self, key: &[u8]) -> Bytes {
        kvkeys::make_key(self.tenant(), key)
    }

    /// Number of KV batches this transaction has issued.
    pub fn kv_batches(&self) -> u64 {
        self.inner.borrow().kv_batches
    }

    /// Whether any writes are buffered.
    pub fn has_writes(&self) -> bool {
        !self.inner.borrow().writes.is_empty()
    }

    /// Buffers a put of an unprefixed user key.
    pub fn put(&self, key: Bytes, value: Bytes) {
        self.inner.borrow_mut().writes.insert(key, Some(value));
    }

    /// Buffers a delete.
    pub fn delete(&self, key: Bytes) {
        self.inner.borrow_mut().writes.insert(key, None);
    }

    /// Reads a single key at the transaction's snapshot, seeing buffered
    /// writes first.
    pub fn read(&self, key: Bytes, cb: impl FnOnce(Result<Option<Bytes>, SqlError>) + 'static) {
        {
            let inner = self.inner.borrow();
            if let Some(buffered) = inner.writes.get(&key) {
                let v = buffered.clone();
                drop(inner);
                cb(Ok(v));
                return;
            }
        }
        let (client, read_ts, meta) = {
            let mut inner = self.inner.borrow_mut();
            inner.kv_batches += 1;
            let span = point_span(&key);
            inner.reads.push(span);
            (inner.client.clone(), inner.meta.start_ts, inner.meta.clone())
        };
        let batch = BatchRequest {
            tenant: self.tenant(),
            read_ts,
            txn: Some(meta),
            deadline: self.deadline(),
            requests: vec![RequestKind::Get { key: self.prefixed(&key) }],
        };
        let outer = trace::current();
        let span = trace::child("txn.read");
        let _g = span.enter();
        client.send(batch, move |resp| {
            span.end();
            let _g = outer.enter();
            match resp.error {
                Some(e) => cb(Err(map_kv_error(e))),
                None => match resp.results.into_iter().next() {
                    Some(ResponseKind::Value(v)) => cb(Ok(v)),
                    _ => cb(Err(SqlError::Kv(KvError::RangeNotFound))),
                },
            }
        });
    }

    /// Batched point reads: one KV batch of Gets (unprefixed keys);
    /// results align with the input keys.
    pub fn read_many(
        &self,
        keys: Vec<Bytes>,
        cb: impl FnOnce(Result<Vec<Option<Bytes>>, SqlError>) + 'static,
    ) {
        if keys.is_empty() {
            cb(Ok(Vec::new()));
            return;
        }
        // Partition into buffered hits and KV misses.
        let mut results: Vec<Option<Option<Bytes>>> = vec![None; keys.len()];
        let mut miss_idx = Vec::new();
        {
            let inner = self.inner.borrow();
            for (i, key) in keys.iter().enumerate() {
                if let Some(buffered) = inner.writes.get(key) {
                    results[i] = Some(buffered.clone());
                } else {
                    miss_idx.push(i);
                }
            }
        }
        if miss_idx.is_empty() {
            cb(Ok(results.into_iter().map(|r| r.unwrap()).collect()));
            return;
        }
        let (client, read_ts, meta) = {
            let mut inner = self.inner.borrow_mut();
            inner.kv_batches += 1;
            for &i in &miss_idx {
                let span = point_span(&keys[i]);
                inner.reads.push(span);
            }
            (inner.client.clone(), inner.meta.start_ts, inner.meta.clone())
        };
        let requests: Vec<RequestKind> =
            miss_idx.iter().map(|&i| RequestKind::Get { key: self.prefixed(&keys[i]) }).collect();
        let batch = BatchRequest {
            tenant: self.tenant(),
            read_ts,
            txn: Some(meta),
            deadline: self.deadline(),
            requests,
        };
        let outer = trace::current();
        let span = trace::child("txn.read");
        span.tag("keys", batch.requests.len());
        let _g = span.enter();
        client.send(batch, move |resp| {
            span.end();
            let _g = outer.enter();
            if let Some(e) = resp.error {
                cb(Err(map_kv_error(e)));
                return;
            }
            for (slot, r) in miss_idx.into_iter().zip(resp.results) {
                results[slot] = Some(match r {
                    ResponseKind::Value(v) => v,
                    _ => None,
                });
            }
            cb(Ok(results.into_iter().map(|r| r.unwrap()).collect()));
        });
    }

    /// Scans `[start, end)` (unprefixed), overlaying buffered writes, and
    /// returns up to `limit` pairs.
    pub fn scan(
        &self,
        start: Bytes,
        end: Bytes,
        limit: usize,
        cb: impl FnOnce(Result<Vec<(Bytes, Bytes)>, SqlError>) + 'static,
    ) {
        let (client, read_ts, meta) = {
            let mut inner = self.inner.borrow_mut();
            inner.kv_batches += 1;
            inner.reads.push((start.clone(), end.clone()));
            (inner.client.clone(), inner.meta.start_ts, inner.meta.clone())
        };
        let tenant = self.tenant();
        let pstart = self.prefixed(&start);
        let pend = self.prefixed(&end);
        let this = self.clone();
        // Push the limit down to the KV layer. Buffered deletes in the
        // span may knock out returned pairs, so widen the KV limit by the
        // delete count to guarantee `limit` survivors when they exist;
        // buffered puts only ever add pairs, so they need no headroom.
        let kv_limit = if limit == usize::MAX {
            usize::MAX
        } else {
            let buffered_deletes = self
                .inner
                .borrow()
                .writes
                .range(start.clone()..end.clone())
                .filter(|(_, v)| v.is_none())
                .count();
            limit.saturating_add(buffered_deletes)
        };
        let batch = BatchRequest {
            tenant,
            read_ts,
            txn: Some(meta),
            deadline: self.deadline(),
            requests: vec![RequestKind::Scan { start: pstart, end: pend, limit: kv_limit }],
        };
        let outer = trace::current();
        let span = trace::child("txn.scan");
        let _g = span.enter();
        client.send(batch, move |resp| {
            span.end();
            let _g = outer.enter();
            if let Some(e) = resp.error {
                cb(Err(map_kv_error(e)));
                return;
            }
            let pairs = match resp.results.into_iter().next() {
                Some(ResponseKind::Pairs(p)) => p,
                _ => Vec::new(),
            };
            // Strip the tenant prefix and overlay the write buffer.
            let mut merged: BTreeMap<Bytes, Bytes> = BTreeMap::new();
            for (k, v) in pairs {
                if let Some(user) = kvkeys::strip_prefix(tenant, &k) {
                    merged.insert(user, v);
                }
            }
            {
                let inner = this.inner.borrow();
                for (k, v) in inner.writes.range(start.clone()..end.clone()) {
                    match v {
                        Some(val) => {
                            merged.insert(k.clone(), val.clone());
                        }
                        None => {
                            merged.remove(k);
                        }
                    }
                }
            }
            cb(Ok(merged.into_iter().take(limit).collect()));
        });
    }

    /// Commits: intents → transaction record → resolution. Read-only
    /// transactions commit locally.
    pub fn commit(&self, cb: impl FnOnce(Result<(), SqlError>) + 'static) {
        {
            let mut inner = self.inner.borrow_mut();
            if inner.state != TxnState::Pending {
                cb(Err(SqlError::State("transaction already finished".into())));
                return;
            }
            if inner.writes.is_empty() {
                inner.state = TxnState::Committed;
                drop(inner);
                cb(Ok(()));
                return;
            }
        }
        let (client, mut meta, writes, reads) = {
            let inner = self.inner.borrow();
            (inner.client.clone(), inner.meta.clone(), inner.writes.clone(), inner.reads.clone())
        };
        let tenant = self.tenant();
        let anchor = self.prefixed(writes.keys().next().expect("non-empty"));
        meta.anchor_key = anchor;
        // Commit at a *fresh* timestamp (CockroachDB pushes the write
        // timestamp at commit): back-dating writes to the start timestamp
        // would make them appear inside concurrent snapshots taken after
        // our reads, invisibly to their refresh validation.
        meta.write_ts = client.cluster().now_ts();
        self.inner.borrow_mut().meta = meta.clone();

        // Read refresh first (§"timestamp cache" stand-in): fails with a
        // retryable error if anything this transaction read changed after
        // its snapshot. Within a range the refresh + intents execute
        // atomically at the leaseholder.
        let mut intents: Vec<RequestKind> = reads
            .iter()
            .map(|(s0, e0)| RequestKind::RefreshSpan {
                start: self.prefixed(s0),
                end: self.prefixed(e0),
                since: meta.start_ts,
            })
            .collect();
        intents.extend(
            writes
                .iter()
                .map(|(k, v)| RequestKind::WriteIntent { key: self.prefixed(k), value: v.clone() }),
        );
        let intent_keys: Vec<Bytes> = writes.keys().map(|k| self.prefixed(k)).collect();
        let n_batches = 3;
        self.inner.borrow_mut().kv_batches += n_batches;

        let batch = BatchRequest {
            tenant,
            read_ts: meta.start_ts,
            txn: Some(meta.clone()),
            deadline: self.deadline(),
            requests: intents,
        };
        let this = self.clone();
        let outer = trace::current();
        let span = trace::child("txn.commit");
        span.tag("intents", intent_keys.len());
        let intents_span = span.child("commit.intents");
        let _g = intents_span.enter();
        client.send(batch, move |resp| {
            intents_span.end();
            if let Some(e) = resp.error {
                this.inner.borrow_mut().state = TxnState::Aborted;
                // Best-effort cleanup of any intents that did land.
                this.cleanup_intents(&intent_keys, None);
                span.tag("error", true);
                span.end();
                let _g = outer.enter();
                cb(Err(map_kv_error(e)));
                return;
            }
            let (client, meta) = {
                let inner = this.inner.borrow();
                (inner.client.clone(), inner.meta.clone())
            };
            let commit = BatchRequest {
                tenant,
                read_ts: meta.start_ts,
                txn: Some(meta.clone()),
                deadline: this.deadline(),
                requests: vec![RequestKind::EndTxn { commit: true }],
            };
            let this2 = this.clone();
            let end_span = span.child("commit.end_txn");
            let _g = end_span.enter();
            client.send(commit, move |resp| {
                end_span.end();
                if let Some(e) = resp.error {
                    this2.inner.borrow_mut().state = TxnState::Aborted;
                    this2.cleanup_intents(&intent_keys, None);
                    span.tag("error", true);
                    span.end();
                    let _g = outer.enter();
                    cb(Err(map_kv_error(e)));
                    return;
                }
                this2.inner.borrow_mut().state = TxnState::Committed;
                // Resolve intents (synchronously before acking, keeping
                // the evaluation deterministic; production resolves the
                // non-anchor ranges asynchronously).
                let commit_ts = this2.inner.borrow().meta.write_ts;
                let resolve_span = span.child("commit.resolve");
                {
                    let _g = resolve_span.enter();
                    this2.cleanup_intents(&intent_keys, Some(commit_ts));
                }
                resolve_span.end();
                span.end();
                let _g = outer.enter();
                cb(Ok(()));
            });
        });
    }

    fn cleanup_intents(&self, keys: &[Bytes], commit_ts: Option<crdb_kv::Timestamp>) {
        let (client, meta) = {
            let inner = self.inner.borrow();
            (inner.client.clone(), inner.meta.clone())
        };
        let requests: Vec<RequestKind> =
            keys.iter().map(|k| RequestKind::ResolveIntent { key: k.clone(), commit_ts }).collect();
        if requests.is_empty() {
            return;
        }
        // Cleanup runs unbounded: resolving intents after an abort or
        // commit must not itself be abandoned mid-way by the caller's
        // deadline, or orphaned intents would block other transactions.
        let batch = BatchRequest {
            tenant: self.tenant(),
            read_ts: meta.start_ts,
            txn: Some(meta),
            deadline: Deadline::NONE,
            requests,
        };
        client.send(batch, |_resp| {});
    }

    /// Rolls the transaction back, discarding buffered writes.
    pub fn rollback(&self, cb: impl FnOnce(Result<(), SqlError>) + 'static) {
        let mut inner = self.inner.borrow_mut();
        if inner.state != TxnState::Pending {
            cb(Err(SqlError::State("transaction already finished".into())));
            return;
        }
        inner.state = TxnState::Aborted;
        inner.writes.clear();
        drop(inner);
        // No intents exist before commit (writes are buffered), so local
        // cleanup suffices.
        cb(Ok(()));
    }

    /// Whether the transaction is still open.
    pub fn is_pending(&self) -> bool {
        self.inner.borrow().state == TxnState::Pending
    }
}
