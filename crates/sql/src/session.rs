//! SQL sessions and serialization for dynamic session migration (§4.2.4).
//!
//! "Connection migration is handled by the proxy service when the client
//! session is idle (no open transaction). In this state, the proxy buffers
//! incoming pgwire messages and requests the SQL node to serialize the
//! session, capturing client settings and prepared statements. The
//! serialized session includes a 'revival token,' an internal
//! authentication credential that lets the proxy resume the session on a
//! new SQL node without client re-authentication."

use std::collections::BTreeMap;

use bytes::{BufMut, Bytes, BytesMut};

use crate::coord::{SqlError, Txn};

/// A client SQL session.
pub struct Session {
    /// Session ID on its current SQL node.
    pub id: u64,
    /// Authenticated user.
    pub user: String,
    /// Session settings (`SET key = value`).
    pub settings: BTreeMap<String, String>,
    /// Prepared statements: name → SQL text.
    pub prepared: BTreeMap<String, String>,
    /// The open explicit transaction, if any.
    pub txn: Option<Txn>,
}

impl Session {
    /// Creates a fresh session.
    pub fn new(id: u64, user: impl Into<String>) -> Session {
        Session {
            id,
            user: user.into(),
            settings: BTreeMap::new(),
            prepared: BTreeMap::new(),
            txn: None,
        }
    }

    /// Whether the session is idle (no open transaction) and therefore
    /// migratable.
    pub fn is_idle(&self) -> bool {
        self.txn.as_ref().is_none_or(|t| !t.is_pending())
    }
}

/// The internal credential allowing the proxy to resume a session on a new
/// SQL node without client re-authentication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RevivalToken {
    /// The tenant the token is scoped to.
    pub tenant: u64,
    /// The authenticated user.
    pub user: String,
    /// Virtual-time nanoseconds of issuance.
    pub issued_at: u64,
    /// MAC over the fields under the tenant secret.
    pub signature: u64,
}

/// Keyed hash standing in for an HMAC (FNV-1a over secret ‖ payload). Not
/// cryptographically strong, but structurally faithful: tokens are
/// unforgeable without the per-tenant secret held by SQL infrastructure.
fn mac(secret: u64, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ secret;
    for &b in secret.to_be_bytes().iter().chain(payload) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl RevivalToken {
    /// Issues a token under the tenant secret.
    pub fn issue(tenant: u64, user: &str, issued_at: u64, secret: u64) -> RevivalToken {
        let mut payload = Vec::new();
        payload.extend_from_slice(&tenant.to_be_bytes());
        payload.extend_from_slice(user.as_bytes());
        payload.extend_from_slice(&issued_at.to_be_bytes());
        RevivalToken { tenant, user: user.to_string(), issued_at, signature: mac(secret, &payload) }
    }

    /// Verifies the token under the tenant secret.
    pub fn verify(&self, secret: u64) -> bool {
        let expected = RevivalToken::issue(self.tenant, &self.user, self.issued_at, secret);
        expected.signature == self.signature
    }
}

/// A serialized session: everything a new SQL node needs to resume it.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The user.
    pub user: String,
    /// Session settings.
    pub settings: BTreeMap<String, String>,
    /// Prepared statements.
    pub prepared: BTreeMap<String, String>,
    /// The revival token.
    pub token: RevivalToken,
}

impl SessionSnapshot {
    /// Serializes a session. Fails if a transaction is open — only idle
    /// sessions migrate.
    pub fn capture(
        session: &Session,
        tenant: u64,
        now_nanos: u64,
        secret: u64,
    ) -> Result<SessionSnapshot, SqlError> {
        if !session.is_idle() {
            return Err(SqlError::State("cannot serialize session with open transaction".into()));
        }
        Ok(SessionSnapshot {
            user: session.user.clone(),
            settings: session.settings.clone(),
            prepared: session.prepared.clone(),
            token: RevivalToken::issue(tenant, &session.user, now_nanos, secret),
        })
    }

    /// Restores the snapshot into a fresh session on a new node, verifying
    /// the revival token.
    pub fn restore(&self, new_id: u64, tenant: u64, secret: u64) -> Result<Session, SqlError> {
        if self.token.tenant != tenant {
            return Err(SqlError::State("revival token tenant mismatch".into()));
        }
        if !self.token.verify(secret) {
            return Err(SqlError::State("revival token verification failed".into()));
        }
        Ok(Session {
            id: new_id,
            user: self.user.clone(),
            settings: self.settings.clone(),
            prepared: self.prepared.clone(),
            txn: None,
        })
    }

    /// Wire encoding (length-prefixed fields).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        put_str(&mut b, &self.user);
        b.put_u32(self.settings.len() as u32);
        for (k, v) in &self.settings {
            put_str(&mut b, k);
            put_str(&mut b, v);
        }
        b.put_u32(self.prepared.len() as u32);
        for (k, v) in &self.prepared {
            put_str(&mut b, k);
            put_str(&mut b, v);
        }
        b.put_u64(self.token.tenant);
        put_str(&mut b, &self.token.user);
        b.put_u64(self.token.issued_at);
        b.put_u64(self.token.signature);
        b.freeze()
    }

    /// Wire decoding.
    pub fn decode(raw: &[u8]) -> Option<SessionSnapshot> {
        let mut pos = 0usize;
        let user = get_str(raw, &mut pos)?;
        let n = get_u32(raw, &mut pos)? as usize;
        let mut settings = BTreeMap::new();
        for _ in 0..n {
            let k = get_str(raw, &mut pos)?;
            let v = get_str(raw, &mut pos)?;
            settings.insert(k, v);
        }
        let n = get_u32(raw, &mut pos)? as usize;
        let mut prepared = BTreeMap::new();
        for _ in 0..n {
            let k = get_str(raw, &mut pos)?;
            let v = get_str(raw, &mut pos)?;
            prepared.insert(k, v);
        }
        let tenant = get_u64(raw, &mut pos)?;
        let tuser = get_str(raw, &mut pos)?;
        let issued_at = get_u64(raw, &mut pos)?;
        let signature = get_u64(raw, &mut pos)?;
        Some(SessionSnapshot {
            user,
            settings,
            prepared,
            token: RevivalToken { tenant, user: tuser, issued_at, signature },
        })
    }
}

fn put_str(b: &mut BytesMut, s: &str) {
    b.put_u32(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn get_u32(raw: &[u8], pos: &mut usize) -> Option<u32> {
    let v = u32::from_be_bytes(raw.get(*pos..*pos + 4)?.try_into().ok()?);
    *pos += 4;
    Some(v)
}

fn get_u64(raw: &[u8], pos: &mut usize) -> Option<u64> {
    let v = u64::from_be_bytes(raw.get(*pos..*pos + 8)?.try_into().ok()?);
    *pos += 8;
    Some(v)
}

fn get_str(raw: &[u8], pos: &mut usize) -> Option<String> {
    let n = get_u32(raw, pos)? as usize;
    let s = String::from_utf8(raw.get(*pos..*pos + n)?.to_vec()).ok()?;
    *pos += n;
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        let mut s = Session::new(1, "app_user");
        s.settings.insert("application_name".into(), "checkout".into());
        s.settings.insert("statement_timeout".into(), "10s".into());
        s.prepared.insert("get_user".into(), "SELECT * FROM users WHERE id = $1".into());
        s
    }

    #[test]
    fn snapshot_roundtrip_through_wire_format() {
        let snap = SessionSnapshot::capture(&session(), 7, 12345, secret_placeholder())
            .expect("idle session serializes");
        let decoded = SessionSnapshot::decode(&snap.encode()).expect("decodes");
        assert_eq!(decoded, snap);
    }

    fn secret_placeholder() -> u64 {
        0xdead_beef_cafe_f00d
    }

    #[test]
    fn restore_verifies_token() {
        let secret = secret_placeholder();
        let snap = SessionSnapshot::capture(&session(), 7, 1, secret).unwrap();
        let restored = snap.restore(99, 7, secret).expect("valid token restores");
        assert_eq!(restored.id, 99);
        assert_eq!(restored.user, "app_user");
        assert_eq!(restored.settings.len(), 2);
        assert_eq!(restored.prepared.len(), 1);
        assert!(restored.txn.is_none());
    }

    #[test]
    fn forged_or_cross_tenant_tokens_rejected() {
        let secret = secret_placeholder();
        let snap = SessionSnapshot::capture(&session(), 7, 1, secret).unwrap();
        // Wrong secret on the restoring node.
        assert!(snap.restore(1, 7, secret + 1).is_err());
        // Token replayed against a different tenant.
        assert!(snap.restore(1, 8, secret).is_err());
        // Tampered user.
        let mut tampered = snap.clone();
        tampered.user = "admin".into();
        tampered.token.user = "admin".into();
        assert!(tampered.restore(1, 7, secret).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let snap = SessionSnapshot::capture(&session(), 7, 1, 42).unwrap();
        let raw = snap.encode();
        assert!(SessionSnapshot::decode(&raw[..raw.len() - 1]).is_none());
        assert!(SessionSnapshot::decode(&[]).is_none());
    }
}
