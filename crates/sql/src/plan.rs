//! Logical planning.
//!
//! The planner binds names, extracts KV spans from primary-key (or
//! secondary-index) constraints, chooses between full scans, index scans
//! and lookup joins, and produces the [`PlanNode`] tree the executor
//! walks. Span endpoints stay as expressions so one prepared plan serves
//! every parameter binding ("same query, same plan" — §6.7).

use std::collections::{BTreeMap, HashMap};

use crate::coord::SqlError;
use crate::expr::{resolve_name, BinOp, Expr};
use crate::parser::{AggFunc, SelectItem, SelectStmt, Statement};
use crate::schema::{Column, IndexDescriptor, TableDescriptor, PRIMARY_INDEX_ID};
use crate::value::ColumnType;

/// The per-tenant table catalog (a cache of `system.descriptor`).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, TableDescriptor>,
    next_table_id: u64,
}

/// First table ID for user tables (lower IDs are reserved for system
/// tables, mirroring CockroachDB).
pub const FIRST_USER_TABLE_ID: u64 = 100;

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog { tables: BTreeMap::new(), next_table_id: FIRST_USER_TABLE_ID }
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&TableDescriptor> {
        self.tables.get(name)
    }

    /// Registers a descriptor (from DDL or a system.descriptor read).
    pub fn install(&mut self, desc: TableDescriptor) {
        self.next_table_id = self.next_table_id.max(desc.id + 1);
        self.tables.insert(desc.name.clone(), desc);
    }

    /// Removes a table.
    pub fn remove(&mut self, name: &str) -> Option<TableDescriptor> {
        self.tables.remove(name)
    }

    /// Allocates the next table ID.
    pub fn allocate_table_id(&mut self) -> u64 {
        let id = self.next_table_id;
        self.next_table_id += 1;
        id
    }

    /// All descriptors.
    pub fn tables(&self) -> impl Iterator<Item = &TableDescriptor> {
        self.tables.values()
    }
}

/// A bound on a key span, to be evaluated with parameters at execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanBound {
    /// The bound expression.
    pub expr: Expr,
    /// Whether the bound is inclusive.
    pub inclusive: bool,
}

/// How a scan constrains its index.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanConstraint {
    /// Equality-constrained leading index columns, in index order.
    pub eq_prefix: Vec<Expr>,
    /// Optional range on the next index column.
    pub lower: Option<SpanBound>,
    /// Optional upper range bound.
    pub upper: Option<SpanBound>,
}

/// An executable plan node. The row scope of each node is tracked in
/// `scope` (qualified column names) for tests and EXPLAIN-style output.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Literal rows (FROM-less SELECT).
    Values {
        /// Row expressions.
        rows: Vec<Vec<Expr>>,
        /// Output names.
        scope: Vec<String>,
    },
    /// Table scan via primary key or a secondary index.
    Scan {
        /// The table.
        table: TableDescriptor,
        /// The chosen index (`PRIMARY_INDEX_ID` for the primary).
        index_id: u64,
        /// Columns of the chosen index (empty for primary).
        index_cols: Vec<usize>,
        /// Span constraint.
        constraint: ScanConstraint,
        /// Residual filter applied after the scan.
        filter: Option<Expr>,
        /// Output scope (qualified `alias.col` names).
        scope: Vec<String>,
    },
    /// Nested lookup join: for each left row, batched point-lookups of
    /// the right table's primary key.
    LookupJoin {
        /// Left input.
        input: Box<PlanNode>,
        /// Right table.
        table: TableDescriptor,
        /// Left scope ordinals supplying the right PK, in PK order.
        left_key_cols: Vec<usize>,
        /// Residual ON predicate over the joined scope.
        residual: Option<Expr>,
        /// Output scope.
        scope: Vec<String>,
    },
    /// Hash join on a single equality pair.
    HashJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Left scope ordinal.
        left_col: usize,
        /// Right scope ordinal.
        right_col: usize,
        /// Residual ON predicate over the joined scope.
        residual: Option<Expr>,
        /// Output scope.
        scope: Vec<String>,
    },
    /// Row filter.
    Filter {
        /// Input.
        input: Box<PlanNode>,
        /// Predicate.
        predicate: Expr,
    },
    /// Scalar projection.
    Project {
        /// Input.
        input: Box<PlanNode>,
        /// Output expressions.
        exprs: Vec<Expr>,
        /// Output names.
        scope: Vec<String>,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input.
        input: Box<PlanNode>,
        /// Group-key expressions (over input scope).
        group: Vec<Expr>,
        /// Aggregates: function and argument.
        aggs: Vec<(AggFunc, Option<Expr>)>,
        /// Output names (group names then agg names).
        scope: Vec<String>,
        /// Mapping from SELECT-item order to output columns.
        output_map: Vec<usize>,
    },
    /// Sort.
    Sort {
        /// Input.
        input: Box<PlanNode>,
        /// Keys: output ordinal + descending flag.
        keys: Vec<(usize, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input.
        input: Box<PlanNode>,
        /// Maximum rows.
        n: u64,
    },
}

impl PlanNode {
    /// The output scope of this node.
    pub fn scope(&self) -> Vec<String> {
        match self {
            PlanNode::Values { scope, .. }
            | PlanNode::Scan { scope, .. }
            | PlanNode::LookupJoin { scope, .. }
            | PlanNode::HashJoin { scope, .. }
            | PlanNode::Project { scope, .. }
            | PlanNode::Aggregate { scope, .. } => scope.clone(),
            PlanNode::Filter { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input, .. } => input.scope(),
        }
    }
}

/// A planned statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// A row-returning query.
    Query(PlanNode),
    /// INSERT: evaluated rows are written through the row codec.
    Insert {
        /// Target table.
        table: TableDescriptor,
        /// Row expressions aligned with table columns (defaults filled).
        rows: Vec<Vec<Expr>>,
    },
    /// UPDATE: scan, then rewrite matching rows.
    Update {
        /// The scan producing target rows.
        scan: Box<PlanNode>,
        /// Target table.
        table: TableDescriptor,
        /// Assignments: column ordinal → expression over the scan scope.
        sets: Vec<(usize, Expr)>,
    },
    /// DELETE: scan, then remove matching rows.
    Delete {
        /// The scan producing target rows.
        scan: Box<PlanNode>,
        /// Target table.
        table: TableDescriptor,
    },
    /// CREATE TABLE.
    CreateTable(TableDescriptor),
    /// CREATE INDEX (descriptor updated, backfill performed).
    CreateIndex {
        /// Updated descriptor including the new index.
        table: TableDescriptor,
        /// The new index.
        index: IndexDescriptor,
    },
    /// DROP TABLE.
    DropTable(TableDescriptor),
    /// BEGIN.
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
}

/// Plans a parsed statement against a catalog.
pub fn plan_statement(catalog: &mut Catalog, stmt: &Statement) -> Result<Plan, SqlError> {
    match stmt {
        Statement::Begin => Ok(Plan::Begin),
        Statement::Commit => Ok(Plan::Commit),
        Statement::Rollback => Ok(Plan::Rollback),
        Statement::CreateTable { name, columns, primary_key } => {
            if catalog.table(name).is_some() {
                return Err(SqlError::Plan(format!("table {name} already exists")));
            }
            let cols: Vec<Column> = columns
                .iter()
                .map(|(n, ty, nullable)| Column {
                    name: n.clone(),
                    ty: *ty,
                    nullable: *nullable && !primary_key.contains(n),
                })
                .collect();
            let mut pk = Vec::new();
            for pkcol in primary_key {
                let i = cols
                    .iter()
                    .position(|c| &c.name == pkcol)
                    .ok_or_else(|| SqlError::Plan(format!("unknown pk column {pkcol}")))?;
                pk.push(i);
            }
            let desc = TableDescriptor {
                id: catalog.allocate_table_id(),
                name: name.clone(),
                columns: cols,
                primary_key: pk,
                indexes: Vec::new(),
            };
            Ok(Plan::CreateTable(desc))
        }
        Statement::CreateIndex { name, table, columns } => {
            let desc = catalog
                .table(table)
                .cloned()
                .ok_or_else(|| SqlError::Plan(format!("unknown table {table}")))?;
            let mut cols = Vec::new();
            for c in columns {
                cols.push(
                    desc.column_index(c)
                        .ok_or_else(|| SqlError::Plan(format!("unknown column {c}")))?,
                );
            }
            let index = IndexDescriptor {
                id: desc.indexes.iter().map(|i| i.id).max().unwrap_or(PRIMARY_INDEX_ID) + 1,
                name: name.clone(),
                columns: cols,
            };
            let mut updated = desc;
            updated.indexes.push(index.clone());
            Ok(Plan::CreateIndex { table: updated, index })
        }
        Statement::DropTable { name } => {
            let desc = catalog
                .table(name)
                .cloned()
                .ok_or_else(|| SqlError::Plan(format!("unknown table {name}")))?;
            Ok(Plan::DropTable(desc))
        }
        Statement::Insert { table, columns, values } => {
            let desc = catalog
                .table(table)
                .cloned()
                .ok_or_else(|| SqlError::Plan(format!("unknown table {table}")))?;
            let target: Vec<usize> = if columns.is_empty() {
                (0..desc.columns.len()).collect()
            } else {
                let mut t = Vec::new();
                for c in columns {
                    t.push(
                        desc.column_index(c)
                            .ok_or_else(|| SqlError::Plan(format!("unknown column {c}")))?,
                    );
                }
                t
            };
            let mut rows = Vec::with_capacity(values.len());
            for v in values {
                if v.len() != target.len() {
                    return Err(SqlError::Plan(format!(
                        "INSERT has {} values for {} columns",
                        v.len(),
                        target.len()
                    )));
                }
                let mut row: Vec<Expr> =
                    vec![Expr::Literal(crate::value::Datum::Null); desc.columns.len()];
                for (expr, &col) in v.iter().zip(&target) {
                    row[col] = expr.clone();
                }
                rows.push(row);
            }
            Ok(Plan::Insert { table: desc, rows })
        }
        Statement::Select(sel) => Ok(Plan::Query(plan_select(catalog, sel)?)),
        Statement::Update { table, sets, filter } => {
            let desc = catalog
                .table(table)
                .cloned()
                .ok_or_else(|| SqlError::Plan(format!("unknown table {table}")))?;
            let scan = plan_table_scan(&desc, None, filter.clone())?;
            let scope = scan.scope();
            let mut bound_sets = Vec::new();
            for (col, e) in sets {
                let i = desc
                    .column_index(col)
                    .ok_or_else(|| SqlError::Plan(format!("unknown column {col}")))?;
                let mut e = e.clone();
                e.bind(&scope).map_err(SqlError::Plan)?;
                bound_sets.push((i, e));
            }
            Ok(Plan::Update { scan: Box::new(scan), table: desc, sets: bound_sets })
        }
        Statement::Delete { table, filter } => {
            let desc = catalog
                .table(table)
                .cloned()
                .ok_or_else(|| SqlError::Plan(format!("unknown table {table}")))?;
            let scan = plan_table_scan(&desc, None, filter.clone())?;
            Ok(Plan::Delete { scan: Box::new(scan), table: desc })
        }
    }
}

/// Splits an expression into its top-level AND conjuncts.
fn conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Bin(BinOp::And, l, r) => {
            let mut out = conjuncts(*l);
            out.extend(conjuncts(*r));
            out
        }
        other => vec![other],
    }
}

/// A comparison `col <op> value-expr` extracted from a conjunct.
struct ColCmp {
    col: usize,
    op: BinOp,
    value: Expr,
}

fn as_col_cmp(e: &Expr, scope: &[String]) -> Option<ColCmp> {
    if let Expr::Bin(op, l, r) = e {
        let flip = |op: BinOp| match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        };
        let is_value = |e: &Expr| matches!(e, Expr::Literal(_) | Expr::Param(_));
        if let Expr::Name(n) = l.as_ref() {
            if is_value(r) {
                if let Ok(col) = resolve_name(scope, n) {
                    return Some(ColCmp { col, op: *op, value: (**r).clone() });
                }
            }
        }
        if let Expr::Name(n) = r.as_ref() {
            if is_value(l) {
                if let Ok(col) = resolve_name(scope, n) {
                    return Some(ColCmp { col, op: flip(*op), value: (**l).clone() });
                }
            }
        }
    }
    None
}

/// Plans a scan of `table` (aliased) with an optional filter: picks the
/// primary index or a secondary index based on equality prefixes.
fn plan_table_scan(
    table: &TableDescriptor,
    alias: Option<&str>,
    filter: Option<Expr>,
) -> Result<PlanNode, SqlError> {
    let alias = alias.unwrap_or(&table.name);
    let scope: Vec<String> = table.columns.iter().map(|c| format!("{alias}.{}", c.name)).collect();

    let mut residual: Vec<Expr> = Vec::new();
    let mut eq: HashMap<usize, Expr> = HashMap::new();
    let mut ranges: Vec<ColCmp> = Vec::new();
    if let Some(f) = filter {
        for c in conjuncts(f) {
            match as_col_cmp(&c, &scope) {
                Some(cmp) if cmp.op == BinOp::Eq && !eq.contains_key(&cmp.col) => {
                    eq.insert(cmp.col, cmp.value.clone());
                    residual.push(c); // keep as residual for correctness
                }
                Some(cmp) if matches!(cmp.op, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) => {
                    ranges.push(cmp);
                    residual.push(c);
                }
                _ => residual.push(c),
            }
        }
    }

    // Choose the index with the longest equality prefix; primary wins ties.
    let score = |cols: &[usize]| -> usize {
        let mut n = 0;
        for c in cols {
            if eq.contains_key(c) {
                n += 1;
            } else {
                break;
            }
        }
        n
    };
    let pk_score = score(&table.primary_key);
    let mut best: (u64, Vec<usize>, usize) =
        (PRIMARY_INDEX_ID, table.primary_key.clone(), pk_score);
    for idx in &table.indexes {
        let s = score(&idx.columns);
        if s > best.2 {
            best = (idx.id, idx.columns.clone(), s);
        }
    }
    let (index_id, index_cols, eq_len) = best;

    let mut constraint = ScanConstraint::default();
    for &c in index_cols.iter().take(eq_len) {
        constraint.eq_prefix.push(eq[&c].clone());
    }
    // A range constraint on the next index column tightens the span.
    if let Some(&next_col) = index_cols.get(eq_len) {
        for cmp in &ranges {
            if cmp.col != next_col {
                continue;
            }
            match cmp.op {
                BinOp::Ge => {
                    constraint.lower = Some(SpanBound { expr: cmp.value.clone(), inclusive: true })
                }
                BinOp::Gt => {
                    constraint.lower = Some(SpanBound { expr: cmp.value.clone(), inclusive: false })
                }
                BinOp::Le => {
                    constraint.upper = Some(SpanBound { expr: cmp.value.clone(), inclusive: true })
                }
                BinOp::Lt => {
                    constraint.upper = Some(SpanBound { expr: cmp.value.clone(), inclusive: false })
                }
                _ => {}
            }
        }
    }

    // Bind the residual filter.
    let filter = residual
        .into_iter()
        .map(|mut e| {
            e.bind(&scope).map_err(SqlError::Plan)?;
            Ok(e)
        })
        .collect::<Result<Vec<_>, SqlError>>()?
        .into_iter()
        .reduce(|a, b| Expr::Bin(BinOp::And, Box::new(a), Box::new(b)));

    Ok(PlanNode::Scan { table: table.clone(), index_id, index_cols, constraint, filter, scope })
}

fn plan_select(catalog: &Catalog, sel: &SelectStmt) -> Result<PlanNode, SqlError> {
    // FROM-less SELECT.
    let (base_table, base_alias) = match &sel.from {
        None => {
            let mut rows = vec![Vec::new()];
            let mut scope = Vec::new();
            for (i, item) in sel.items.iter().enumerate() {
                match item {
                    SelectItem::Expr { expr, alias } => {
                        rows[0].push(expr.clone());
                        scope.push(alias.clone().unwrap_or_else(|| format!("column{}", i + 1)));
                    }
                    _ => return Err(SqlError::Plan("* requires FROM".into())),
                }
            }
            return Ok(PlanNode::Values { rows, scope });
        }
        Some((t, a)) => (t.clone(), a.clone()),
    };

    let base_desc = catalog
        .table(&base_table)
        .cloned()
        .ok_or_else(|| SqlError::Plan(format!("unknown table {base_table}")))?;

    // Push the WHERE clause into the base scan when there are no joins;
    // with joins, the filter applies after the join (simpler and correct).
    let mut node = if sel.joins.is_empty() {
        plan_table_scan(&base_desc, base_alias.as_deref(), sel.filter.clone())?
    } else {
        plan_table_scan(&base_desc, base_alias.as_deref(), None)?
    };

    // Joins, left-deep.
    for join in &sel.joins {
        let right = catalog
            .table(&join.table)
            .cloned()
            .ok_or_else(|| SqlError::Plan(format!("unknown table {}", join.table)))?;
        let right_alias = join.alias.clone().unwrap_or_else(|| join.table.clone());
        let left_scope = node.scope();
        let right_scope: Vec<String> =
            right.columns.iter().map(|c| format!("{right_alias}.{}", c.name)).collect();
        let joined_scope: Vec<String> =
            left_scope.iter().chain(right_scope.iter()).cloned().collect();

        // Decompose ON into eq pairs between left and right columns.
        let mut eq_pairs: Vec<(usize, usize)> = Vec::new(); // (left ord, right col ord)
        let mut residual: Vec<Expr> = Vec::new();
        for c in conjuncts(join.on.clone()) {
            let mut matched = false;
            if let Expr::Bin(BinOp::Eq, l, r) = &c {
                if let (Expr::Name(a), Expr::Name(b)) = (l.as_ref(), r.as_ref()) {
                    let la = resolve_name(&left_scope, a);
                    let rb = resolve_name(&right_scope, b);
                    if let (Ok(la), Ok(rb)) = (la, rb) {
                        eq_pairs.push((la, rb));
                        matched = true;
                    } else {
                        let lb = resolve_name(&left_scope, b);
                        let ra = resolve_name(&right_scope, a);
                        if let (Ok(lb), Ok(ra)) = (lb, ra) {
                            eq_pairs.push((lb, ra));
                            matched = true;
                        }
                    }
                }
            }
            if !matched {
                residual.push(c);
            }
        }
        if eq_pairs.is_empty() {
            return Err(SqlError::Plan("JOIN requires an equality condition".into()));
        }
        let residual = residual
            .into_iter()
            .map(|mut e| {
                e.bind(&joined_scope).map_err(SqlError::Plan)?;
                Ok(e)
            })
            .collect::<Result<Vec<_>, SqlError>>()?
            .into_iter()
            .reduce(|a, b| Expr::Bin(BinOp::And, Box::new(a), Box::new(b)));

        // Lookup join when the eq pairs cover the right PK.
        let covers_pk = right.primary_key.len() <= eq_pairs.len()
            && right.primary_key.iter().all(|pkc| eq_pairs.iter().any(|(_, rc)| rc == pkc));
        if covers_pk {
            let mut left_key_cols = Vec::new();
            for pkc in &right.primary_key {
                let (lc, _) = eq_pairs.iter().find(|(_, rc)| rc == pkc).unwrap();
                left_key_cols.push(*lc);
            }
            node = PlanNode::LookupJoin {
                input: Box::new(node),
                table: right,
                left_key_cols,
                residual,
                scope: joined_scope,
            };
        } else {
            let (lc, rc) = eq_pairs[0];
            // Fold the remaining eq pairs into the residual.
            let mut residual = residual;
            for &(l, r) in &eq_pairs[1..] {
                let e = Expr::Bin(
                    BinOp::Eq,
                    Box::new(Expr::Column(l)),
                    Box::new(Expr::Column(left_scope.len() + r)),
                );
                residual = Some(match residual {
                    Some(prev) => Expr::Bin(BinOp::And, Box::new(prev), Box::new(e)),
                    None => e,
                });
            }
            let right_node = plan_table_scan(&right, Some(&right_alias), None)?;
            node = PlanNode::HashJoin {
                left: Box::new(node),
                right: Box::new(right_node),
                left_col: lc,
                right_col: rc,
                residual,
                scope: joined_scope,
            };
        }
    }

    // Post-join filter.
    if !sel.joins.is_empty() {
        if let Some(f) = &sel.filter {
            let scope = node.scope();
            let mut f = f.clone();
            f.bind(&scope).map_err(SqlError::Plan)?;
            node = PlanNode::Filter { input: Box::new(node), predicate: f };
        }
    }

    let scope = node.scope();
    let has_aggs =
        sel.items.iter().any(|i| matches!(i, SelectItem::Agg { .. })) || !sel.group_by.is_empty();

    if has_aggs {
        // Bind group-by expressions over the input scope.
        let mut group = Vec::new();
        let mut group_names = Vec::new();
        for g in &sel.group_by {
            let mut e = g.clone();
            let name = match g {
                Expr::Name(n) => n.clone(),
                _ => format!("group{}", group.len() + 1),
            };
            e.bind(&scope).map_err(SqlError::Plan)?;
            group.push(e);
            group_names.push(name);
        }
        let mut aggs = Vec::new();
        let mut out_scope = group_names.clone();
        let mut output_map = Vec::new();
        for item in &sel.items {
            match item {
                SelectItem::Agg { func, arg, alias } => {
                    let arg = match arg {
                        Some(a) => {
                            let mut a = a.clone();
                            a.bind(&scope).map_err(SqlError::Plan)?;
                            Some(a)
                        }
                        None => None,
                    };
                    output_map.push(group.len() + aggs.len());
                    aggs.push((*func, arg));
                    out_scope.push(alias.clone().unwrap_or_else(|| format!("agg{}", aggs.len())));
                }
                SelectItem::Expr { expr, alias } => {
                    // Must match a group expression.
                    let mut bound = expr.clone();
                    bound.bind(&scope).map_err(SqlError::Plan)?;
                    let pos = group
                        .iter()
                        .position(|g| *g == bound)
                        .ok_or_else(|| SqlError::Plan("non-grouped column in SELECT".into()))?;
                    output_map.push(pos);
                    if let Some(a) = alias {
                        out_scope[pos] = a.clone();
                    }
                }
                SelectItem::Star => {
                    return Err(SqlError::Plan("* with GROUP BY is unsupported".into()))
                }
            }
        }
        node = PlanNode::Aggregate {
            input: Box::new(node),
            group,
            aggs,
            scope: out_scope,
            output_map,
        };
    } else {
        // Plain projection.
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            match item {
                SelectItem::Star => {
                    for (j, name) in scope.iter().enumerate() {
                        exprs.push(Expr::Column(j));
                        names.push(name.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let mut e = expr.clone();
                    e.bind(&scope).map_err(SqlError::Plan)?;
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Name(n) => n.clone(),
                        _ => format!("column{}", i + 1),
                    });
                    exprs.push(e);
                    names.push(name);
                }
                SelectItem::Agg { .. } => unreachable!("handled above"),
            }
        }
        // ORDER BY may reference either output aliases or input columns;
        // when it names input columns, the sort runs before projection.
        let mut sort_before_project: Option<Vec<(usize, bool)>> = None;
        let mut sort_after: Option<Vec<(usize, bool)>> = None;
        if !sel.order_by.is_empty() {
            let try_bind = |target: &[String]| -> Option<Vec<(usize, bool)>> {
                let mut keys = Vec::new();
                for (e, desc) in &sel.order_by {
                    let idx = match e {
                        Expr::Name(n) => resolve_name(target, n).ok()?,
                        Expr::Literal(crate::value::Datum::Int(i)) if *i >= 1 => (*i - 1) as usize,
                        _ => return None,
                    };
                    keys.push((idx, *desc));
                }
                Some(keys)
            };
            if let Some(keys) = try_bind(&names) {
                sort_after = Some(keys);
            } else if let Some(keys) = try_bind(&scope) {
                sort_before_project = Some(keys);
            } else {
                return Err(SqlError::Plan("ORDER BY must name an output or input column".into()));
            }
        }
        if let Some(keys) = sort_before_project {
            node = PlanNode::Sort { input: Box::new(node), keys };
        }
        // Skip the no-op projection for `SELECT *` over a single scan.
        let identity = exprs.len() == scope.len()
            && exprs.iter().enumerate().all(|(i, e)| *e == Expr::Column(i));
        if !identity {
            node = PlanNode::Project { input: Box::new(node), exprs, scope: names };
        }
        if let Some(keys) = sort_after {
            node = PlanNode::Sort { input: Box::new(node), keys };
        }
    }

    // Aggregate ORDER BY binds over the aggregate output scope.
    if !sel.order_by.is_empty() && has_aggs {
        let out_scope = node.scope();
        let mut keys = Vec::new();
        for (e, desc) in &sel.order_by {
            let idx = match e {
                Expr::Name(n) => resolve_name(&out_scope, n).map_err(SqlError::Plan)?,
                Expr::Literal(crate::value::Datum::Int(i)) if *i >= 1 => (*i - 1) as usize,
                _ => return Err(SqlError::Plan("ORDER BY must name an output column".into())),
            };
            keys.push((idx, *desc));
        }
        node = PlanNode::Sort { input: Box::new(node), keys };
    }

    if let Some(n) = sel.limit {
        node = PlanNode::Limit { input: Box::new(node), n };
    }
    Ok(node)
}

/// Validates an insert row against column types and nullability.
pub fn check_row(table: &TableDescriptor, row: &[crate::value::Datum]) -> Result<(), SqlError> {
    for (col, datum) in table.columns.iter().zip(row) {
        if datum.is_null() {
            if !col.nullable {
                return Err(SqlError::Constraint(format!("null value in column {}", col.name)));
            }
            continue;
        }
        let ok = match (col.ty, datum.column_type()) {
            (ColumnType::Float, Some(ColumnType::Int)) => true, // int widens
            (expected, Some(actual)) => expected == actual,
            _ => false,
        };
        if !ok {
            return Err(SqlError::Constraint(format!("type mismatch for column {}", col.name)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::value::Datum;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for stmt in [
            "CREATE TABLE item (i_id INT PRIMARY KEY, i_name STRING NOT NULL, i_price FLOAT)",
            "CREATE TABLE stock (s_w_id INT, s_i_id INT, s_qty INT, PRIMARY KEY (s_w_id, s_i_id))",
        ] {
            let parsed = parse(stmt).unwrap();
            match plan_statement(&mut c, &parsed).unwrap() {
                Plan::CreateTable(d) => c.install(d),
                _ => unreachable!(),
            }
        }
        c
    }

    fn plan(c: &mut Catalog, sql: &str) -> Plan {
        plan_statement(c, &parse(sql).unwrap()).unwrap()
    }

    #[test]
    fn point_select_constrains_full_pk() {
        let mut c = catalog();
        let p = plan(&mut c, "SELECT * FROM stock WHERE s_w_id = 1 AND s_i_id = 42");
        match p {
            Plan::Query(PlanNode::Scan { constraint, index_id, .. }) => {
                assert_eq!(index_id, PRIMARY_INDEX_ID);
                assert_eq!(constraint.eq_prefix.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn range_constraint_on_pk_suffix() {
        let mut c = catalog();
        let p =
            plan(&mut c, "SELECT * FROM stock WHERE s_w_id = 1 AND s_i_id >= 10 AND s_i_id < 20");
        match p {
            Plan::Query(PlanNode::Scan { constraint, .. }) => {
                assert_eq!(constraint.eq_prefix.len(), 1);
                assert_eq!(constraint.lower.as_ref().map(|b| b.inclusive), Some(true));
                assert_eq!(constraint.upper.as_ref().map(|b| b.inclusive), Some(false));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn secondary_index_chosen_on_eq_prefix() {
        let mut c = catalog();
        // Add an index on i_name.
        let p = plan(&mut c, "CREATE INDEX name_idx ON item (i_name)");
        match p {
            Plan::CreateIndex { table, .. } => c.install(table),
            other => panic!("{other:?}"),
        }
        let p = plan(&mut c, "SELECT * FROM item WHERE i_name = 'widget'");
        match p {
            Plan::Query(PlanNode::Scan { index_id, constraint, .. }) => {
                assert_ne!(index_id, PRIMARY_INDEX_ID, "secondary index selected");
                assert_eq!(constraint.eq_prefix.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lookup_join_on_full_pk() {
        let mut c = catalog();
        let p = plan(
            &mut c,
            "SELECT s.s_qty, i.i_price FROM stock s JOIN item i ON s.s_i_id = i.i_id \
             WHERE s.s_w_id = 1",
        );
        match p {
            Plan::Query(node) => {
                // Filter applies post-join; beneath it the lookup join.
                fn find_lookup(n: &PlanNode) -> bool {
                    match n {
                        PlanNode::LookupJoin { .. } => true,
                        PlanNode::Filter { input, .. }
                        | PlanNode::Sort { input, .. }
                        | PlanNode::Limit { input, .. }
                        | PlanNode::Project { input, .. } => find_lookup(input),
                        _ => false,
                    }
                }
                assert!(find_lookup(&node), "expected lookup join: {node:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hash_join_on_non_pk() {
        let mut c = catalog();
        let p = plan(&mut c, "SELECT * FROM stock s JOIN item i ON s.s_qty = i.i_id");
        // s_qty = i_id covers item's pk -> actually a lookup join; use a
        // non-pk pairing instead:
        let _ = p;
        let p = plan(&mut c, "SELECT * FROM item a JOIN item b ON a.i_name = b.i_name");
        match p {
            Plan::Query(node) => {
                fn find_hash(n: &PlanNode) -> bool {
                    match n {
                        PlanNode::HashJoin { .. } => true,
                        PlanNode::Filter { input, .. } | PlanNode::Project { input, .. } => {
                            find_hash(input)
                        }
                        _ => false,
                    }
                }
                assert!(find_hash(&node), "expected hash join: {node:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregate_plan_maps_outputs() {
        let mut c = catalog();
        let p = plan(
            &mut c,
            "SELECT s_w_id, SUM(s_qty) AS total FROM stock GROUP BY s_w_id ORDER BY total DESC",
        );
        match p {
            Plan::Query(PlanNode::Sort { input, keys }) => {
                assert_eq!(keys, vec![(1, true)]);
                match *input {
                    PlanNode::Aggregate { output_map, scope, .. } => {
                        assert_eq!(output_map, vec![0, 1]);
                        assert_eq!(scope, vec!["s_w_id".to_string(), "total".to_string()]);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_fills_defaults_and_checks() {
        let mut c = catalog();
        let p = plan(&mut c, "INSERT INTO item (i_id, i_name) VALUES (1, 'x')");
        match p {
            Plan::Insert { rows, table } => {
                assert_eq!(rows[0].len(), 3);
                assert_eq!(rows[0][2], Expr::Literal(Datum::Null));
                // Constraint checks.
                assert!(check_row(&table, &[Datum::Int(1), Datum::Str("x".into()), Datum::Null])
                    .is_ok());
                assert!(check_row(&table, &[Datum::Int(1), Datum::Null, Datum::Null]).is_err());
                assert!(check_row(
                    &table,
                    &[Datum::Str("no".into()), Datum::Str("x".into()), Datum::Null]
                )
                .is_err());
                assert!(
                    check_row(&table, &[Datum::Int(1), Datum::Str("x".into()), Datum::Int(5)])
                        .is_ok(),
                    "int widens to float"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn planning_errors() {
        let mut c = catalog();
        assert!(matches!(
            plan_statement(&mut c, &parse("SELECT * FROM missing").unwrap()),
            Err(SqlError::Plan(_))
        ));
        assert!(matches!(
            plan_statement(&mut c, &parse("SELECT nope FROM item").unwrap()),
            Err(SqlError::Plan(_))
        ));
        assert!(matches!(
            plan_statement(&mut c, &parse("SELECT i_price, COUNT(*) FROM item").unwrap()),
            Err(SqlError::Plan(_)),
        ));
    }
}
