//! Cost-based logical planning.
//!
//! The planner binds names, extracts KV spans from primary-key (or
//! secondary-index) constraints, enumerates scan candidates (full scan /
//! equality seek / range seek per index, lookup vs hash join direction)
//! and costs them with `ANALYZE` statistics from the catalog, producing
//! the [`PlanNode`] tree the executor walks. Span endpoints stay as
//! expressions so one prepared plan serves every parameter binding
//! ("same query, same plan" — §6.7). The cost model is integer-only
//! (u64) so plan choice can never depend on float rounding, and
//! candidates are enumerated in a fixed order with strict-`<`
//! replacement, so ties break deterministically toward the primary
//! index.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

use crate::coord::SqlError;
use crate::expr::{resolve_name, BinOp, Expr};
use crate::parser::{AggFunc, SelectItem, SelectStmt, Statement};
use crate::schema::{Column, IndexDescriptor, TableDescriptor, PRIMARY_INDEX_ID};
use crate::stats::TableStatistics;
use crate::value::{ColumnType, Datum};

/// The per-tenant table catalog (a cache of `system.descriptor` plus the
/// `ANALYZE` statistics stored beside the descriptors).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, TableDescriptor>,
    stats: BTreeMap<u64, TableStatistics>,
    next_table_id: u64,
    force_full_scan: bool,
}

/// First table ID for user tables (lower IDs are reserved for system
/// tables, mirroring CockroachDB).
pub const FIRST_USER_TABLE_ID: u64 = 100;

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog {
            tables: BTreeMap::new(),
            stats: BTreeMap::new(),
            next_table_id: FIRST_USER_TABLE_ID,
            force_full_scan: false,
        }
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&TableDescriptor> {
        self.tables.get(name)
    }

    /// Registers a descriptor (from DDL or a system.descriptor read).
    pub fn install(&mut self, desc: TableDescriptor) {
        self.next_table_id = self.next_table_id.max(desc.id + 1);
        self.tables.insert(desc.name.clone(), desc);
    }

    /// Removes a table (and its statistics).
    pub fn remove(&mut self, name: &str) -> Option<TableDescriptor> {
        let desc = self.tables.remove(name);
        if let Some(d) = &desc {
            self.stats.remove(&d.id);
        }
        desc
    }

    /// Allocates the next table ID.
    pub fn allocate_table_id(&mut self) -> u64 {
        let id = self.next_table_id;
        self.next_table_id += 1;
        id
    }

    /// All descriptors.
    pub fn tables(&self) -> impl Iterator<Item = &TableDescriptor> {
        self.tables.values()
    }

    /// Statistics for a table, if `ANALYZE` has run.
    pub fn stats(&self, table_id: u64) -> Option<&TableStatistics> {
        self.stats.get(&table_id)
    }

    /// Installs statistics (from `ANALYZE` or a catalog load).
    pub fn install_stats(&mut self, stats: TableStatistics) {
        self.stats.insert(stats.table_id, stats);
    }

    /// Drops statistics for a table.
    pub fn remove_stats(&mut self, table_id: u64) {
        self.stats.remove(&table_id);
    }

    /// When set, the planner ignores every index and plans unconstrained
    /// primary full scans with the whole predicate as a residual filter.
    /// Used by differential tests and benches as the oracle plan.
    pub fn set_force_full_scan(&mut self, force: bool) {
        self.force_full_scan = force;
    }

    /// Whether full scans are being forced (see [`Self::set_force_full_scan`]).
    pub fn force_full_scan(&self) -> bool {
        self.force_full_scan
    }
}

/// A bound on a key span, to be evaluated with parameters at execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanBound {
    /// The bound expression.
    pub expr: Expr,
    /// Whether the bound is inclusive.
    pub inclusive: bool,
}

/// How a scan constrains its index.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanConstraint {
    /// Equality-constrained leading index columns, in index order.
    pub eq_prefix: Vec<Expr>,
    /// Optional range on the next index column.
    pub lower: Option<SpanBound>,
    /// Optional upper range bound.
    pub upper: Option<SpanBound>,
}

/// An executable plan node. The row scope of each node is tracked in
/// `scope` (qualified column names) for tests and EXPLAIN-style output.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Literal rows (FROM-less SELECT).
    Values {
        /// Row expressions.
        rows: Vec<Vec<Expr>>,
        /// Output names.
        scope: Vec<String>,
    },
    /// Table scan via primary key or a secondary index.
    Scan {
        /// The table.
        table: TableDescriptor,
        /// The chosen index (`PRIMARY_INDEX_ID` for the primary).
        index_id: u64,
        /// Columns of the chosen index (empty for primary).
        index_cols: Vec<usize>,
        /// Span constraint.
        constraint: ScanConstraint,
        /// Residual filter applied after the scan.
        filter: Option<Expr>,
        /// Row limit pushed down from an enclosing `LIMIT` (only set
        /// when no residual filter or sort sits in between).
        limit: Option<u64>,
        /// Output scope (qualified `alias.col` names).
        scope: Vec<String>,
    },
    /// Nested lookup join: for each left row, batched point-lookups of
    /// the right table's primary key.
    LookupJoin {
        /// Left input.
        input: Box<PlanNode>,
        /// Right table.
        table: TableDescriptor,
        /// Left scope ordinals supplying the right PK, in PK order.
        left_key_cols: Vec<usize>,
        /// Residual ON predicate over the joined scope.
        residual: Option<Expr>,
        /// Output scope.
        scope: Vec<String>,
    },
    /// Hash join on a single equality pair.
    HashJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Left scope ordinal.
        left_col: usize,
        /// Right scope ordinal.
        right_col: usize,
        /// Residual ON predicate over the joined scope.
        residual: Option<Expr>,
        /// Output scope.
        scope: Vec<String>,
    },
    /// Row filter.
    Filter {
        /// Input.
        input: Box<PlanNode>,
        /// Predicate.
        predicate: Expr,
    },
    /// Scalar projection.
    Project {
        /// Input.
        input: Box<PlanNode>,
        /// Output expressions.
        exprs: Vec<Expr>,
        /// Output names.
        scope: Vec<String>,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input.
        input: Box<PlanNode>,
        /// Group-key expressions (over input scope).
        group: Vec<Expr>,
        /// Aggregates: function and argument.
        aggs: Vec<(AggFunc, Option<Expr>)>,
        /// Output names (group names then agg names).
        scope: Vec<String>,
        /// Mapping from SELECT-item order to output columns.
        output_map: Vec<usize>,
    },
    /// Sort.
    Sort {
        /// Input.
        input: Box<PlanNode>,
        /// Keys: output ordinal + descending flag.
        keys: Vec<(usize, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Input.
        input: Box<PlanNode>,
        /// Maximum rows.
        n: u64,
    },
}

impl PlanNode {
    /// The output scope of this node.
    pub fn scope(&self) -> Vec<String> {
        match self {
            PlanNode::Values { scope, .. }
            | PlanNode::Scan { scope, .. }
            | PlanNode::LookupJoin { scope, .. }
            | PlanNode::HashJoin { scope, .. }
            | PlanNode::Project { scope, .. }
            | PlanNode::Aggregate { scope, .. } => scope.clone(),
            PlanNode::Filter { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input, .. } => input.scope(),
        }
    }
}

/// A planned statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// A row-returning query.
    Query(PlanNode),
    /// INSERT: evaluated rows are written through the row codec.
    Insert {
        /// Target table.
        table: TableDescriptor,
        /// Row expressions aligned with table columns (defaults filled).
        rows: Vec<Vec<Expr>>,
    },
    /// UPDATE: scan, then rewrite matching rows.
    Update {
        /// The scan producing target rows.
        scan: Box<PlanNode>,
        /// Target table.
        table: TableDescriptor,
        /// Assignments: column ordinal → expression over the scan scope.
        sets: Vec<(usize, Expr)>,
    },
    /// DELETE: scan, then remove matching rows.
    Delete {
        /// The scan producing target rows.
        scan: Box<PlanNode>,
        /// Target table.
        table: TableDescriptor,
    },
    /// CREATE TABLE.
    CreateTable(TableDescriptor),
    /// CREATE INDEX (descriptor updated, backfill performed).
    CreateIndex {
        /// Updated descriptor including the new index.
        table: TableDescriptor,
        /// The new index.
        index: IndexDescriptor,
    },
    /// DROP TABLE.
    DropTable(TableDescriptor),
    /// ANALYZE: scan the primary index and persist table statistics.
    Analyze(TableDescriptor),
    /// EXPLAIN: the rendered plan of a SELECT, one line per node.
    Explain {
        /// Indented plan-tree lines with integer cost annotations.
        lines: Vec<String>,
    },
    /// BEGIN.
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
}

/// Plans a parsed statement against a catalog.
pub fn plan_statement(catalog: &mut Catalog, stmt: &Statement) -> Result<Plan, SqlError> {
    match stmt {
        Statement::Begin => Ok(Plan::Begin),
        Statement::Commit => Ok(Plan::Commit),
        Statement::Rollback => Ok(Plan::Rollback),
        Statement::CreateTable { name, columns, primary_key } => {
            if catalog.table(name).is_some() {
                return Err(SqlError::Plan(format!("table {name} already exists")));
            }
            let cols: Vec<Column> = columns
                .iter()
                .map(|(n, ty, nullable)| Column {
                    name: n.clone(),
                    ty: *ty,
                    nullable: *nullable && !primary_key.contains(n),
                })
                .collect();
            let mut pk = Vec::new();
            for pkcol in primary_key {
                let i = cols
                    .iter()
                    .position(|c| &c.name == pkcol)
                    .ok_or_else(|| SqlError::Plan(format!("unknown pk column {pkcol}")))?;
                pk.push(i);
            }
            let desc = TableDescriptor {
                id: catalog.allocate_table_id(),
                name: name.clone(),
                columns: cols,
                primary_key: pk,
                indexes: Vec::new(),
            };
            Ok(Plan::CreateTable(desc))
        }
        Statement::CreateIndex { name, table, columns } => {
            let desc = catalog
                .table(table)
                .cloned()
                .ok_or_else(|| SqlError::Plan(format!("unknown table {table}")))?;
            let mut cols = Vec::new();
            for c in columns {
                cols.push(
                    desc.column_index(c)
                        .ok_or_else(|| SqlError::Plan(format!("unknown column {c}")))?,
                );
            }
            let index = IndexDescriptor {
                id: desc.indexes.iter().map(|i| i.id).max().unwrap_or(PRIMARY_INDEX_ID) + 1,
                name: name.clone(),
                columns: cols,
            };
            let mut updated = desc;
            updated.indexes.push(index.clone());
            Ok(Plan::CreateIndex { table: updated, index })
        }
        Statement::DropTable { name } => {
            let desc = catalog
                .table(name)
                .cloned()
                .ok_or_else(|| SqlError::Plan(format!("unknown table {name}")))?;
            Ok(Plan::DropTable(desc))
        }
        Statement::Insert { table, columns, values } => {
            let desc = catalog
                .table(table)
                .cloned()
                .ok_or_else(|| SqlError::Plan(format!("unknown table {table}")))?;
            let target: Vec<usize> = if columns.is_empty() {
                (0..desc.columns.len()).collect()
            } else {
                let mut t = Vec::new();
                for c in columns {
                    t.push(
                        desc.column_index(c)
                            .ok_or_else(|| SqlError::Plan(format!("unknown column {c}")))?,
                    );
                }
                t
            };
            let mut rows = Vec::with_capacity(values.len());
            for v in values {
                if v.len() != target.len() {
                    return Err(SqlError::Plan(format!(
                        "INSERT has {} values for {} columns",
                        v.len(),
                        target.len()
                    )));
                }
                let mut row: Vec<Expr> =
                    vec![Expr::Literal(crate::value::Datum::Null); desc.columns.len()];
                for (expr, &col) in v.iter().zip(&target) {
                    row[col] = expr.clone();
                }
                rows.push(row);
            }
            Ok(Plan::Insert { table: desc, rows })
        }
        Statement::Select(sel) => Ok(Plan::Query(plan_select(catalog, sel)?)),
        Statement::Analyze { table } => {
            let desc = catalog
                .table(table)
                .cloned()
                .ok_or_else(|| SqlError::Plan(format!("unknown table {table}")))?;
            Ok(Plan::Analyze(desc))
        }
        Statement::Explain(sel) => {
            let node = plan_select(catalog, sel)?;
            Ok(Plan::Explain { lines: explain_plan(catalog, &node) })
        }
        Statement::Update { table, sets, filter } => {
            let desc = catalog
                .table(table)
                .cloned()
                .ok_or_else(|| SqlError::Plan(format!("unknown table {table}")))?;
            let scan = plan_table_scan(catalog, &desc, None, filter.clone())?;
            let scope = scan.scope();
            let mut bound_sets = Vec::new();
            for (col, e) in sets {
                let i = desc
                    .column_index(col)
                    .ok_or_else(|| SqlError::Plan(format!("unknown column {col}")))?;
                let mut e = e.clone();
                e.bind(&scope).map_err(SqlError::Plan)?;
                bound_sets.push((i, e));
            }
            Ok(Plan::Update { scan: Box::new(scan), table: desc, sets: bound_sets })
        }
        Statement::Delete { table, filter } => {
            let desc = catalog
                .table(table)
                .cloned()
                .ok_or_else(|| SqlError::Plan(format!("unknown table {table}")))?;
            let scan = plan_table_scan(catalog, &desc, None, filter.clone())?;
            Ok(Plan::Delete { scan: Box::new(scan), table: desc })
        }
    }
}

/// Splits an expression into its top-level AND conjuncts.
fn conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Bin(BinOp::And, l, r) => {
            let mut out = conjuncts(*l);
            out.extend(conjuncts(*r));
            out
        }
        other => vec![other],
    }
}

/// A comparison `col <op> value-expr` extracted from a conjunct.
struct ColCmp {
    col: usize,
    op: BinOp,
    value: Expr,
}

fn as_col_cmp(e: &Expr, scope: &[String]) -> Option<ColCmp> {
    if let Expr::Bin(op, l, r) = e {
        let flip = |op: BinOp| match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        };
        let is_value = |e: &Expr| matches!(e, Expr::Literal(_) | Expr::Param(_));
        if let Expr::Name(n) = l.as_ref() {
            if is_value(r) {
                if let Ok(col) = resolve_name(scope, n) {
                    return Some(ColCmp { col, op: *op, value: (**r).clone() });
                }
            }
        }
        if let Expr::Name(n) = r.as_ref() {
            if is_value(l) {
                if let Ok(col) = resolve_name(scope, n) {
                    return Some(ColCmp { col, op: flip(*op), value: (**l).clone() });
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Cost model. All integer arithmetic: plan choice must be bit-stable
// across runs and platforms, so no floats enter the comparison.
// ---------------------------------------------------------------------

/// Cost of streaming one row out of a scan.
const COST_PER_ROW: u64 = 10;
/// Extra cost per row of a secondary-index plan (the PK lookup join back
/// into the primary index) or of a lookup-join probe.
const COST_PER_LOOKUP: u64 = 20;
/// Fixed cost of positioning a scan (per seek).
const SEEK_COST: u64 = 20;
/// Per-row cost of materializing and hashing the build side of a hash
/// join. In the separated architecture every build-side byte crosses the
/// SQL/KV process boundary and is held in pod memory, so this is charged
/// well above streaming.
const COST_PER_HASH_BUILD: u64 = 200;
/// Assumed table cardinality when `ANALYZE` has not run.
const DEFAULT_ROW_COUNT: u64 = 1000;
/// Without statistics, each equality column is assumed to divide the row
/// count by this much.
const DEFAULT_EQ_SELECTIVITY: u64 = 10;
/// Each range bound (lower or upper) is assumed to divide the remaining
/// row count by this much.
const RANGE_SELECTIVITY: u64 = 4;

/// Estimated rows a span with `eq_len` equality columns and
/// `n_range_bounds` range bounds reads from `index_id`.
fn estimated_span_rows(
    stats: Option<&TableStatistics>,
    index_id: u64,
    eq_len: usize,
    n_range_bounds: usize,
) -> u64 {
    let row_count = stats.map(|s| s.row_count).unwrap_or(DEFAULT_ROW_COUNT);
    let mut est = if eq_len == 0 {
        row_count
    } else {
        match stats.and_then(|s| s.distinct_prefix(index_id, eq_len)) {
            Some(d) if d > 0 => row_count / d,
            // No stats, or an index created after the last ANALYZE
            // (stale stats don't know its prefixes): fall back to the
            // default per-column selectivity.
            _ => {
                let mut e = row_count;
                for _ in 0..eq_len {
                    e /= DEFAULT_EQ_SELECTIVITY;
                }
                e
            }
        }
    }
    .max(1);
    for _ in 0..n_range_bounds {
        est = (est / RANGE_SELECTIVITY).max(1);
    }
    est
}

/// Cost of scanning `est_rows` via `index_id`: secondary-index plans pay
/// a PK lookup per row on top of streaming.
fn scan_cost(index_id: u64, est_rows: u64) -> u64 {
    let per_row =
        if index_id == PRIMARY_INDEX_ID { COST_PER_ROW } else { COST_PER_ROW + COST_PER_LOOKUP };
    SEEK_COST.saturating_add(est_rows.saturating_mul(per_row))
}

/// Rough output-cardinality estimate for a plan subtree (used for join
/// direction costing and EXPLAIN annotations).
fn estimate_output_rows(catalog: &Catalog, node: &PlanNode) -> u64 {
    match node {
        PlanNode::Values { rows, .. } => rows.len() as u64,
        PlanNode::Scan { table, index_id, constraint, filter, limit, .. } => {
            let n_bounds =
                constraint.lower.is_some() as usize + constraint.upper.is_some() as usize;
            let mut est = estimated_span_rows(
                catalog.stats(table.id),
                *index_id,
                constraint.eq_prefix.len(),
                n_bounds,
            );
            if filter.is_some() {
                est = (est / 2).max(1);
            }
            if let Some(n) = limit {
                est = est.min(*n);
            }
            est
        }
        PlanNode::LookupJoin { input, .. } => estimate_output_rows(catalog, input),
        PlanNode::HashJoin { left, .. } => estimate_output_rows(catalog, left),
        PlanNode::Filter { input, .. } => (estimate_output_rows(catalog, input) / 2).max(1),
        PlanNode::Project { input, .. } => estimate_output_rows(catalog, input),
        PlanNode::Aggregate { input, group, .. } => {
            if group.is_empty() {
                1
            } else {
                (estimate_output_rows(catalog, input) / DEFAULT_EQ_SELECTIVITY).max(1)
            }
        }
        PlanNode::Sort { input, .. } => estimate_output_rows(catalog, input),
        PlanNode::Limit { input, n } => estimate_output_rows(catalog, input).min(*n),
    }
}

/// An equality value usable as a span key for a column of type `ct`.
/// Returns the (possibly type-coerced) span expression and whether the
/// originating conjunct may be dropped from the residual filter.
///
/// Droppability is the NULL-safety rule: a conjunct leaves the residual
/// only when its value is a non-NULL literal of the column's exact (or
/// losslessly coerced) type. Params stay in the residual because a NULL
/// param encodes to a real key byte (`0x00`) at execution and the span
/// would wrongly match stored NULLs — the kept residual `col = NULL`
/// evaluates to NULL (not true) and filters them out.
fn eq_span_value(value: &Expr, ct: ColumnType) -> Option<(Expr, bool)> {
    match value {
        Expr::Param(_) => Some((value.clone(), false)),
        Expr::Literal(Datum::Null) => None,
        Expr::Literal(d) => match (ct, d) {
            (ColumnType::Float, Datum::Int(i)) => {
                Some((Expr::Literal(Datum::Float(*i as f64)), true))
            }
            (ColumnType::Int, Datum::Float(f)) if f.fract() == 0.0 && f.abs() < 9.0e18 => {
                Some((Expr::Literal(Datum::Int(*f as i64)), true))
            }
            _ if d.column_type() == Some(ct) => Some((value.clone(), true)),
            // Type mismatch (e.g. string on an int column): leave the
            // conjunct to residual evaluation, no span.
            _ => None,
        },
        _ => None,
    }
}

/// A range-bound value usable as a span endpoint for a column of type
/// `ct`. Range conjuncts always stay in the residual (an unbounded side
/// of the span still starts at the index prefix, which covers stored
/// NULL keys), so only span usability is decided here.
fn range_span_value(value: &Expr, ct: ColumnType) -> Option<Expr> {
    match value {
        Expr::Param(_) => Some(value.clone()),
        Expr::Literal(Datum::Null) => None,
        Expr::Literal(d) => match (ct, d) {
            (ColumnType::Float, Datum::Int(i)) => Some(Expr::Literal(Datum::Float(*i as f64))),
            _ if d.column_type() == Some(ct) => Some(value.clone()),
            _ => None,
        },
        _ => None,
    }
}

/// One costed scan candidate.
struct ScanCandidate {
    index_id: u64,
    index_cols: Vec<usize>,
    eq_len: usize,
    lower: Option<SpanBound>,
    upper: Option<SpanBound>,
    cost: u64,
}

/// Plans a scan of `table` (aliased) with an optional filter: enumerates
/// a candidate per index (full scan, equality seek, range seek) and
/// keeps the cheapest under the statistics-driven cost model.
fn plan_table_scan(
    catalog: &Catalog,
    table: &TableDescriptor,
    alias: Option<&str>,
    filter: Option<Expr>,
) -> Result<PlanNode, SqlError> {
    let alias = alias.unwrap_or(&table.name);
    let scope: Vec<String> = table.columns.iter().map(|c| format!("{alias}.{}", c.name)).collect();

    // Classify conjuncts. `eq` maps a column to its span value, the
    // conjunct's position, and whether that conjunct may leave the
    // residual when the column is consumed into the chosen eq prefix.
    let mut all: Vec<Expr> = Vec::new();
    let mut eq: BTreeMap<usize, (Expr, usize, bool)> = BTreeMap::new();
    let mut ranges: Vec<(usize, BinOp, Expr)> = Vec::new();
    if let Some(f) = filter {
        for c in conjuncts(f) {
            if !catalog.force_full_scan() {
                if let Some(cmp) = as_col_cmp(&c, &scope) {
                    let ct = table.columns[cmp.col].ty;
                    match cmp.op {
                        BinOp::Eq => {
                            if let Entry::Vacant(slot) = eq.entry(cmp.col) {
                                if let Some((value, droppable)) = eq_span_value(&cmp.value, ct) {
                                    slot.insert((value, all.len(), droppable));
                                }
                            }
                        }
                        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                            if let Some(value) = range_span_value(&cmp.value, ct) {
                                ranges.push((cmp.col, cmp.op, value));
                            }
                        }
                        _ => {}
                    }
                }
            }
            all.push(c);
        }
    }

    // Enumerate one candidate per index, primary first; strict `<`
    // replacement keeps ties on the earliest (primary) candidate.
    let stats = catalog.stats(table.id);
    let mut order: Vec<(u64, Vec<usize>)> = vec![(PRIMARY_INDEX_ID, table.primary_key.clone())];
    for idx in &table.indexes {
        order.push((idx.id, idx.columns.clone()));
    }
    let mut best: Option<ScanCandidate> = None;
    for (index_id, index_cols) in order {
        let mut eq_len = 0;
        for c in &index_cols {
            if eq.contains_key(c) {
                eq_len += 1;
            } else {
                break;
            }
        }
        // A range on the first unconstrained index column tightens the
        // span — including eq_len == 0, a range-only index seek.
        let mut lower = None;
        let mut upper = None;
        if let Some(&next_col) = index_cols.get(eq_len) {
            for (col, op, value) in &ranges {
                if *col != next_col {
                    continue;
                }
                match op {
                    BinOp::Ge => lower = Some(SpanBound { expr: value.clone(), inclusive: true }),
                    BinOp::Gt => lower = Some(SpanBound { expr: value.clone(), inclusive: false }),
                    BinOp::Le => upper = Some(SpanBound { expr: value.clone(), inclusive: true }),
                    BinOp::Lt => upper = Some(SpanBound { expr: value.clone(), inclusive: false }),
                    _ => {}
                }
            }
        }
        let n_bounds = lower.is_some() as usize + upper.is_some() as usize;
        let est = estimated_span_rows(stats, index_id, eq_len, n_bounds);
        let cost = scan_cost(index_id, est);
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(ScanCandidate { index_id, index_cols, eq_len, lower, upper, cost });
        }
    }
    let chosen = best.expect("at least the primary candidate");

    // Build the span constraint and decide which conjuncts it covers.
    let mut constraint = ScanConstraint::default();
    let mut dropped: BTreeSet<usize> = BTreeSet::new();
    for &c in chosen.index_cols.iter().take(chosen.eq_len) {
        let (value, conjunct_idx, droppable) = &eq[&c];
        constraint.eq_prefix.push(value.clone());
        if *droppable {
            dropped.insert(*conjunct_idx);
        }
    }
    constraint.lower = chosen.lower;
    constraint.upper = chosen.upper;

    // Bind the residual filter (everything the span doesn't provably
    // cover, in original conjunct order).
    let filter = all
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !dropped.contains(i))
        .map(|(_, mut e)| {
            e.bind(&scope).map_err(SqlError::Plan)?;
            Ok(e)
        })
        .collect::<Result<Vec<_>, SqlError>>()?
        .into_iter()
        .reduce(|a, b| Expr::Bin(BinOp::And, Box::new(a), Box::new(b)));

    Ok(PlanNode::Scan {
        table: table.clone(),
        index_id: chosen.index_id,
        index_cols: chosen.index_cols,
        constraint,
        filter,
        limit: None,
        scope,
    })
}

/// Pushes a top-level LIMIT into its scan when every node in between
/// preserves rows one-for-one (projections) and the scan itself has no
/// residual filter. Sorts, filters, joins and aggregates block pushdown.
fn push_limit_down(node: PlanNode) -> PlanNode {
    fn push_into(node: PlanNode, n: u64) -> PlanNode {
        match node {
            PlanNode::Scan {
                table,
                index_id,
                index_cols,
                constraint,
                filter: None,
                limit,
                scope,
            } => PlanNode::Scan {
                table,
                index_id,
                index_cols,
                constraint,
                filter: None,
                limit: Some(limit.map_or(n, |l| l.min(n))),
                scope,
            },
            PlanNode::Project { input, exprs, scope } => {
                PlanNode::Project { input: Box::new(push_into(*input, n)), exprs, scope }
            }
            other => other,
        }
    }
    match node {
        PlanNode::Limit { input, n } => {
            PlanNode::Limit { input: Box::new(push_into(*input, n)), n }
        }
        other => other,
    }
}

/// The display name of an index for EXPLAIN output.
fn index_name(table: &TableDescriptor, index_id: u64) -> String {
    if index_id == PRIMARY_INDEX_ID {
        "primary".to_string()
    } else {
        table
            .indexes
            .iter()
            .find(|i| i.id == index_id)
            .map(|i| i.name.clone())
            .unwrap_or_else(|| format!("index{index_id}"))
    }
}

/// Renders a plan tree as indented text lines with integer cost
/// annotations. All numbers are u64 so the output is byte-identical for
/// identical (catalog, statement) inputs — the testable face of the
/// "same query, same plan" contract.
pub fn explain_plan(catalog: &Catalog, node: &PlanNode) -> Vec<String> {
    fn render(catalog: &Catalog, node: &PlanNode, depth: usize, out: &mut Vec<String>) {
        let pad = "  ".repeat(depth);
        match node {
            PlanNode::Values { rows, .. } => {
                out.push(format!("{pad}values (rows={})", rows.len()));
            }
            PlanNode::Scan { table, index_id, constraint, filter, limit, .. } => {
                let n_bounds =
                    constraint.lower.is_some() as usize + constraint.upper.is_some() as usize;
                let est = estimated_span_rows(
                    catalog.stats(table.id),
                    *index_id,
                    constraint.eq_prefix.len(),
                    n_bounds,
                );
                let cost = scan_cost(*index_id, est);
                let mut span = if constraint.eq_prefix.is_empty() && n_bounds == 0 {
                    "full".to_string()
                } else {
                    let mut parts = Vec::new();
                    if !constraint.eq_prefix.is_empty() {
                        parts.push(format!("eq={}", constraint.eq_prefix.len()));
                    }
                    if constraint.lower.is_some() {
                        parts.push("lower".to_string());
                    }
                    if constraint.upper.is_some() {
                        parts.push("upper".to_string());
                    }
                    parts.join(",")
                };
                if let Some(n) = limit {
                    span.push_str(&format!(" limit={n}"));
                }
                let residual = if filter.is_some() { " +filter" } else { "" };
                out.push(format!(
                    "{pad}scan {}@{} [{span}]{residual} (est_rows={est} cost={cost})",
                    table.name,
                    index_name(table, *index_id),
                ));
            }
            PlanNode::LookupJoin { input, table, .. } => {
                let est = estimate_output_rows(catalog, node);
                out.push(format!("{pad}lookup-join {}@primary (est_rows={est})", table.name));
                render(catalog, input, depth + 1, out);
            }
            PlanNode::HashJoin { left, right, .. } => {
                let est = estimate_output_rows(catalog, node);
                out.push(format!("{pad}hash-join (est_rows={est})"));
                render(catalog, left, depth + 1, out);
                render(catalog, right, depth + 1, out);
            }
            PlanNode::Filter { input, .. } => {
                out.push(format!("{pad}filter"));
                render(catalog, input, depth + 1, out);
            }
            PlanNode::Project { input, exprs, .. } => {
                out.push(format!("{pad}project (exprs={})", exprs.len()));
                render(catalog, input, depth + 1, out);
            }
            PlanNode::Aggregate { input, group, aggs, .. } => {
                out.push(format!("{pad}aggregate (groups={} aggs={})", group.len(), aggs.len()));
                render(catalog, input, depth + 1, out);
            }
            PlanNode::Sort { input, keys } => {
                let keys: Vec<String> = keys
                    .iter()
                    .map(|(i, desc)| format!("{}{}", i, if *desc { "-" } else { "+" }))
                    .collect();
                out.push(format!("{pad}sort (keys={})", keys.join(",")));
                render(catalog, input, depth + 1, out);
            }
            PlanNode::Limit { input, n } => {
                out.push(format!("{pad}limit {n}"));
                render(catalog, input, depth + 1, out);
            }
        }
    }
    let mut out = Vec::new();
    render(catalog, node, 0, &mut out);
    out
}

fn plan_select(catalog: &Catalog, sel: &SelectStmt) -> Result<PlanNode, SqlError> {
    // FROM-less SELECT.
    let (base_table, base_alias) = match &sel.from {
        None => {
            let mut rows = vec![Vec::new()];
            let mut scope = Vec::new();
            for (i, item) in sel.items.iter().enumerate() {
                match item {
                    SelectItem::Expr { expr, alias } => {
                        rows[0].push(expr.clone());
                        scope.push(alias.clone().unwrap_or_else(|| format!("column{}", i + 1)));
                    }
                    _ => return Err(SqlError::Plan("* requires FROM".into())),
                }
            }
            return Ok(PlanNode::Values { rows, scope });
        }
        Some((t, a)) => (t.clone(), a.clone()),
    };

    let base_desc = catalog
        .table(&base_table)
        .cloned()
        .ok_or_else(|| SqlError::Plan(format!("unknown table {base_table}")))?;

    // Push the WHERE clause into the base scan when there are no joins;
    // with joins, the filter applies after the join (simpler and correct).
    let mut node = if sel.joins.is_empty() {
        plan_table_scan(catalog, &base_desc, base_alias.as_deref(), sel.filter.clone())?
    } else {
        plan_table_scan(catalog, &base_desc, base_alias.as_deref(), None)?
    };

    // Joins, left-deep.
    for join in &sel.joins {
        let right = catalog
            .table(&join.table)
            .cloned()
            .ok_or_else(|| SqlError::Plan(format!("unknown table {}", join.table)))?;
        let right_alias = join.alias.clone().unwrap_or_else(|| join.table.clone());
        let left_scope = node.scope();
        let right_scope: Vec<String> =
            right.columns.iter().map(|c| format!("{right_alias}.{}", c.name)).collect();
        let joined_scope: Vec<String> =
            left_scope.iter().chain(right_scope.iter()).cloned().collect();

        // Decompose ON into eq pairs between left and right columns.
        let mut eq_pairs: Vec<(usize, usize)> = Vec::new(); // (left ord, right col ord)
        let mut residual: Vec<Expr> = Vec::new();
        for c in conjuncts(join.on.clone()) {
            let mut matched = false;
            if let Expr::Bin(BinOp::Eq, l, r) = &c {
                if let (Expr::Name(a), Expr::Name(b)) = (l.as_ref(), r.as_ref()) {
                    let la = resolve_name(&left_scope, a);
                    let rb = resolve_name(&right_scope, b);
                    if let (Ok(la), Ok(rb)) = (la, rb) {
                        eq_pairs.push((la, rb));
                        matched = true;
                    } else {
                        let lb = resolve_name(&left_scope, b);
                        let ra = resolve_name(&right_scope, a);
                        if let (Ok(lb), Ok(ra)) = (lb, ra) {
                            eq_pairs.push((lb, ra));
                            matched = true;
                        }
                    }
                }
            }
            if !matched {
                residual.push(c);
            }
        }
        if eq_pairs.is_empty() {
            return Err(SqlError::Plan("JOIN requires an equality condition".into()));
        }
        let residual = residual
            .into_iter()
            .map(|mut e| {
                e.bind(&joined_scope).map_err(SqlError::Plan)?;
                Ok(e)
            })
            .collect::<Result<Vec<_>, SqlError>>()?
            .into_iter()
            .reduce(|a, b| Expr::Bin(BinOp::And, Box::new(a), Box::new(b)));

        // Lookup join when the eq pairs cover the right PK *and* the
        // cost model favors per-row probes over materializing the right
        // side: batched point lookups cost `COST_PER_LOOKUP` per left
        // row, while a hash join pays a full right scan plus the build.
        let covers_pk = right.primary_key.len() <= eq_pairs.len()
            && right.primary_key.iter().all(|pkc| eq_pairs.iter().any(|(_, rc)| rc == pkc));
        let lookup_is_cheaper = {
            let left_est = estimate_output_rows(catalog, &node);
            let right_rows =
                catalog.stats(right.id).map(|s| s.row_count).unwrap_or(DEFAULT_ROW_COUNT);
            let lookup_cost = left_est.saturating_mul(COST_PER_LOOKUP);
            let hash_cost = SEEK_COST
                .saturating_add(right_rows.saturating_mul(COST_PER_HASH_BUILD))
                .saturating_add(left_est.saturating_mul(COST_PER_ROW));
            lookup_cost <= hash_cost
        };
        if covers_pk && lookup_is_cheaper {
            let mut left_key_cols = Vec::new();
            for pkc in &right.primary_key {
                let (lc, _) = eq_pairs.iter().find(|(_, rc)| rc == pkc).unwrap();
                left_key_cols.push(*lc);
            }
            node = PlanNode::LookupJoin {
                input: Box::new(node),
                table: right,
                left_key_cols,
                residual,
                scope: joined_scope,
            };
        } else {
            let (lc, rc) = eq_pairs[0];
            // Fold the remaining eq pairs into the residual.
            let mut residual = residual;
            for &(l, r) in &eq_pairs[1..] {
                let e = Expr::Bin(
                    BinOp::Eq,
                    Box::new(Expr::Column(l)),
                    Box::new(Expr::Column(left_scope.len() + r)),
                );
                residual = Some(match residual {
                    Some(prev) => Expr::Bin(BinOp::And, Box::new(prev), Box::new(e)),
                    None => e,
                });
            }
            let right_node = plan_table_scan(catalog, &right, Some(&right_alias), None)?;
            node = PlanNode::HashJoin {
                left: Box::new(node),
                right: Box::new(right_node),
                left_col: lc,
                right_col: rc,
                residual,
                scope: joined_scope,
            };
        }
    }

    // Post-join filter.
    if !sel.joins.is_empty() {
        if let Some(f) = &sel.filter {
            let scope = node.scope();
            let mut f = f.clone();
            f.bind(&scope).map_err(SqlError::Plan)?;
            node = PlanNode::Filter { input: Box::new(node), predicate: f };
        }
    }

    let scope = node.scope();
    let has_aggs =
        sel.items.iter().any(|i| matches!(i, SelectItem::Agg { .. })) || !sel.group_by.is_empty();

    if has_aggs {
        // Bind group-by expressions over the input scope.
        let mut group = Vec::new();
        let mut group_names = Vec::new();
        for g in &sel.group_by {
            let mut e = g.clone();
            let name = match g {
                Expr::Name(n) => n.clone(),
                _ => format!("group{}", group.len() + 1),
            };
            e.bind(&scope).map_err(SqlError::Plan)?;
            group.push(e);
            group_names.push(name);
        }
        let mut aggs = Vec::new();
        let mut out_scope = group_names.clone();
        let mut output_map = Vec::new();
        for item in &sel.items {
            match item {
                SelectItem::Agg { func, arg, alias } => {
                    let arg = match arg {
                        Some(a) => {
                            let mut a = a.clone();
                            a.bind(&scope).map_err(SqlError::Plan)?;
                            Some(a)
                        }
                        None => None,
                    };
                    output_map.push(group.len() + aggs.len());
                    aggs.push((*func, arg));
                    out_scope.push(alias.clone().unwrap_or_else(|| format!("agg{}", aggs.len())));
                }
                SelectItem::Expr { expr, alias } => {
                    // Must match a group expression.
                    let mut bound = expr.clone();
                    bound.bind(&scope).map_err(SqlError::Plan)?;
                    let pos = group
                        .iter()
                        .position(|g| *g == bound)
                        .ok_or_else(|| SqlError::Plan("non-grouped column in SELECT".into()))?;
                    output_map.push(pos);
                    if let Some(a) = alias {
                        out_scope[pos] = a.clone();
                    }
                }
                SelectItem::Star => {
                    return Err(SqlError::Plan("* with GROUP BY is unsupported".into()))
                }
            }
        }
        node = PlanNode::Aggregate {
            input: Box::new(node),
            group,
            aggs,
            scope: out_scope,
            output_map,
        };
    } else {
        // Plain projection.
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            match item {
                SelectItem::Star => {
                    for (j, name) in scope.iter().enumerate() {
                        exprs.push(Expr::Column(j));
                        names.push(name.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let mut e = expr.clone();
                    e.bind(&scope).map_err(SqlError::Plan)?;
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Name(n) => n.clone(),
                        _ => format!("column{}", i + 1),
                    });
                    exprs.push(e);
                    names.push(name);
                }
                SelectItem::Agg { .. } => unreachable!("handled above"),
            }
        }
        // ORDER BY may reference either output aliases or input columns;
        // when it names input columns, the sort runs before projection.
        let mut sort_before_project: Option<Vec<(usize, bool)>> = None;
        let mut sort_after: Option<Vec<(usize, bool)>> = None;
        if !sel.order_by.is_empty() {
            let try_bind = |target: &[String]| -> Option<Vec<(usize, bool)>> {
                let mut keys = Vec::new();
                for (e, desc) in &sel.order_by {
                    let idx = match e {
                        Expr::Name(n) => resolve_name(target, n).ok()?,
                        Expr::Literal(crate::value::Datum::Int(i)) if *i >= 1 => (*i - 1) as usize,
                        _ => return None,
                    };
                    keys.push((idx, *desc));
                }
                Some(keys)
            };
            if let Some(keys) = try_bind(&names) {
                sort_after = Some(keys);
            } else if let Some(keys) = try_bind(&scope) {
                sort_before_project = Some(keys);
            } else {
                return Err(SqlError::Plan("ORDER BY must name an output or input column".into()));
            }
        }
        if let Some(keys) = sort_before_project {
            node = PlanNode::Sort { input: Box::new(node), keys };
        }
        // Skip the no-op projection for `SELECT *` over a single scan.
        let identity = exprs.len() == scope.len()
            && exprs.iter().enumerate().all(|(i, e)| *e == Expr::Column(i));
        if !identity {
            node = PlanNode::Project { input: Box::new(node), exprs, scope: names };
        }
        if let Some(keys) = sort_after {
            node = PlanNode::Sort { input: Box::new(node), keys };
        }
    }

    // Aggregate ORDER BY binds over the aggregate output scope.
    if !sel.order_by.is_empty() && has_aggs {
        let out_scope = node.scope();
        let mut keys = Vec::new();
        for (e, desc) in &sel.order_by {
            let idx = match e {
                Expr::Name(n) => resolve_name(&out_scope, n).map_err(SqlError::Plan)?,
                Expr::Literal(crate::value::Datum::Int(i)) if *i >= 1 => (*i - 1) as usize,
                _ => return Err(SqlError::Plan("ORDER BY must name an output column".into())),
            };
            keys.push((idx, *desc));
        }
        node = PlanNode::Sort { input: Box::new(node), keys };
    }

    if let Some(n) = sel.limit {
        node = PlanNode::Limit { input: Box::new(node), n };
        node = push_limit_down(node);
    }
    Ok(node)
}

/// Validates an insert row against column types and nullability.
pub fn check_row(table: &TableDescriptor, row: &[crate::value::Datum]) -> Result<(), SqlError> {
    for (col, datum) in table.columns.iter().zip(row) {
        if datum.is_null() {
            if !col.nullable {
                return Err(SqlError::Constraint(format!("null value in column {}", col.name)));
            }
            continue;
        }
        let ok = match (col.ty, datum.column_type()) {
            (ColumnType::Float, Some(ColumnType::Int)) => true, // int widens
            (expected, Some(actual)) => expected == actual,
            _ => false,
        };
        if !ok {
            return Err(SqlError::Constraint(format!("type mismatch for column {}", col.name)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::value::Datum;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for stmt in [
            "CREATE TABLE item (i_id INT PRIMARY KEY, i_name STRING NOT NULL, i_price FLOAT)",
            "CREATE TABLE stock (s_w_id INT, s_i_id INT, s_qty INT, PRIMARY KEY (s_w_id, s_i_id))",
        ] {
            let parsed = parse(stmt).unwrap();
            match plan_statement(&mut c, &parsed).unwrap() {
                Plan::CreateTable(d) => c.install(d),
                _ => unreachable!(),
            }
        }
        c
    }

    fn plan(c: &mut Catalog, sql: &str) -> Plan {
        plan_statement(c, &parse(sql).unwrap()).unwrap()
    }

    #[test]
    fn point_select_constrains_full_pk() {
        let mut c = catalog();
        let p = plan(&mut c, "SELECT * FROM stock WHERE s_w_id = 1 AND s_i_id = 42");
        match p {
            Plan::Query(PlanNode::Scan { constraint, index_id, .. }) => {
                assert_eq!(index_id, PRIMARY_INDEX_ID);
                assert_eq!(constraint.eq_prefix.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn range_constraint_on_pk_suffix() {
        let mut c = catalog();
        let p =
            plan(&mut c, "SELECT * FROM stock WHERE s_w_id = 1 AND s_i_id >= 10 AND s_i_id < 20");
        match p {
            Plan::Query(PlanNode::Scan { constraint, .. }) => {
                assert_eq!(constraint.eq_prefix.len(), 1);
                assert_eq!(constraint.lower.as_ref().map(|b| b.inclusive), Some(true));
                assert_eq!(constraint.upper.as_ref().map(|b| b.inclusive), Some(false));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn secondary_index_chosen_on_eq_prefix() {
        let mut c = catalog();
        // Add an index on i_name.
        let p = plan(&mut c, "CREATE INDEX name_idx ON item (i_name)");
        match p {
            Plan::CreateIndex { table, .. } => c.install(table),
            other => panic!("{other:?}"),
        }
        let p = plan(&mut c, "SELECT * FROM item WHERE i_name = 'widget'");
        match p {
            Plan::Query(PlanNode::Scan { index_id, constraint, .. }) => {
                assert_ne!(index_id, PRIMARY_INDEX_ID, "secondary index selected");
                assert_eq!(constraint.eq_prefix.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lookup_join_on_full_pk() {
        let mut c = catalog();
        let p = plan(
            &mut c,
            "SELECT s.s_qty, i.i_price FROM stock s JOIN item i ON s.s_i_id = i.i_id \
             WHERE s.s_w_id = 1",
        );
        match p {
            Plan::Query(node) => {
                // Filter applies post-join; beneath it the lookup join.
                fn find_lookup(n: &PlanNode) -> bool {
                    match n {
                        PlanNode::LookupJoin { .. } => true,
                        PlanNode::Filter { input, .. }
                        | PlanNode::Sort { input, .. }
                        | PlanNode::Limit { input, .. }
                        | PlanNode::Project { input, .. } => find_lookup(input),
                        _ => false,
                    }
                }
                assert!(find_lookup(&node), "expected lookup join: {node:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hash_join_on_non_pk() {
        let mut c = catalog();
        let p = plan(&mut c, "SELECT * FROM stock s JOIN item i ON s.s_qty = i.i_id");
        // s_qty = i_id covers item's pk -> actually a lookup join; use a
        // non-pk pairing instead:
        let _ = p;
        let p = plan(&mut c, "SELECT * FROM item a JOIN item b ON a.i_name = b.i_name");
        match p {
            Plan::Query(node) => {
                fn find_hash(n: &PlanNode) -> bool {
                    match n {
                        PlanNode::HashJoin { .. } => true,
                        PlanNode::Filter { input, .. } | PlanNode::Project { input, .. } => {
                            find_hash(input)
                        }
                        _ => false,
                    }
                }
                assert!(find_hash(&node), "expected hash join: {node:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn aggregate_plan_maps_outputs() {
        let mut c = catalog();
        let p = plan(
            &mut c,
            "SELECT s_w_id, SUM(s_qty) AS total FROM stock GROUP BY s_w_id ORDER BY total DESC",
        );
        match p {
            Plan::Query(PlanNode::Sort { input, keys }) => {
                assert_eq!(keys, vec![(1, true)]);
                match *input {
                    PlanNode::Aggregate { output_map, scope, .. } => {
                        assert_eq!(output_map, vec![0, 1]);
                        assert_eq!(scope, vec!["s_w_id".to_string(), "total".to_string()]);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_fills_defaults_and_checks() {
        let mut c = catalog();
        let p = plan(&mut c, "INSERT INTO item (i_id, i_name) VALUES (1, 'x')");
        match p {
            Plan::Insert { rows, table } => {
                assert_eq!(rows[0].len(), 3);
                assert_eq!(rows[0][2], Expr::Literal(Datum::Null));
                // Constraint checks.
                assert!(check_row(&table, &[Datum::Int(1), Datum::Str("x".into()), Datum::Null])
                    .is_ok());
                assert!(check_row(&table, &[Datum::Int(1), Datum::Null, Datum::Null]).is_err());
                assert!(check_row(
                    &table,
                    &[Datum::Str("no".into()), Datum::Str("x".into()), Datum::Null]
                )
                .is_err());
                assert!(
                    check_row(&table, &[Datum::Int(1), Datum::Str("x".into()), Datum::Int(5)])
                        .is_ok(),
                    "int widens to float"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    fn install_index(c: &mut Catalog, sql: &str) {
        let parsed = parse(sql).unwrap();
        match plan_statement(c, &parsed).unwrap() {
            Plan::CreateIndex { table, .. } => c.install(table),
            other => panic!("{other:?}"),
        }
    }

    fn scan_of(p: Plan) -> (u64, ScanConstraint, Option<Expr>, Option<u64>) {
        match p {
            Plan::Query(PlanNode::Scan { index_id, constraint, filter, limit, .. }) => {
                (index_id, constraint, filter, limit)
            }
            other => panic!("expected bare scan: {other:?}"),
        }
    }

    #[test]
    fn range_only_secondary_index_chosen() {
        let mut c = catalog();
        install_index(&mut c, "CREATE INDEX price_idx ON item (i_price)");
        // A range predicate alone (no equality) must still admit the
        // secondary index: the span is bounded above, reading ~1/4 of
        // the index instead of the whole primary.
        let p = plan(&mut c, "SELECT * FROM item WHERE i_price < 100.0");
        let (index_id, constraint, filter, _) = scan_of(p);
        assert_ne!(index_id, PRIMARY_INDEX_ID, "range-only secondary seek");
        assert!(constraint.eq_prefix.is_empty());
        assert_eq!(constraint.upper.as_ref().map(|b| b.inclusive), Some(false));
        assert!(constraint.lower.is_none());
        assert!(filter.is_some(), "range conjunct stays in the residual");
    }

    #[test]
    fn literal_eq_conjunct_dropped_from_residual() {
        let mut c = catalog();
        install_index(&mut c, "CREATE INDEX name_idx ON item (i_name)");
        let p = plan(&mut c, "SELECT * FROM item WHERE i_name = 'widget'");
        let (index_id, constraint, filter, _) = scan_of(p);
        assert_ne!(index_id, PRIMARY_INDEX_ID);
        assert_eq!(constraint.eq_prefix.len(), 1);
        assert!(filter.is_none(), "span provably covers the literal equality");
    }

    #[test]
    fn param_eq_conjunct_kept_in_residual() {
        let mut c = catalog();
        install_index(&mut c, "CREATE INDEX name_idx ON item (i_name)");
        // A param may be NULL at execution: NULL encodes to a real key
        // byte, so the span would match stored NULLs. The residual
        // `i_name = NULL` evaluates to NULL (not true) and filters them.
        let p = plan(&mut c, "SELECT * FROM item WHERE i_name = $1");
        let (index_id, constraint, filter, _) = scan_of(p);
        assert_ne!(index_id, PRIMARY_INDEX_ID, "param still drives the span");
        assert_eq!(constraint.eq_prefix.len(), 1);
        assert!(filter.is_some(), "param equality stays in the residual");
    }

    #[test]
    fn null_literal_never_constrains_span() {
        let mut c = catalog();
        install_index(&mut c, "CREATE INDEX name_idx ON item (i_name)");
        // `= NULL` is never true; a span on the NULL key byte would
        // wrongly return stored NULLs, so no candidate may use it.
        let p = plan(&mut c, "SELECT * FROM item WHERE i_name = null");
        let (index_id, constraint, filter, _) = scan_of(p);
        assert_eq!(index_id, PRIMARY_INDEX_ID);
        assert!(constraint.eq_prefix.is_empty());
        assert!(filter.is_some());
    }

    #[test]
    fn int_literal_coerces_on_float_column() {
        let mut c = catalog();
        install_index(&mut c, "CREATE INDEX price_idx ON item (i_price)");
        // An INT literal against a FLOAT column must seek with the
        // FLOAT key encoding (the raw INT encoding misses every row).
        let p = plan(&mut c, "SELECT * FROM item WHERE i_price = 100");
        let (index_id, constraint, filter, _) = scan_of(p);
        assert_ne!(index_id, PRIMARY_INDEX_ID);
        assert_eq!(constraint.eq_prefix, vec![Expr::Literal(Datum::Float(100.0))]);
        assert!(filter.is_none(), "coerced literal is provably covered");
    }

    #[test]
    fn stats_override_default_index_choice() {
        let mut c = catalog();
        install_index(&mut c, "CREATE INDEX name_idx ON item (i_name)");
        let item_id = c.table("item").unwrap().id;
        let name_idx_id = c.table("item").unwrap().indexes[0].id;
        // Every row shares one i_name: the index seek reads the whole
        // table *plus* a PK lookup per row — worse than the full scan.
        let mut distinct = BTreeMap::new();
        distinct.insert(name_idx_id, vec![1]);
        c.install_stats(TableStatistics {
            table_id: item_id,
            row_count: 1000,
            avg_key_bytes: 16,
            avg_value_bytes: 32,
            distinct_prefixes: distinct,
            created_at_nanos: 0,
        });
        let p = plan(&mut c, "SELECT * FROM item WHERE i_name = 'widget'");
        let (index_id, _, filter, _) = scan_of(p);
        assert_eq!(index_id, PRIMARY_INDEX_ID, "stats demote the useless index");
        assert!(filter.is_some());
    }

    #[test]
    fn limit_pushdown_into_scan() {
        let mut c = catalog();
        let p = plan(&mut c, "SELECT * FROM item LIMIT 5");
        match p {
            Plan::Query(PlanNode::Limit { input, n: 5 }) => match *input {
                PlanNode::Scan { limit, filter, .. } => {
                    assert_eq!(limit, Some(5));
                    assert!(filter.is_none());
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        // A residual filter blocks pushdown (the scan may need to read
        // more than n rows to produce n matches).
        let p = plan(&mut c, "SELECT * FROM item WHERE i_price > 1.0 LIMIT 5");
        match p {
            Plan::Query(PlanNode::Limit { input, n: 5 }) => {
                fn scan_limit(n: &PlanNode) -> Option<u64> {
                    match n {
                        PlanNode::Scan { limit, .. } => *limit,
                        PlanNode::Project { input, .. }
                        | PlanNode::Filter { input, .. }
                        | PlanNode::Sort { input, .. } => scan_limit(input),
                        _ => None,
                    }
                }
                assert_eq!(scan_limit(&input), None, "filter blocks pushdown");
            }
            other => panic!("{other:?}"),
        }
        // A sort blocks pushdown too.
        let p = plan(&mut c, "SELECT i_id FROM item ORDER BY i_name LIMIT 2");
        match p {
            Plan::Query(PlanNode::Limit { input, .. }) => {
                assert!(
                    !matches!(*input, PlanNode::Scan { limit: Some(_), .. }),
                    "sort blocks pushdown"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn force_full_scan_ignores_indexes() {
        let mut c = catalog();
        install_index(&mut c, "CREATE INDEX name_idx ON item (i_name)");
        c.set_force_full_scan(true);
        let p = plan(&mut c, "SELECT * FROM item WHERE i_name = 'widget'");
        let (index_id, constraint, filter, _) = scan_of(p);
        assert_eq!(index_id, PRIMARY_INDEX_ID);
        assert!(constraint.eq_prefix.is_empty());
        assert!(constraint.lower.is_none() && constraint.upper.is_none());
        assert!(filter.is_some(), "whole predicate is residual");
    }

    #[test]
    fn explain_is_deterministic_and_costed() {
        let mut c = catalog();
        install_index(&mut c, "CREATE INDEX price_idx ON item (i_price)");
        let sql = "EXPLAIN SELECT i_id FROM item WHERE i_price < 100.0";
        let a = match plan(&mut c, sql) {
            Plan::Explain { lines } => lines,
            other => panic!("{other:?}"),
        };
        let b = match plan(&mut c, sql) {
            Plan::Explain { lines } => lines,
            other => panic!("{other:?}"),
        };
        assert_eq!(a, b, "byte-identical across plannings");
        let text = a.join("\n");
        assert!(text.contains("price_idx"), "{text}");
        assert!(text.contains("cost="), "{text}");
        assert!(text.contains("est_rows="), "{text}");
    }

    #[test]
    fn planning_errors() {
        let mut c = catalog();
        assert!(matches!(
            plan_statement(&mut c, &parse("SELECT * FROM missing").unwrap()),
            Err(SqlError::Plan(_))
        ));
        assert!(matches!(
            plan_statement(&mut c, &parse("SELECT nope FROM item").unwrap()),
            Err(SqlError::Plan(_))
        ));
        assert!(matches!(
            plan_statement(&mut c, &parse("SELECT i_price, COUNT(*) FROM item").unwrap()),
            Err(SqlError::Plan(_)),
        ));
    }
}
