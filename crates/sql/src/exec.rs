//! The query executor.
//!
//! Executes [`PlanNode`] trees against a [`Txn`] in continuation-passing
//! style (the KV layer is callback-driven under simulation). Scans fetch
//! via KV spans; secondary-index scans and lookup joins batch their
//! primary-key lookups into single KV batches — the access patterns whose
//! costs the estimated-CPU model is built on.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::rc::Rc;

use bytes::Bytes;

use crate::coord::{SqlError, Txn};
use crate::expr::Expr;
use crate::parser::AggFunc;
use crate::plan::{check_row, Plan, PlanNode, ScanConstraint};
use crate::rowcodec;
use crate::schema::{TableDescriptor, PRIMARY_INDEX_ID};
use crate::value::{Datum, Row};

/// Execution statistics, accumulated per statement for CPU accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Rows produced by scans and lookups.
    pub rows_read: u64,
    /// Bytes of keys+values fetched.
    pub bytes_read: u64,
    /// Rows written (insert/update/delete).
    pub rows_written: u64,
    /// Bytes of keys+values written.
    pub bytes_written: u64,
}

/// The result of executing a statement.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows (empty for DML).
    pub rows: Vec<Row>,
    /// Rows affected by DML.
    pub rows_affected: u64,
    /// Execution statistics.
    pub stats: ExecStats,
}

type RowsCb = Box<dyn FnOnce(Result<Vec<Row>, SqlError>)>;

/// A total order over datums for sorting and grouping: NULL first, then
/// bools, then numerics (cross-type), then strings.
pub fn datum_total_cmp(a: &Datum, b: &Datum) -> Ordering {
    fn rank(d: &Datum) -> u8 {
        match d {
            Datum::Null => 0,
            Datum::Bool(_) => 1,
            Datum::Int(_) | Datum::Float(_) => 2,
            Datum::Str(_) => 3,
        }
    }
    match (rank(a).cmp(&rank(b)), a, b) {
        (Ordering::Equal, Datum::Bool(x), Datum::Bool(y)) => x.cmp(y),
        (Ordering::Equal, Datum::Str(x), Datum::Str(y)) => x.cmp(y),
        (Ordering::Equal, Datum::Null, Datum::Null) => Ordering::Equal,
        (Ordering::Equal, x, y) => x.as_f64().partial_cmp(&y.as_f64()).unwrap_or(Ordering::Equal),
        (ord, _, _) => ord,
    }
}

/// Executes a plan, producing a [`QueryOutput`].
pub fn execute(
    txn: &Txn,
    plan: Plan,
    params: Vec<Datum>,
    cb: impl FnOnce(Result<QueryOutput, SqlError>) + 'static,
) {
    let stats = Rc::new(RefCell::new(ExecStats::default()));
    match plan {
        Plan::Query(node) => {
            let columns = node.scope();
            let st = Rc::clone(&stats);
            run_node(
                txn.clone(),
                Rc::new(params),
                node,
                st,
                Box::new(move |rows| match rows {
                    Ok(rows) => cb(Ok(QueryOutput {
                        columns,
                        rows_affected: 0,
                        rows,
                        stats: *stats.borrow(),
                    })),
                    Err(e) => cb(Err(e)),
                }),
            );
        }
        Plan::Insert { table, rows } => {
            execute_insert(txn.clone(), table, rows, params, stats, cb);
        }
        Plan::Update { scan, table, sets } => {
            execute_update(txn.clone(), *scan, table, sets, params, stats, cb);
        }
        Plan::Delete { scan, table } => {
            execute_delete(txn.clone(), *scan, table, params, stats, cb);
        }
        other => {
            cb(Err(SqlError::State(format!("plan {other:?} must be handled by the session layer"))))
        }
    }
}

fn eval_bound(e: &Expr, params: &[Datum]) -> Result<Datum, SqlError> {
    e.eval(&Vec::new(), params).map_err(SqlError::Eval)
}

/// The role a span datum plays, selecting the safe coercion direction.
#[derive(Clone, Copy)]
enum BoundKind {
    Eq,
    Lower,
    Upper,
}

/// Coerces an evaluated span datum to the key encoding of its column.
///
/// Key encodings are typed (an INT key byte never compares equal to a
/// FLOAT key byte), so a parameter of the "wrong" numeric type must be
/// re-typed or the span silently misses every row. Equality coerces
/// exactly where lossless; range bounds round toward the *superset*
/// (floor for lower, ceil for upper) — always safe because range
/// conjuncts stay in the residual filter.
fn coerce_span_datum(d: Datum, ct: crate::value::ColumnType, kind: BoundKind) -> Datum {
    use crate::value::ColumnType;
    match (ct, &d) {
        (ColumnType::Float, Datum::Int(i)) => Datum::Float(*i as f64),
        (ColumnType::Int, Datum::Float(f)) => match kind {
            // Lossless only: a fractional equality value keeps its FLOAT
            // encoding, yielding an empty span — correct, since no INT
            // row equals it.
            BoundKind::Eq if f.fract() == 0.0 && f.abs() < 9.0e18 => Datum::Int(*f as i64),
            BoundKind::Eq => d,
            BoundKind::Lower => Datum::Int(f.floor() as i64),
            BoundKind::Upper => Datum::Int(f.ceil() as i64),
        },
        _ => d,
    }
}

/// The column ordinals of an index, in index-key order.
fn index_ordinals(table: &TableDescriptor, index_id: u64) -> &[usize] {
    if index_id == PRIMARY_INDEX_ID {
        &table.primary_key
    } else {
        table.indexes.iter().find(|i| i.id == index_id).map(|i| i.columns.as_slice()).unwrap_or(&[])
    }
}

/// Computes the KV span for a scan constraint.
fn constraint_span(
    table: &TableDescriptor,
    index_id: u64,
    c: &ScanConstraint,
    params: &[Datum],
) -> Result<(Bytes, Bytes), SqlError> {
    let ordinals = index_ordinals(table, index_id);
    let col_type = |pos: usize| ordinals.get(pos).map(|&o| table.columns[o].ty);
    let mut eq_datums = Vec::with_capacity(c.eq_prefix.len());
    for (pos, e) in c.eq_prefix.iter().enumerate() {
        let d = eval_bound(e, params)?;
        eq_datums.push(match col_type(pos) {
            Some(ct) => coerce_span_datum(d, ct, BoundKind::Eq),
            None => d,
        });
    }
    let prefix = rowcodec::key_with_prefix(table, index_id, &eq_datums);
    let mut start = prefix.clone();
    let mut end = rowcodec::prefix_span_end(&prefix);
    let range_type = col_type(eq_datums.len());
    if let Some(lower) = &c.lower {
        let d = eval_bound(&lower.expr, params)?;
        let d = match range_type {
            Some(ct) => coerce_span_datum(d, ct, BoundKind::Lower),
            None => d,
        };
        let mut datums = eq_datums.clone();
        datums.push(d);
        let key = rowcodec::key_with_prefix(table, index_id, &datums);
        start = if lower.inclusive { key } else { rowcodec::prefix_span_end(&key) };
    }
    if let Some(upper) = &c.upper {
        let d = eval_bound(&upper.expr, params)?;
        let d = match range_type {
            Some(ct) => coerce_span_datum(d, ct, BoundKind::Upper),
            None => d,
        };
        let mut datums = eq_datums;
        datums.push(d);
        let key = rowcodec::key_with_prefix(table, index_id, &datums);
        end = if upper.inclusive { rowcodec::prefix_span_end(&key) } else { key };
    }
    Ok((start, end))
}

fn run_node(
    txn: Txn,
    params: Rc<Vec<Datum>>,
    node: PlanNode,
    stats: Rc<RefCell<ExecStats>>,
    cb: RowsCb,
) {
    match node {
        PlanNode::Values { rows, .. } => {
            let mut out = Vec::with_capacity(rows.len());
            for exprs in rows {
                let mut row = Vec::with_capacity(exprs.len());
                for e in exprs {
                    match e.eval(&Vec::new(), &params) {
                        Ok(d) => row.push(d),
                        Err(e) => {
                            cb(Err(SqlError::Eval(e)));
                            return;
                        }
                    }
                }
                out.push(row);
            }
            cb(Ok(out));
        }
        PlanNode::Scan { table, index_id, index_cols, constraint, filter, limit, .. } => {
            let span = match constraint_span(&table, index_id, &constraint, &params) {
                Ok(s) => s,
                Err(e) => {
                    cb(Err(e));
                    return;
                }
            };
            let st = Rc::clone(&stats);
            let params2 = Rc::clone(&params);
            let txn2 = txn.clone();
            fetch_span(
                txn,
                table,
                index_id,
                index_cols.len(),
                span,
                limit,
                st,
                Box::new(move |rows| {
                    let rows = match rows {
                        Ok(r) => r,
                        Err(e) => {
                            cb(Err(e));
                            return;
                        }
                    };
                    let _ = txn2;
                    match apply_filter(rows, &filter, &params2) {
                        Ok(rows) => cb(Ok(rows)),
                        Err(e) => cb(Err(e)),
                    }
                }),
            );
        }
        PlanNode::Filter { input, predicate } => {
            let params2 = Rc::clone(&params);
            run_node(
                txn,
                params,
                *input,
                stats,
                Box::new(move |rows| match rows {
                    Ok(rows) => match apply_filter(rows, &Some(predicate), &params2) {
                        Ok(rows) => cb(Ok(rows)),
                        Err(e) => cb(Err(e)),
                    },
                    Err(e) => cb(Err(e)),
                }),
            );
        }
        PlanNode::Project { input, exprs, .. } => {
            let params2 = Rc::clone(&params);
            run_node(
                txn,
                params,
                *input,
                stats,
                Box::new(move |rows| match rows {
                    Ok(rows) => {
                        let mut out = Vec::with_capacity(rows.len());
                        for row in rows {
                            let mut projected = Vec::with_capacity(exprs.len());
                            for e in &exprs {
                                match e.eval(&row, &params2) {
                                    Ok(d) => projected.push(d),
                                    Err(e) => {
                                        cb(Err(SqlError::Eval(e)));
                                        return;
                                    }
                                }
                            }
                            out.push(projected);
                        }
                        cb(Ok(out));
                    }
                    Err(e) => cb(Err(e)),
                }),
            );
        }
        PlanNode::LookupJoin { input, table, left_key_cols, residual, .. } => {
            let params2 = Rc::clone(&params);
            let txn2 = txn.clone();
            let st = Rc::clone(&stats);
            run_node(
                txn,
                params,
                *input,
                stats,
                Box::new(move |rows| {
                    let left_rows = match rows {
                        Ok(r) => r,
                        Err(e) => {
                            cb(Err(e));
                            return;
                        }
                    };
                    // Batched point-lookups of the right PK.
                    let keys: Vec<Bytes> = left_rows
                        .iter()
                        .map(|row| {
                            let pk: Vec<Datum> =
                                left_key_cols.iter().map(|&i| row[i].clone()).collect();
                            rowcodec::primary_key_from_datums(&table, &pk)
                        })
                        .collect();
                    let table2 = table.clone();
                    let params3 = Rc::clone(&params2);
                    let keys2 = keys.clone();
                    txn2.read_many(keys, move |values| {
                        let values = match values {
                            Ok(v) => v,
                            Err(e) => {
                                cb(Err(e));
                                return;
                            }
                        };
                        let mut joined = Vec::new();
                        for ((left, value), key) in left_rows.into_iter().zip(values).zip(keys2) {
                            let value = match value {
                                Some(v) => v,
                                None => continue, // inner join: no match
                            };
                            st.borrow_mut().rows_read += 1;
                            st.borrow_mut().bytes_read += (key.len() + value.len()) as u64;
                            let right = match rowcodec::decode_row(&table2, &key, &value) {
                                Some(r) => r,
                                None => continue,
                            };
                            let mut row = left;
                            row.extend(right);
                            joined.push(row);
                        }
                        match apply_filter(joined, &residual, &params3) {
                            Ok(rows) => cb(Ok(rows)),
                            Err(e) => cb(Err(e)),
                        }
                    });
                }),
            );
        }
        PlanNode::HashJoin { left, right, left_col, right_col, residual, .. } => {
            let params2 = Rc::clone(&params);
            let txn2 = txn.clone();
            let st = Rc::clone(&stats);
            run_node(
                txn,
                Rc::clone(&params),
                *left,
                Rc::clone(&stats),
                Box::new(move |lrows| {
                    let lrows = match lrows {
                        Ok(r) => r,
                        Err(e) => {
                            cb(Err(e));
                            return;
                        }
                    };
                    let params3 = Rc::clone(&params2);
                    run_node(
                        txn2,
                        params2,
                        *right,
                        st,
                        Box::new(move |rrows| {
                            let rrows = match rrows {
                                Ok(r) => r,
                                Err(e) => {
                                    cb(Err(e));
                                    return;
                                }
                            };
                            // Build side: sort right rows by key datum.
                            let mut joined = Vec::new();
                            for l in &lrows {
                                for r in &rrows {
                                    if l[left_col].sql_eq(&r[right_col]) {
                                        let mut row = l.clone();
                                        row.extend(r.iter().cloned());
                                        joined.push(row);
                                    }
                                }
                            }
                            match apply_filter(joined, &residual, &params3) {
                                Ok(rows) => cb(Ok(rows)),
                                Err(e) => cb(Err(e)),
                            }
                        }),
                    );
                }),
            );
        }
        PlanNode::Aggregate { input, group, aggs, output_map, .. } => {
            let params2 = Rc::clone(&params);
            run_node(
                txn,
                params,
                *input,
                stats,
                Box::new(move |rows| {
                    let rows = match rows {
                        Ok(r) => r,
                        Err(e) => {
                            cb(Err(e));
                            return;
                        }
                    };
                    match aggregate(rows, &group, &aggs, &output_map, &params2) {
                        Ok(out) => cb(Ok(out)),
                        Err(e) => cb(Err(e)),
                    }
                }),
            );
        }
        PlanNode::Sort { input, keys } => {
            run_node(
                txn,
                params,
                *input,
                stats,
                Box::new(move |rows| match rows {
                    Ok(mut rows) => {
                        rows.sort_by(|a, b| {
                            for &(idx, desc) in &keys {
                                let ord = datum_total_cmp(&a[idx], &b[idx]);
                                let ord = if desc { ord.reverse() } else { ord };
                                if ord != Ordering::Equal {
                                    return ord;
                                }
                            }
                            Ordering::Equal
                        });
                        cb(Ok(rows));
                    }
                    Err(e) => cb(Err(e)),
                }),
            );
        }
        PlanNode::Limit { input, n } => {
            run_node(
                txn,
                params,
                *input,
                stats,
                Box::new(move |rows| match rows {
                    Ok(mut rows) => {
                        rows.truncate(n as usize);
                        cb(Ok(rows));
                    }
                    Err(e) => cb(Err(e)),
                }),
            );
        }
    }
}

/// Fetches the rows of one index span, resolving secondary-index entries
/// to full rows via batched PK lookups.
///
/// `limit` is the planner-pushed LIMIT: when set, at most that many KV
/// pairs (or index entries) are fetched, so `LIMIT n` on an unfiltered
/// scan reads ≤ n rows instead of the whole span.
#[allow(clippy::too_many_arguments)]
fn fetch_span(
    txn: Txn,
    table: TableDescriptor,
    index_id: u64,
    n_indexed: usize,
    span: (Bytes, Bytes),
    limit: Option<u64>,
    stats: Rc<RefCell<ExecStats>>,
    cb: RowsCb,
) {
    let (start, end) = span;
    let max_pairs = limit.map_or(usize::MAX, |n| n as usize);
    if index_id == PRIMARY_INDEX_ID {
        txn.scan(start, end, max_pairs, move |pairs| {
            let pairs = match pairs {
                Ok(p) => p,
                Err(e) => {
                    cb(Err(e));
                    return;
                }
            };
            let mut rows = Vec::with_capacity(pairs.len());
            for (k, v) in pairs {
                stats.borrow_mut().rows_read += 1;
                stats.borrow_mut().bytes_read += (k.len() + v.len()) as u64;
                if let Some(row) = rowcodec::decode_row(&table, &k, &v) {
                    rows.push(row);
                }
            }
            cb(Ok(rows));
        });
        return;
    }
    // Secondary index: scan entries, then batched primary lookups.
    let txn2 = txn.clone();
    txn.scan(start, end, max_pairs, move |pairs| {
        let pairs = match pairs {
            Ok(p) => p,
            Err(e) => {
                cb(Err(e));
                return;
            }
        };
        let mut keys = Vec::with_capacity(pairs.len());
        for (k, _) in &pairs {
            if let Some(pk) = rowcodec::decode_index_entry(&table, index_id, n_indexed, k) {
                keys.push(rowcodec::primary_key_from_datums(&table, &pk));
            }
        }
        let keys2 = keys.clone();
        txn2.read_many(keys, move |values| {
            let values = match values {
                Ok(v) => v,
                Err(e) => {
                    cb(Err(e));
                    return;
                }
            };
            let mut rows = Vec::new();
            for (key, value) in keys2.into_iter().zip(values) {
                if let Some(v) = value {
                    stats.borrow_mut().rows_read += 1;
                    stats.borrow_mut().bytes_read += (key.len() + v.len()) as u64;
                    if let Some(row) = rowcodec::decode_row(&table, &key, &v) {
                        rows.push(row);
                    }
                }
            }
            cb(Ok(rows));
        });
    });
}

fn apply_filter(
    rows: Vec<Row>,
    filter: &Option<Expr>,
    params: &[Datum],
) -> Result<Vec<Row>, SqlError> {
    match filter {
        None => Ok(rows),
        Some(f) => {
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if f.eval(&row, params).map_err(SqlError::Eval)?.is_true() {
                    out.push(row);
                }
            }
            Ok(out)
        }
    }
}

struct AggState {
    count: u64,
    sum: f64,
    sum_int: i64,
    all_int: bool,
    min: Option<Datum>,
    max: Option<Datum>,
}

impl AggState {
    fn new() -> Self {
        AggState { count: 0, sum: 0.0, sum_int: 0, all_int: true, min: None, max: None }
    }

    fn fold(&mut self, d: &Datum) {
        if d.is_null() {
            return;
        }
        self.count += 1;
        if let Some(v) = d.as_f64() {
            self.sum += v;
        }
        match d {
            Datum::Int(i) => self.sum_int = self.sum_int.wrapping_add(*i),
            _ => self.all_int = false,
        }
        let better_min = self.min.as_ref().is_none_or(|m| datum_total_cmp(d, m).is_lt());
        if better_min {
            self.min = Some(d.clone());
        }
        let better_max = self.max.as_ref().is_none_or(|m| datum_total_cmp(d, m).is_gt());
        if better_max {
            self.max = Some(d.clone());
        }
    }

    fn result(&self, func: AggFunc) -> Datum {
        match func {
            AggFunc::Count => Datum::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Datum::Null
                } else if self.all_int {
                    Datum::Int(self.sum_int)
                } else {
                    Datum::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Datum::Null
                } else {
                    Datum::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Datum::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Datum::Null),
        }
    }
}

fn aggregate(
    rows: Vec<Row>,
    group: &[Expr],
    aggs: &[(AggFunc, Option<Expr>)],
    output_map: &[usize],
    params: &[Datum],
) -> Result<Vec<Row>, SqlError> {
    // Groups keyed by evaluated group datums, kept in sorted order.
    let mut groups: Vec<(Vec<Datum>, Vec<AggState>)> = Vec::new();
    for row in &rows {
        let mut key = Vec::with_capacity(group.len());
        for g in group {
            key.push(g.eval(row, params).map_err(SqlError::Eval)?);
        }
        let pos = groups.binary_search_by(|(k, _)| {
            for (a, b) in k.iter().zip(&key) {
                let ord = datum_total_cmp(a, b);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        let idx = match pos {
            Ok(i) => i,
            Err(i) => {
                groups.insert(i, (key, aggs.iter().map(|_| AggState::new()).collect()));
                i
            }
        };
        for ((func, arg), state) in aggs.iter().zip(groups[idx].1.iter_mut()) {
            match arg {
                None => {
                    debug_assert_eq!(*func, AggFunc::Count);
                    state.count += 1;
                }
                Some(e) => {
                    let v = e.eval(row, params).map_err(SqlError::Eval)?;
                    state.fold(&v);
                }
            }
        }
    }
    // Global aggregation over zero rows still yields one output row.
    if groups.is_empty() && group.is_empty() {
        groups.push((Vec::new(), aggs.iter().map(|_| AggState::new()).collect()));
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, states) in groups {
        let mut full: Row = key;
        for ((func, _), state) in aggs.iter().zip(&states) {
            full.push(state.result(*func));
        }
        let row: Row = output_map.iter().map(|&i| full[i].clone()).collect();
        out.push(row);
    }
    Ok(out)
}

fn execute_insert(
    txn: Txn,
    table: TableDescriptor,
    row_exprs: Vec<Vec<Expr>>,
    params: Vec<Datum>,
    stats: Rc<RefCell<ExecStats>>,
    cb: impl FnOnce(Result<QueryOutput, SqlError>) + 'static,
) {
    // Evaluate and validate all rows first.
    let mut rows = Vec::with_capacity(row_exprs.len());
    for exprs in &row_exprs {
        let mut row = Vec::with_capacity(exprs.len());
        for e in exprs {
            match e.eval(&Vec::new(), &params) {
                Ok(d) => row.push(d),
                Err(e) => {
                    cb(Err(SqlError::Eval(e)));
                    return;
                }
            }
        }
        // Int literals going into float columns widen.
        for (i, col) in table.columns.iter().enumerate() {
            if col.ty == crate::value::ColumnType::Float {
                if let Datum::Int(v) = row[i] {
                    row[i] = Datum::Float(v as f64);
                }
            }
        }
        if let Err(e) = check_row(&table, &row) {
            cb(Err(e));
            return;
        }
        rows.push(row);
    }
    // Uniqueness check on primary keys.
    let pk_keys: Vec<Bytes> = rows.iter().map(|r| rowcodec::primary_key(&table, r)).collect();
    let table2 = table.clone();
    txn.clone().read_many(pk_keys.clone(), move |existing| {
        let existing = match existing {
            Ok(v) => v,
            Err(e) => {
                cb(Err(e));
                return;
            }
        };
        if existing.iter().any(|v| v.is_some()) {
            cb(Err(SqlError::Constraint("duplicate primary key".into())));
            return;
        }
        let n = rows.len() as u64;
        for (row, key) in rows.iter().zip(&pk_keys) {
            let value = rowcodec::encode_row_value(&table2, row);
            stats.borrow_mut().rows_written += 1;
            stats.borrow_mut().bytes_written += (key.len() + value.len()) as u64;
            txn.put(key.clone(), value);
            for idx in &table2.indexes {
                let ikey = rowcodec::index_entry_key(&table2, idx.id, &idx.columns, row);
                stats.borrow_mut().bytes_written += ikey.len() as u64;
                txn.put(ikey, Bytes::new());
            }
        }
        cb(Ok(QueryOutput {
            columns: Vec::new(),
            rows: Vec::new(),
            rows_affected: n,
            stats: *stats.borrow(),
        }));
    });
}

fn execute_update(
    txn: Txn,
    scan: PlanNode,
    table: TableDescriptor,
    sets: Vec<(usize, Expr)>,
    params: Vec<Datum>,
    stats: Rc<RefCell<ExecStats>>,
    cb: impl FnOnce(Result<QueryOutput, SqlError>) + 'static,
) {
    let params = Rc::new(params);
    let params2 = Rc::clone(&params);
    let txn2 = txn.clone();
    let st = Rc::clone(&stats);
    run_node(
        txn,
        Rc::clone(&params),
        scan,
        Rc::clone(&stats),
        Box::new(move |rows| {
            let rows = match rows {
                Ok(r) => r,
                Err(e) => {
                    cb(Err(e));
                    return;
                }
            };
            // Phase 1: evaluate and validate every row before touching the
            // write buffer, so an error mid-statement leaves nothing behind.
            let mut updates: Vec<(Row, Row)> = Vec::with_capacity(rows.len());
            for old in rows {
                let mut new = old.clone();
                for (col, e) in &sets {
                    match e.eval(&old, &params2) {
                        Ok(mut d) => {
                            if table.columns[*col].ty == crate::value::ColumnType::Float {
                                if let Datum::Int(v) = d {
                                    d = Datum::Float(v as f64);
                                }
                            }
                            new[*col] = d;
                        }
                        Err(e) => {
                            cb(Err(SqlError::Eval(e)));
                            return;
                        }
                    }
                }
                if let Err(e) = check_row(&table, &new) {
                    cb(Err(e));
                    return;
                }
                updates.push((old, new));
            }
            // Phase 2: delete all vacated keys, THEN write all new rows.
            // Interleaving delete+put per row is wrong when the UPDATE
            // changes the primary key: `SET pk = pk + 1` over pks 1..n
            // would clobber row k+1's freshly-written value with row k's
            // delete-then-put sequence.
            for (old, new) in &updates {
                let old_key = rowcodec::primary_key(&table, old);
                let new_key = rowcodec::primary_key(&table, new);
                if old_key != new_key {
                    txn2.delete(old_key);
                }
                for idx in &table.indexes {
                    let old_entry = rowcodec::index_entry_key(&table, idx.id, &idx.columns, old);
                    let new_entry = rowcodec::index_entry_key(&table, idx.id, &idx.columns, new);
                    if old_entry != new_entry {
                        txn2.delete(old_entry);
                    }
                }
            }
            let mut affected = 0u64;
            for (old, new) in &updates {
                let new_key = rowcodec::primary_key(&table, new);
                let value = rowcodec::encode_row_value(&table, new);
                st.borrow_mut().rows_written += 1;
                st.borrow_mut().bytes_written += (new_key.len() + value.len()) as u64;
                txn2.put(new_key, value);
                for idx in &table.indexes {
                    let old_entry = rowcodec::index_entry_key(&table, idx.id, &idx.columns, old);
                    let new_entry = rowcodec::index_entry_key(&table, idx.id, &idx.columns, new);
                    if old_entry != new_entry {
                        txn2.put(new_entry, Bytes::new());
                    }
                }
                affected += 1;
            }
            cb(Ok(QueryOutput {
                columns: Vec::new(),
                rows: Vec::new(),
                rows_affected: affected,
                stats: *st.borrow(),
            }));
        }),
    );
}

fn execute_delete(
    txn: Txn,
    scan: PlanNode,
    table: TableDescriptor,
    params: Vec<Datum>,
    stats: Rc<RefCell<ExecStats>>,
    cb: impl FnOnce(Result<QueryOutput, SqlError>) + 'static,
) {
    let txn2 = txn.clone();
    let st = Rc::clone(&stats);
    run_node(
        txn,
        Rc::new(params),
        scan,
        Rc::clone(&stats),
        Box::new(move |rows| {
            let rows = match rows {
                Ok(r) => r,
                Err(e) => {
                    cb(Err(e));
                    return;
                }
            };
            let mut affected = 0u64;
            for row in rows {
                let key = rowcodec::primary_key(&table, &row);
                st.borrow_mut().rows_written += 1;
                st.borrow_mut().bytes_written += key.len() as u64;
                txn2.delete(key);
                for idx in &table.indexes {
                    txn2.delete(rowcodec::index_entry_key(&table, idx.id, &idx.columns, &row));
                }
                affected += 1;
            }
            cb(Ok(QueryOutput {
                columns: Vec::new(),
                rows: Vec::new(),
                rows_affected: affected,
                stats: *st.borrow(),
            }));
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_over_datums() {
        let mut v = vec![
            Datum::Str("b".into()),
            Datum::Int(5),
            Datum::Null,
            Datum::Float(2.5),
            Datum::Bool(true),
            Datum::Str("a".into()),
        ];
        v.sort_by(datum_total_cmp);
        assert_eq!(
            v,
            vec![
                Datum::Null,
                Datum::Bool(true),
                Datum::Float(2.5),
                Datum::Int(5),
                Datum::Str("a".into()),
                Datum::Str("b".into()),
            ]
        );
    }

    #[test]
    fn agg_state_results() {
        let mut s = AggState::new();
        for i in [1i64, 2, 3] {
            s.fold(&Datum::Int(i));
        }
        assert_eq!(s.result(AggFunc::Count), Datum::Int(3));
        assert_eq!(s.result(AggFunc::Sum), Datum::Int(6));
        assert_eq!(s.result(AggFunc::Avg), Datum::Float(2.0));
        assert_eq!(s.result(AggFunc::Min), Datum::Int(1));
        assert_eq!(s.result(AggFunc::Max), Datum::Int(3));
        // Nulls ignored; empty aggregates.
        let empty = AggState::new();
        assert_eq!(empty.result(AggFunc::Sum), Datum::Null);
        assert_eq!(empty.result(AggFunc::Count), Datum::Int(0));
        let mut mixed = AggState::new();
        mixed.fold(&Datum::Int(1));
        mixed.fold(&Datum::Float(0.5));
        assert_eq!(mixed.result(AggFunc::Sum), Datum::Float(1.5));
    }

    #[test]
    fn aggregate_groups_rows() {
        let rows = vec![
            vec![Datum::Int(1), Datum::Int(10)],
            vec![Datum::Int(2), Datum::Int(20)],
            vec![Datum::Int(1), Datum::Int(5)],
        ];
        let group = vec![Expr::Column(0)];
        let aggs = vec![(AggFunc::Sum, Some(Expr::Column(1)))];
        let out = aggregate(rows, &group, &aggs, &[0, 1], &[]).unwrap();
        assert_eq!(
            out,
            vec![vec![Datum::Int(1), Datum::Int(15)], vec![Datum::Int(2), Datum::Int(20)],]
        );
    }

    #[test]
    fn global_aggregate_over_no_rows() {
        let out = aggregate(vec![], &[], &[(AggFunc::Count, None)], &[0], &[]).unwrap();
        assert_eq!(out, vec![vec![Datum::Int(0)]]);
    }
}
