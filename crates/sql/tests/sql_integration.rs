//! End-to-end SQL tests: statements run through parse → plan → execute →
//! transaction coordinator → KV batches → MVCC on a real multi-node KV
//! cluster under simulation.

use std::cell::RefCell;
use std::rc::Rc;

use crdb_kv::client::KvClient;
use crdb_kv::cluster::{KvCluster, KvClusterConfig};
use crdb_sim::{Location, Sim, Topology};
use crdb_sql::coord::SqlError;
use crdb_sql::exec::QueryOutput;
use crdb_sql::node::{NodeState, SqlNode, SqlNodeConfig};
use crdb_sql::system_db::SystemDatabase;
use crdb_sql::value::Datum;
use crdb_util::time::dur;
use crdb_util::{RegionId, SqlInstanceId, TenantId};

struct Fixture {
    sim: Sim,
    node: Rc<SqlNode>,
    session: u64,
}

fn setup(seed: u64) -> Fixture {
    let sim = Sim::new(seed);
    let cluster =
        KvCluster::new(&sim, Topology::single_region("us-east1", 3), KvClusterConfig::default());
    let cert = cluster.create_tenant(TenantId(2));
    let client = KvClient::new(cluster.clone(), cert, Location::new(RegionId(0), 0));
    let node = SqlNode::new(&sim, SqlInstanceId(1), client, SqlNodeConfig::default());
    let system_db = SystemDatabase::optimized(RegionId(0), vec![RegionId(0)]);
    let ready = Rc::new(RefCell::new(false));
    {
        let r = Rc::clone(&ready);
        node.start(&system_db, move || *r.borrow_mut() = true);
    }
    sim.run_for(dur::secs(5));
    assert!(*ready.borrow(), "node became ready");
    assert_eq!(node.state(), NodeState::Ready);
    let session = node.open_session("test_user").unwrap();
    Fixture { sim, node, session }
}

/// Runs one statement to completion, panicking on error.
fn exec(f: &Fixture, sql: &str) -> QueryOutput {
    try_exec(f, sql).unwrap_or_else(|e| panic!("{sql}: {e}"))
}

fn try_exec(f: &Fixture, sql: &str) -> Result<QueryOutput, SqlError> {
    exec_params(f, sql, vec![])
}

fn exec_params(f: &Fixture, sql: &str, params: Vec<Datum>) -> Result<QueryOutput, SqlError> {
    let out = Rc::new(RefCell::new(None));
    let o = Rc::clone(&out);
    f.node.execute(f.session, sql, params, move |r| *o.borrow_mut() = Some(r));
    f.sim.run_for(dur::secs(60));
    let r = out.borrow_mut().take();
    r.unwrap_or_else(|| panic!("{sql}: did not complete"))
}

#[test]
fn ddl_insert_select_roundtrip() {
    let f = setup(1);
    exec(&f, "CREATE TABLE users (id INT PRIMARY KEY, name STRING NOT NULL, score FLOAT)");
    exec(&f, "INSERT INTO users (id, name, score) VALUES (1, 'ada', 99.5), (2, 'bob', 50.0)");
    let out = exec(&f, "SELECT id, name, score FROM users WHERE id = 1");
    assert_eq!(out.rows.len(), 1);
    assert_eq!(out.rows[0][0], Datum::Int(1));
    assert_eq!(out.rows[0][1], Datum::Str("ada".into()));
    assert_eq!(out.rows[0][2], Datum::Float(99.5));
    let out = exec(&f, "SELECT * FROM users ORDER BY id DESC");
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.rows[0][0], Datum::Int(2));
}

#[test]
fn update_delete_and_rescan() {
    let f = setup(2);
    exec(&f, "CREATE TABLE kv (k INT PRIMARY KEY, v INT)");
    exec(&f, "INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30)");
    let out = exec(&f, "UPDATE kv SET v = v + 1 WHERE k >= 2");
    assert_eq!(out.rows_affected, 2);
    let out = exec(&f, "DELETE FROM kv WHERE k = 1");
    assert_eq!(out.rows_affected, 1);
    let out = exec(&f, "SELECT k, v FROM kv ORDER BY k");
    assert_eq!(
        out.rows,
        vec![vec![Datum::Int(2), Datum::Int(21)], vec![Datum::Int(3), Datum::Int(31)],]
    );
}

#[test]
fn aggregates_group_order_limit() {
    let f = setup(3);
    exec(&f, "CREATE TABLE sales (id INT PRIMARY KEY, region STRING, amount INT)");
    exec(
        &f,
        "INSERT INTO sales VALUES (1,'east',10),(2,'west',20),(3,'east',5),(4,'west',7),(5,'north',1)",
    );
    let out = exec(
        &f,
        "SELECT region, SUM(amount) AS total, COUNT(*) AS n FROM sales GROUP BY region \
         ORDER BY total DESC LIMIT 2",
    );
    assert_eq!(out.columns, vec!["region", "total", "n"]);
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.rows[0], vec![Datum::Str("west".into()), Datum::Int(27), Datum::Int(2)]);
    assert_eq!(out.rows[1], vec![Datum::Str("east".into()), Datum::Int(15), Datum::Int(2)]);
    // Global aggregate.
    let out = exec(&f, "SELECT COUNT(*), AVG(amount) FROM sales");
    assert_eq!(out.rows[0][0], Datum::Int(5));
    assert_eq!(out.rows[0][1], Datum::Float(8.6));
}

#[test]
fn secondary_index_scan_and_backfill() {
    let f = setup(4);
    exec(&f, "CREATE TABLE items (id INT PRIMARY KEY, category STRING, price FLOAT)");
    exec(
        &f,
        "INSERT INTO items VALUES (1,'tool',9.5),(2,'toy',3.0),(3,'tool',12.0),(4,'food',1.0)",
    );
    // Backfill over existing rows.
    let out = exec(&f, "CREATE INDEX cat_idx ON items (category)");
    assert_eq!(out.rows_affected, 4, "backfilled entries");
    let out = exec(&f, "SELECT id FROM items WHERE category = 'tool' ORDER BY id");
    assert_eq!(out.rows, vec![vec![Datum::Int(1)], vec![Datum::Int(3)]]);
    // New inserts maintain the index.
    exec(&f, "INSERT INTO items VALUES (5, 'tool', 2.0)");
    let out = exec(&f, "SELECT COUNT(*) FROM items WHERE category = 'tool'");
    assert_eq!(out.rows[0][0], Datum::Int(3));
}

#[test]
fn lookup_join() {
    let f = setup(5);
    exec(&f, "CREATE TABLE customers (c_id INT PRIMARY KEY, c_name STRING)");
    exec(&f, "CREATE TABLE orders (o_id INT PRIMARY KEY, o_c_id INT, o_total INT)");
    exec(&f, "INSERT INTO customers VALUES (1,'ada'),(2,'bob')");
    exec(&f, "INSERT INTO orders VALUES (10,1,100),(11,2,250),(12,1,50)");
    let out = exec(
        &f,
        "SELECT o.o_id, c.c_name FROM orders o JOIN customers c ON o.o_c_id = c.c_id \
         ORDER BY o_id",
    );
    assert_eq!(out.rows.len(), 3);
    assert_eq!(out.rows[0], vec![Datum::Int(10), Datum::Str("ada".into())]);
    assert_eq!(out.rows[1], vec![Datum::Int(11), Datum::Str("bob".into())]);
}

#[test]
fn explicit_transaction_commit_and_rollback() {
    let f = setup(6);
    exec(&f, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)");
    exec(&f, "INSERT INTO acct VALUES (1, 100), (2, 0)");

    // Committed transfer.
    exec(&f, "BEGIN");
    exec(&f, "UPDATE acct SET bal = bal - 40 WHERE id = 1");
    exec(&f, "UPDATE acct SET bal = bal + 40 WHERE id = 2");
    // Read-your-writes inside the txn.
    let out = exec(&f, "SELECT bal FROM acct WHERE id = 2");
    assert_eq!(out.rows[0][0], Datum::Int(40));
    exec(&f, "COMMIT");
    let out = exec(&f, "SELECT bal FROM acct ORDER BY id");
    assert_eq!(out.rows, vec![vec![Datum::Int(60)], vec![Datum::Int(40)]]);

    // Rolled-back changes vanish.
    exec(&f, "BEGIN");
    exec(&f, "DELETE FROM acct WHERE id = 1");
    exec(&f, "ROLLBACK");
    let out = exec(&f, "SELECT COUNT(*) FROM acct");
    assert_eq!(out.rows[0][0], Datum::Int(2));
}

#[test]
fn constraint_violations() {
    let f = setup(7);
    exec(&f, "CREATE TABLE t (id INT PRIMARY KEY, name STRING NOT NULL)");
    exec(&f, "INSERT INTO t VALUES (1, 'x')");
    let err = try_exec(&f, "INSERT INTO t VALUES (1, 'dup')").unwrap_err();
    assert!(matches!(err, SqlError::Constraint(_)), "{err}");
    let err = try_exec(&f, "INSERT INTO t (id) VALUES (2)").unwrap_err();
    assert!(matches!(err, SqlError::Constraint(_)), "{err}");
    let err = try_exec(&f, "SELECT * FROM missing").unwrap_err();
    assert!(matches!(err, SqlError::Plan(_)), "{err}");
}

#[test]
fn prepared_statements_with_params() {
    let f = setup(8);
    exec(&f, "CREATE TABLE t (id INT PRIMARY KEY, v STRING)");
    f.node.prepare(f.session, "ins", "INSERT INTO t VALUES ($1, $2)").unwrap();
    f.node.prepare(f.session, "get", "SELECT v FROM t WHERE id = $1").unwrap();
    let out = Rc::new(RefCell::new(None));
    {
        let o = Rc::clone(&out);
        f.node.execute_prepared(
            f.session,
            "ins",
            vec![Datum::Int(7), Datum::Str("seven".into())],
            move |r| *o.borrow_mut() = Some(r),
        );
    }
    f.sim.run_for(dur::secs(10));
    assert!(out.borrow_mut().take().unwrap().is_ok());
    {
        let o = Rc::clone(&out);
        f.node.execute_prepared(f.session, "get", vec![Datum::Int(7)], move |r| {
            *o.borrow_mut() = Some(r)
        });
    }
    f.sim.run_for(dur::secs(10));
    let got = out.borrow_mut().take().unwrap().unwrap();
    assert_eq!(got.rows[0][0], Datum::Str("seven".into()));
}

#[test]
fn session_migration_between_nodes() {
    let f = setup(9);
    exec(&f, "CREATE TABLE t (id INT PRIMARY KEY)");
    f.node.set_session_var(f.session, "application_name", "migrator").unwrap();
    f.node.prepare(f.session, "q", "SELECT COUNT(*) FROM t").unwrap();

    // Serialize on the old node, restore on a brand-new one.
    let snapshot = f.node.serialize_session(f.session).unwrap();
    let encoded = snapshot.encode();
    let decoded = crdb_sql::session::SessionSnapshot::decode(&encoded).unwrap();

    let cluster = f.node.kv_client().cluster().clone();
    let cert = cluster.create_tenant(TenantId(2)); // re-issue cert for same tenant
    let client = KvClient::new(cluster, cert, Location::new(RegionId(0), 0));
    let node2 = SqlNode::new(&f.sim, SqlInstanceId(2), client, SqlNodeConfig::default());
    let system_db = SystemDatabase::optimized(RegionId(0), vec![RegionId(0)]);
    let ready = Rc::new(RefCell::new(false));
    {
        let r = Rc::clone(&ready);
        node2.start(&system_db, move || *r.borrow_mut() = true);
    }
    f.sim.run_for(dur::secs(5));
    assert!(*ready.borrow());

    let new_session = node2.restore_session(&decoded).unwrap();
    // The restored session keeps settings and prepared statements.
    let out = Rc::new(RefCell::new(None));
    {
        let o = Rc::clone(&out);
        node2.execute_prepared(new_session, "q", vec![], move |r| *o.borrow_mut() = Some(r));
    }
    f.sim.run_for(dur::secs(10));
    let got = out.borrow_mut().take().unwrap().unwrap();
    assert_eq!(got.rows[0][0], Datum::Int(0));
}

#[test]
fn cold_start_is_subsecond_single_region() {
    let f = setup(10);
    let cold = f.node.cold_start.get().expect("recorded");
    assert!(cold < dur::secs(1), "single-region cold start sub-second: {cold:?}");
    assert!(cold > dur::ms(10), "cold start does real work: {cold:?}");
}

#[test]
fn catalog_survives_node_restart() {
    let f = setup(11);
    exec(&f, "CREATE TABLE persistent (id INT PRIMARY KEY, v INT)");
    exec(&f, "INSERT INTO persistent VALUES (1, 42)");

    // A second node for the same tenant loads the descriptor from KV.
    let cluster = f.node.kv_client().cluster().clone();
    let cert = cluster.create_tenant(TenantId(2));
    let client = KvClient::new(cluster, cert, Location::new(RegionId(0), 0));
    let node2 = SqlNode::new(&f.sim, SqlInstanceId(2), client, SqlNodeConfig::default());
    let system_db = SystemDatabase::optimized(RegionId(0), vec![RegionId(0)]);
    node2.start(&system_db, || {});
    f.sim.run_for(dur::secs(5));
    assert_eq!(node2.state(), NodeState::Ready);
    let session2 = node2.open_session("u").unwrap();

    let out = Rc::new(RefCell::new(None));
    {
        let o = Rc::clone(&out);
        node2.execute(session2, "SELECT v FROM persistent WHERE id = 1", vec![], move |r| {
            *o.borrow_mut() = Some(r)
        });
    }
    f.sim.run_for(dur::secs(10));
    let got = out.borrow_mut().take().unwrap().unwrap();
    assert_eq!(got.rows[0][0], Datum::Int(42));
}

#[test]
fn sql_cpu_charged_per_statement() {
    let f = setup(12);
    exec(&f, "CREATE TABLE t (id INT PRIMARY KEY, pad STRING)");
    let before = f.node.sql_cpu_seconds();
    for i in 0..20 {
        exec_params(&f, "INSERT INTO t VALUES ($1, 'some-padding-data')", vec![Datum::Int(i)])
            .unwrap();
    }
    exec(&f, "SELECT * FROM t");
    let after = f.node.sql_cpu_seconds();
    assert!(after > before, "SQL CPU consumed: {before} -> {after}");
}
