// NOTE: with the vendored offline proptest stand-in, `proptest!` blocks
// compile away, leaving strategies/helpers unreferenced.
#![allow(dead_code, unused_imports)]

//! Property tests for the SQL layer's codecs and parser.

use bytes::Bytes;
use crdb_sql::rowcodec;
use crdb_sql::schema::{Column, TableDescriptor};
use crdb_sql::value::{ColumnType, Datum};
use proptest::prelude::*;

fn datum_strategy(ty: ColumnType, nullable: bool) -> BoxedStrategy<Datum> {
    let base: BoxedStrategy<Datum> = match ty {
        ColumnType::Int => any::<i64>().prop_map(Datum::Int).boxed(),
        ColumnType::Float => (-1e12f64..1e12).prop_map(Datum::Float).boxed(),
        ColumnType::String => "[a-zA-Z0-9 _-]{0,24}".prop_map(Datum::Str).boxed(),
        ColumnType::Bool => any::<bool>().prop_map(Datum::Bool).boxed(),
    };
    if nullable {
        prop_oneof![9 => base, 1 => Just(Datum::Null)].boxed()
    } else {
        base
    }
}

fn table() -> TableDescriptor {
    TableDescriptor {
        id: 7,
        name: "t".into(),
        columns: vec![
            Column { name: "a".into(), ty: ColumnType::Int, nullable: false },
            Column { name: "b".into(), ty: ColumnType::String, nullable: false },
            Column { name: "c".into(), ty: ColumnType::Float, nullable: true },
            Column { name: "d".into(), ty: ColumnType::Bool, nullable: true },
        ],
        primary_key: vec![0, 1],
        indexes: vec![],
    }
}

fn row_strategy() -> impl Strategy<Value = Vec<Datum>> {
    (
        datum_strategy(ColumnType::Int, false),
        datum_strategy(ColumnType::String, false),
        datum_strategy(ColumnType::Float, true),
        datum_strategy(ColumnType::Bool, true),
    )
        .prop_map(|(a, b, c, d)| vec![a, b, c, d])
}

proptest! {
    /// Any well-typed row roundtrips exactly through the KV encoding.
    #[test]
    fn row_roundtrips(row in row_strategy()) {
        let t = table();
        let key = rowcodec::primary_key(&t, &row);
        let value = rowcodec::encode_row_value(&t, &row);
        let decoded = rowcodec::decode_row(&t, &key, &value).expect("decodes");
        // Datum equality is SQL equality (NULL-aware); compare piecewise.
        prop_assert_eq!(decoded.len(), row.len());
        for (d, r) in decoded.iter().zip(&row) {
            match (d, r) {
                (Datum::Null, Datum::Null) => {}
                (Datum::Float(x), Datum::Float(y)) => prop_assert!(x == y),
                (a, b) => prop_assert!(a.sql_eq(b), "{a:?} != {b:?}"),
            }
        }
    }

    /// Key encoding preserves the order of the primary key tuple.
    #[test]
    fn pk_encoding_preserves_tuple_order(
        a1 in any::<i64>(), b1 in "[a-z]{0,12}",
        a2 in any::<i64>(), b2 in "[a-z]{0,12}",
    ) {
        let t = table();
        let r1 = vec![Datum::Int(a1), Datum::Str(b1.clone()), Datum::Null, Datum::Null];
        let r2 = vec![Datum::Int(a2), Datum::Str(b2.clone()), Datum::Null, Datum::Null];
        let k1 = rowcodec::primary_key(&t, &r1);
        let k2 = rowcodec::primary_key(&t, &r2);
        let tuple_order = (a1, b1).cmp(&(a2, b2));
        prop_assert_eq!(k1.cmp(&k2), tuple_order);
    }

    /// The parser never panics on arbitrary printable input.
    #[test]
    fn parser_never_panics(input in "[ -~]{0,120}") {
        let _ = crdb_sql::parser::parse(&input);
    }

    /// The lexer never panics and either errors or produces tokens whose
    /// re-rendering lexes again.
    #[test]
    fn lexer_total(input in "[ -~]{0,120}") {
        if let Ok(tokens) = crdb_sql::lexer::tokenize(&input) {
            let rendered: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
            let rejoined = rendered.join(" ");
            prop_assert!(crdb_sql::lexer::tokenize(&rejoined).is_ok());
        }
    }

    /// Index entry keys always decode back to their primary key.
    #[test]
    fn index_entries_roundtrip(row in row_strategy()) {
        let mut t = table();
        t.indexes.push(crdb_sql::schema::IndexDescriptor {
            id: 2,
            name: "idx".into(),
            columns: vec![2, 3],
        });
        let key = rowcodec::index_entry_key(&t, 2, &[2, 3], &row);
        let pk = rowcodec::decode_index_entry(&t, 2, 2, &key).expect("decodes");
        prop_assert!(pk[0].sql_eq(&row[0]) || matches!((&pk[0], &row[0]), (Datum::Null, Datum::Null)));
        match (&pk[1], &row[1]) {
            (Datum::Str(a), Datum::Str(b)) => prop_assert_eq!(a, b),
            other => prop_assert!(false, "{other:?}"),
        }
    }

    /// Session snapshots roundtrip through the wire format for arbitrary
    /// settings and prepared statements.
    #[test]
    fn session_snapshot_roundtrips(
        user in "[a-z]{1,12}",
        settings in prop::collection::btree_map("[a-z_]{1,10}", "[ -~]{0,20}", 0..6),
        prepared in prop::collection::btree_map("[a-z_]{1,10}", "[ -~]{0,40}", 0..4),
        secret in any::<u64>(),
        at in any::<u64>(),
    ) {
        use crdb_sql::session::{Session, SessionSnapshot};
        let mut s = Session::new(1, user);
        s.settings = settings;
        s.prepared = prepared;
        let snap = SessionSnapshot::capture(&s, 9, at, secret).expect("idle");
        let decoded = SessionSnapshot::decode(&snap.encode()).expect("decodes");
        prop_assert_eq!(&decoded, &snap);
        let restored = decoded.restore(2, 9, secret).expect("verifies");
        prop_assert_eq!(restored.settings, s.settings);
        prop_assert_eq!(restored.prepared, s.prepared);
        // Wrong secret always fails.
        prop_assert!(snap.restore(3, 9, secret ^ 1).is_err());
    }
}

/// Spans built from prefixes contain exactly the rows sharing the prefix.
#[test]
fn prefix_spans_are_tight() {
    let t = table();
    let start = rowcodec::key_with_prefix(&t, 1, &[Datum::Int(5)]);
    let end = rowcodec::prefix_span_end(&start);
    for (a, b, inside) in [(5i64, "", true), (5, "zzz", true), (4, "zzz", false), (6, "", false)] {
        let row = vec![Datum::Int(a), Datum::Str(b.into()), Datum::Null, Datum::Null];
        let key = rowcodec::primary_key(&t, &row);
        let contained = key >= start && key < end;
        assert_eq!(contained, inside, "a={a} b={b:?}");
    }
    let _ = Bytes::new();
}
