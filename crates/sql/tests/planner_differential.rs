// NOTE: with the vendored offline proptest stand-in, `proptest!` blocks
// compile away, leaving strategies/helpers unreferenced. The seeded
// `SmallRng` tests below run the same differential check for real.
#![allow(dead_code, unused_imports)]

//! Differential tests for the cost-based planner: every query executed
//! via the chosen plan (index seeks, range seeks, residual pruning, LIMIT
//! pushdown) must return exactly the rows a forced full-table scan
//! returns. Also pins the NULL-predicate semantics the span extractor
//! must preserve, the UPDATE-changes-PK write path, and the
//! ANALYZE-then-DDL statistics-staleness case.

use std::cell::RefCell;
use std::rc::Rc;

use crdb_kv::client::KvClient;
use crdb_kv::cluster::{KvCluster, KvClusterConfig};
use crdb_sim::{Location, Sim, Topology};
use crdb_sql::coord::SqlError;
use crdb_sql::exec::QueryOutput;
use crdb_sql::node::{NodeState, SqlNode, SqlNodeConfig};
use crdb_sql::system_db::SystemDatabase;
use crdb_sql::value::Datum;
use crdb_util::time::dur;
use crdb_util::{RegionId, SqlInstanceId, TenantId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Fixture {
    sim: Sim,
    node: Rc<SqlNode>,
    session: u64,
}

fn setup(seed: u64) -> Fixture {
    let sim = Sim::new(seed);
    let cluster =
        KvCluster::new(&sim, Topology::single_region("us-east1", 3), KvClusterConfig::default());
    let cert = cluster.create_tenant(TenantId(2));
    let client = KvClient::new(cluster.clone(), cert, Location::new(RegionId(0), 0));
    let node = SqlNode::new(&sim, SqlInstanceId(1), client, SqlNodeConfig::default());
    let system_db = SystemDatabase::optimized(RegionId(0), vec![RegionId(0)]);
    let ready = Rc::new(RefCell::new(false));
    {
        let r = Rc::clone(&ready);
        node.start(&system_db, move || *r.borrow_mut() = true);
    }
    sim.run_for(dur::secs(5));
    assert!(*ready.borrow(), "node became ready");
    assert_eq!(node.state(), NodeState::Ready);
    let session = node.open_session("diff_user").unwrap();
    Fixture { sim, node, session }
}

fn exec(f: &Fixture, sql: &str) -> QueryOutput {
    exec_params(f, sql, vec![]).unwrap_or_else(|e| panic!("{sql}: {e}"))
}

fn exec_params(f: &Fixture, sql: &str, params: Vec<Datum>) -> Result<QueryOutput, SqlError> {
    let out = Rc::new(RefCell::new(None));
    let o = Rc::clone(&out);
    f.node.execute(f.session, sql, params, move |r| *o.borrow_mut() = Some(r));
    f.sim.run_for(dur::secs(60));
    let r = out.borrow_mut().take();
    r.unwrap_or_else(|| panic!("{sql}: did not complete"))
}

/// Rows as a multiset, order-insensitive (Datum has no total order, so
/// compare via a canonical debug rendering).
fn row_set(out: &QueryOutput) -> Vec<String> {
    let mut v: Vec<String> = out.rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

/// Runs `sql` twice — chosen plan vs forced full scan — and asserts the
/// row sets are identical.
fn check_differential(f: &Fixture, sql: &str, params: Vec<Datum>) {
    f.node.catalog().borrow_mut().set_force_full_scan(false);
    let chosen = exec_params(f, sql, params.clone()).unwrap_or_else(|e| panic!("{sql}: {e}"));
    f.node.catalog().borrow_mut().set_force_full_scan(true);
    let full = exec_params(f, sql, params).unwrap_or_else(|e| panic!("{sql} (full): {e}"));
    f.node.catalog().borrow_mut().set_force_full_scan(false);
    assert_eq!(row_set(&chosen), row_set(&full), "plan diverged from full scan: {sql}");
}

/// TPC-C-lite-like schema with NULLable columns and secondary indexes.
fn load_tpcc_lite(f: &Fixture, rng: &mut SmallRng, items: i64, orders: i64) {
    exec(f, "CREATE TABLE item (i_id INT PRIMARY KEY, i_name STRING, i_price FLOAT)");
    exec(
        f,
        "CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, \
         o_carrier_id INT, PRIMARY KEY (o_w_id, o_d_id, o_id))",
    );
    for i in 0..items {
        // ~1 in 8 prices NULL so index entries cover stored NULLs.
        let price = if rng.gen_range(0u32..8) == 0 {
            "NULL".to_string()
        } else {
            format!("{}.5", rng.gen_range(1i64..40))
        };
        exec(f, &format!("INSERT INTO item VALUES ({i}, 'item-{i}', {price})"));
    }
    for o in 0..orders {
        let w = rng.gen_range(1i64..3);
        let d = rng.gen_range(1i64..4);
        let c = rng.gen_range(1i64..20);
        let carrier = if rng.gen_range(0u32..5) == 0 {
            "NULL".to_string()
        } else {
            rng.gen_range(1i64..10).to_string()
        };
        exec(f, &format!("INSERT INTO orders VALUES ({w}, {d}, {o}, {c}, {carrier})"));
    }
    exec(f, "CREATE INDEX item_price ON item (i_price)");
    exec(f, "CREATE INDEX orders_cust ON orders (o_c_id)");
    exec(f, "ANALYZE item");
    exec(f, "ANALYZE orders");
}

/// One seeded random predicate over the lite schema.
fn random_query(rng: &mut SmallRng) -> (String, Vec<Datum>) {
    let pick = rng.gen_range(0u32..8);
    match pick {
        0 => (format!("SELECT * FROM item WHERE i_id = {}", rng.gen_range(0i64..40)), vec![]),
        1 => {
            let p = rng.gen_range(1i64..40);
            (format!("SELECT * FROM item WHERE i_price < {p}.5"), vec![])
        }
        2 => {
            let p = rng.gen_range(1i64..40);
            // Int literal against a FLOAT index column: coercion path.
            (format!("SELECT * FROM item WHERE i_price >= {p}"), vec![])
        }
        3 => (
            "SELECT * FROM item WHERE i_price = $1".to_string(),
            vec![if rng.gen_range(0u32..6) == 0 {
                Datum::Null
            } else {
                Datum::Float(rng.gen_range(1i64..40) as f64 + 0.5)
            }],
        ),
        4 => {
            let w = rng.gen_range(1i64..3);
            let d = rng.gen_range(1i64..4);
            (format!("SELECT * FROM orders WHERE o_w_id = {w} AND o_d_id = {d}"), vec![])
        }
        5 => {
            let w = rng.gen_range(1i64..3);
            let lo = rng.gen_range(0i64..30);
            (
                format!(
                    "SELECT * FROM orders WHERE o_w_id = {w} AND o_d_id = 2 AND o_id >= {lo} \
                     AND o_id < {}",
                    lo + rng.gen_range(1i64..20)
                ),
                vec![],
            )
        }
        6 => (
            "SELECT * FROM orders WHERE o_c_id = $1".to_string(),
            vec![Datum::Int(rng.gen_range(1i64..20))],
        ),
        _ => {
            let q = rng.gen_range(1i64..10);
            (format!("SELECT * FROM orders WHERE o_carrier_id = {q} AND o_id < 25"), vec![])
        }
    }
}

#[test]
fn seeded_differential_over_tpcc_lite() {
    for seed in [101u64, 202, 303] {
        let f = setup(seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        load_tpcc_lite(&f, &mut rng, 40, 30);
        for _ in 0..25 {
            let (sql, params) = random_query(&mut rng);
            check_differential(&f, &sql, params);
        }
    }
}

#[test]
fn null_literal_and_null_param_never_match() {
    let f = setup(7);
    exec(&f, "CREATE TABLE item (i_id INT PRIMARY KEY, i_name STRING, i_price FLOAT)");
    exec(&f, "INSERT INTO item VALUES (1, 'a', 10.5), (2, 'b', NULL), (3, 'c', 20.5)");
    exec(&f, "CREATE INDEX item_price ON item (i_price)");
    exec(&f, "ANALYZE item");
    // `= NULL` is never true in SQL — not even against stored NULLs, whose
    // index entries encode NULL as a real key byte.
    let out = exec(&f, "SELECT * FROM item WHERE i_price = NULL");
    assert_eq!(out.rows.len(), 0, "literal NULL equality matches nothing");
    let out = exec_params(&f, "SELECT * FROM item WHERE i_price = $1", vec![Datum::Null]).unwrap();
    assert_eq!(out.rows.len(), 0, "NULL param equality matches nothing");
    // Range predicates against NULL are never true either.
    let out = exec_params(&f, "SELECT * FROM item WHERE i_price < $1", vec![Datum::Null]).unwrap();
    assert_eq!(out.rows.len(), 0, "NULL param range matches nothing");
    check_differential(&f, "SELECT * FROM item WHERE i_price = NULL", vec![]);
}

#[test]
fn range_only_secondary_index_is_used() {
    let f = setup(8);
    exec(&f, "CREATE TABLE item (i_id INT PRIMARY KEY, i_name STRING, i_price FLOAT)");
    for i in 0..30 {
        exec(&f, &format!("INSERT INTO item VALUES ({i}, 'x', {}.0)", i * 10));
    }
    exec(&f, "CREATE INDEX item_price ON item (i_price)");
    exec(&f, "ANALYZE item");
    // Regression: a range-only predicate on a secondary index column must
    // plan an index range seek, not a full scan.
    let out = exec(&f, "EXPLAIN SELECT * FROM item WHERE i_price < 100");
    let plan: Vec<String> =
        out.rows.iter().map(|r| format!("{}", r[0]).trim().to_string()).collect();
    assert!(
        plan.iter().any(|l| l.contains("item@item_price") && !l.contains("full")),
        "range predicate should seek the secondary index: {plan:?}"
    );
    let out = exec(&f, "SELECT * FROM item WHERE i_price < 100");
    assert_eq!(out.rows.len(), 10);
    assert!(out.stats.rows_read < 30, "index seek reads a subset, not the table");
    check_differential(&f, "SELECT * FROM item WHERE i_price < 100", vec![]);
}

#[test]
fn limit_pushdown_bounds_rows_read() {
    let f = setup(9);
    exec(&f, "CREATE TABLE t (k INT PRIMARY KEY, v INT)");
    for i in 0..100 {
        exec(&f, &format!("INSERT INTO t VALUES ({i}, {})", i * 2));
    }
    exec(&f, "ANALYZE t");
    let out = exec(&f, "SELECT * FROM t LIMIT 5");
    assert_eq!(out.rows.len(), 5);
    assert!(
        out.stats.rows_read <= 5,
        "LIMIT 5 must read at most 5 rows, read {}",
        out.stats.rows_read
    );
    // A residual filter blocks the pushdown: correctness over speed.
    let out = exec(&f, "SELECT * FROM t WHERE v > 100 LIMIT 5");
    assert_eq!(out.rows.len(), 5);
    check_differential(&f, "SELECT * FROM t LIMIT 100", vec![]);
}

#[test]
fn update_changing_pk_shifts_rows() {
    let f = setup(10);
    exec(&f, "CREATE TABLE t (k INT PRIMARY KEY, v INT)");
    for i in 1..=10 {
        exec(&f, &format!("INSERT INTO t VALUES ({i}, {})", i * 100));
    }
    exec(&f, "CREATE INDEX t_v ON t (v)");
    // Regression: per-row delete-then-put clobbered the next row when the
    // UPDATE rewrote the primary key. The two-phase write path must shift
    // every row intact.
    let out = exec(&f, "UPDATE t SET k = k + 1");
    assert_eq!(out.rows_affected, 10);
    let out = exec(&f, "SELECT k, v FROM t ORDER BY k");
    assert_eq!(out.rows.len(), 10, "no rows lost to self-overlap");
    for (i, row) in out.rows.iter().enumerate() {
        let orig = i as i64 + 1;
        assert_eq!(row[0], Datum::Int(orig + 1), "pk shifted");
        assert_eq!(row[1], Datum::Int(orig * 100), "value follows its row");
    }
    // Index entries moved with the rows: seek through the index.
    let out = exec(&f, "SELECT k FROM t WHERE v = 300");
    assert_eq!(out.rows, vec![vec![Datum::Int(4)]]);
}

#[test]
fn analyze_then_ddl_staleness_is_safe() {
    let f = setup(11);
    exec(&f, "CREATE TABLE t (k INT PRIMARY KEY, a INT, b INT)");
    for i in 0..40 {
        exec(&f, &format!("INSERT INTO t VALUES ({i}, {}, {})", i % 4, i % 8));
    }
    // Statistics collected BEFORE the index exists: the planner must fall
    // back to default selectivity for the unknown index, not crash or
    // refuse the plan.
    exec(&f, "ANALYZE t");
    exec(&f, "CREATE INDEX t_a ON t (a)");
    let out = exec(&f, "EXPLAIN SELECT * FROM t WHERE a = 2");
    let plan = format!("{:?}", out.rows);
    assert!(plan.contains("t@t_a"), "stale stats still allow the new index: {plan}");
    check_differential(&f, "SELECT * FROM t WHERE a = 2", vec![]);
    // Re-ANALYZE picks the index up; plans stay deterministic.
    exec(&f, "ANALYZE t");
    let again = exec(&f, "EXPLAIN SELECT * FROM t WHERE a = 2");
    let out2 = exec(&f, "EXPLAIN SELECT * FROM t WHERE a = 2");
    assert_eq!(again.rows, out2.rows, "EXPLAIN is deterministic");
    check_differential(&f, "SELECT * FROM t WHERE a = 2", vec![]);
}

#[test]
fn explain_is_byte_identical_across_same_seed_runs() {
    let render = |seed: u64| -> Vec<String> {
        let f = setup(seed);
        let mut rng = SmallRng::seed_from_u64(99);
        load_tpcc_lite(&f, &mut rng, 20, 15);
        let mut lines = Vec::new();
        for sql in [
            "EXPLAIN SELECT * FROM item WHERE i_price < 10",
            "EXPLAIN SELECT * FROM orders WHERE o_w_id = 1 AND o_d_id = 2",
            "EXPLAIN SELECT * FROM orders WHERE o_c_id = 5",
        ] {
            let out = exec(&f, sql);
            for r in &out.rows {
                lines.push(format!("{}", r[0]));
            }
        }
        lines
    };
    assert_eq!(render(42), render(42), "same seed, same EXPLAIN bytes");
}

// With the real proptest crate these run the differential property over
// arbitrary predicates; with the offline stand-in they compile away and
// the seeded loops above carry the coverage.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn differential_holds_for_random_predicates(seed in 0u64..1u64 << 32) {
        let f = setup(1000 + (seed % 50));
        let mut rng = SmallRng::seed_from_u64(seed);
        load_tpcc_lite(&f, &mut rng, 25, 20);
        for _ in 0..5 {
            let (sql, params) = random_query(&mut rng);
            check_differential(&f, &sql, params);
        }
    }
}
