//! Workspace-level integration tests: the complete system exercised
//! through the top-level public API, spanning every crate at once.

use std::cell::RefCell;
use std::rc::Rc;

use crdb_core::{DedicatedCluster, ServerlessCluster, ServerlessConfig};
use crdb_kv::cluster::KvClusterConfig;
use crdb_serverless::proxy::Connection;
use crdb_sim::{Sim, Topology};
use crdb_sql::node::SqlNodeConfig;
use crdb_sql::value::Datum;
use crdb_util::time::dur;
use crdb_util::RegionId;
use crdb_workload::driver::{Driver, DriverConfig, SqlExecutor};
use crdb_workload::executors::{run_setup, ServerlessExec, ServerlessExecutor};
use crdb_workload::tpcc;

fn sql(
    sim: &Sim,
    cluster: &Rc<ServerlessCluster>,
    conn: &Rc<Connection>,
    text: &str,
) -> crdb_sql::exec::QueryOutput {
    let out = Rc::new(RefCell::new(None));
    let o = Rc::clone(&out);
    cluster.execute(conn, text, vec![], move |r| *o.borrow_mut() = Some(r));
    sim.run_for(dur::secs(30));
    let r = out.borrow_mut().take();
    r.expect("completed").unwrap_or_else(|e| panic!("{text}: {e}"))
}

#[test]
fn two_virtual_clusters_full_lifecycle() {
    let sim = Sim::new(31_337);
    let mut config = ServerlessConfig::default();
    config.autoscaler.suspend_after = dur::secs(45);
    let cluster = ServerlessCluster::new(&sim, config);

    // Two tenants with quotas, same schema, fully isolated.
    let t1 = cluster.create_tenant(vec![RegionId(0)], Some(8.0));
    let t2 = cluster.create_tenant(vec![RegionId(0)], Some(8.0));

    let connect = |tenant| {
        let slot = Rc::new(RefCell::new(None));
        let s = Rc::clone(&slot);
        cluster.connect(tenant, "10.9.9.9", "app", move |r| {
            *s.borrow_mut() = Some(r.expect("connect"));
        });
        sim.run_for(dur::secs(5));
        let c = slot.borrow().clone();
        c.expect("connected")
    };
    let c1 = connect(t1);
    let c2 = connect(t2);

    for (conn, owner) in [(&c1, "one"), (&c2, "two")] {
        sql(&sim, &cluster, conn, "CREATE TABLE things (id INT PRIMARY KEY, owner STRING)");
        sql(
            &sim,
            &cluster,
            conn,
            &format!("INSERT INTO things VALUES (1, '{owner}'), (2, '{owner}')"),
        );
    }
    // Transactions with rollback on tenant 1.
    sql(&sim, &cluster, &c1, "BEGIN");
    sql(&sim, &cluster, &c1, "UPDATE things SET owner = 'oops' WHERE id = 1");
    sql(&sim, &cluster, &c1, "ROLLBACK");

    let r1 = sql(&sim, &cluster, &c1, "SELECT owner FROM things WHERE id = 1");
    let r2 = sql(&sim, &cluster, &c2, "SELECT owner FROM things WHERE id = 1");
    assert_eq!(r1.rows[0][0], Datum::Str("one".into()), "rollback held, no cross-talk");
    assert_eq!(r2.rows[0][0], Datum::Str("two".into()));

    // Billing accrued for both.
    assert!(cluster.tenant_ecpu_seconds(t1) > 0.0);
    assert!(cluster.tenant_ecpu_seconds(t2) > 0.0);

    // Suspend tenant 1 by closing its connection; tenant 2 unaffected.
    cluster.close(&c1);
    sim.run_for(dur::mins(4));
    assert!(cluster.is_suspended(t1));
    assert!(!cluster.is_suspended(t2));
    let r2 = sql(&sim, &cluster, &c2, "SELECT COUNT(*) FROM things");
    assert_eq!(r2.rows[0][0], Datum::Int(2));
}

#[test]
fn tpcc_through_the_complete_serverless_stack() {
    let sim = Sim::new(90_210);
    let cluster = ServerlessCluster::new(&sim, ServerlessConfig::default());
    let tenant = cluster.create_tenant(vec![RegionId(0)], None);
    let ex: Rc<dyn SqlExecutor> =
        Rc::new(ServerlessExec(ServerlessExecutor::new(Rc::clone(&cluster), tenant)));

    let cfg = tpcc::TpccConfig::default();
    let mut stmts: Vec<String> = tpcc::schema().iter().map(|s| s.to_string()).collect();
    stmts.extend(tpcc::load_statements(&cfg));
    run_setup(&sim, &ex, &stmts);

    let driver = Driver::new(
        &sim,
        Rc::clone(&ex),
        DriverConfig { workers: 6, think_time: Some(dur::ms(150)), max_retries: 10 },
        tpcc::mix_factory(cfg, 5),
    );
    let end = sim.now() + dur::secs(45);
    driver.run_until(end);
    sim.run_until(end + dur::secs(30));

    assert!(*driver.stats.committed.borrow() > 50);
    assert_eq!(*driver.stats.aborted.borrow(), 0);
    // The serverless machinery really engaged.
    assert!(cluster.proxy.connects.get() >= 6);
    assert!(cluster.sql_node_count(tenant) >= 1);
    assert!(cluster.tenant_ecpu_seconds(tenant) > 0.0);
}

#[test]
fn dedicated_and_serverless_agree_on_results() {
    // The same statements produce the same data through both deployment
    // styles (different processes, same correctness).
    let statements = [
        "CREATE TABLE t (id INT PRIMARY KEY, v INT)",
        "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)",
        "UPDATE t SET v = v * 2 WHERE id >= 2",
        "DELETE FROM t WHERE id = 1",
    ];
    let query = "SELECT id, v FROM t ORDER BY id";

    // Serverless.
    let sim = Sim::new(1);
    let cluster = ServerlessCluster::new(&sim, ServerlessConfig::default());
    let tenant = cluster.create_tenant(vec![RegionId(0)], None);
    let slot = Rc::new(RefCell::new(None));
    {
        let s = Rc::clone(&slot);
        cluster.connect(tenant, "10.0.0.1", "x", move |r| *s.borrow_mut() = Some(r.unwrap()));
    }
    sim.run_for(dur::secs(5));
    let conn = slot.borrow().clone().unwrap();
    for s in statements {
        sql(&sim, &cluster, &conn, s);
    }
    let serverless_rows = sql(&sim, &cluster, &conn, query).rows;

    // Dedicated.
    let sim = Sim::new(2);
    let dedicated = DedicatedCluster::new(
        &sim,
        Topology::single_region("us-east1", 3),
        KvClusterConfig::default(),
        SqlNodeConfig::default(),
    );
    let run = |text: &str| {
        let out = Rc::new(RefCell::new(None));
        let o = Rc::clone(&out);
        dedicated.execute_on(0, text, vec![], move |r| *o.borrow_mut() = Some(r));
        sim.run_for(dur::secs(30));
        let r = out.borrow_mut().take();
        r.unwrap().unwrap()
    };
    for s in statements {
        run(s);
    }
    let dedicated_rows = run(query).rows;

    assert_eq!(serverless_rows, dedicated_rows);
    assert_eq!(serverless_rows.len(), 2);
    assert_eq!(serverless_rows[0], vec![Datum::Int(2), Datum::Int(40)]);
}
